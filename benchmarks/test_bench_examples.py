"""Experiments EX3.1-EX5.3 -- every worked example of the paper, timed.

Each benchmark runs one example's computation and asserts the exact
symbolic result the paper derives by hand.  (The correctness assertions are
duplicated from tests/test_paper_examples.py on purpose: the benchmark
harness must stand alone.)
"""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Constant
from repro.events.events import Transaction, delete, insert, parse_transaction
from repro.events.naming import display_literal
from repro.events.transition import compile_transition_rule
from repro.interpretations import (
    DownwardInterpreter,
    UpwardInterpreter,
    forbid_insert,
    want_delete,
    want_insert,
)

B = (Constant("B"),)


@pytest.fixture
def pqr_db():
    return DeductiveDatabase.from_source("""
        Q(A). Q(B). R(B).
        P(x) <- Q(x) & not R(x).
    """)


@pytest.fixture
def employment_db():
    db = DeductiveDatabase.from_source("""
        La(Dolors). U_benefit(Dolors).
        Unemp(x) <- La(x) & not Works(x).
        Ic1 <- Unemp(x) & not U_benefit(x).
    """)
    db.declare_base("Works", 1)
    return db


def test_bench_example_3_1(benchmark):
    """Transition rule of P(x) <- Q(x) ∧ ¬R(x): the four paper disjuncts."""
    rule = parse_rule("P(x) <- Q(x) & not R(x).")
    transition = benchmark(compile_transition_rule, rule)
    rendered = [" ∧ ".join(display_literal(l) for l in d)
                for d in transition.disjuncts]
    assert rendered == [
        "Q(x) ∧ ¬δQ(x) ∧ ¬R(x) ∧ ¬ιR(x)",
        "Q(x) ∧ ¬δQ(x) ∧ δR(x)",
        "ιQ(x) ∧ ¬R(x) ∧ ¬ιR(x)",
        "ιQ(x) ∧ δR(x)",
    ]
    print("\n" + str(transition))


def test_bench_example_4_1(benchmark, pqr_db):
    """Upward: T = {δR(B)} induces exactly {ιP(B)}."""
    interpreter = UpwardInterpreter(pqr_db)
    transaction = parse_transaction("{δR(B)}")
    result = benchmark(interpreter.interpret, transaction)
    assert result.insertions == {"P": frozenset({B})}
    assert result.deletions == {}
    print(f"\nupward({transaction}) = {result}")


def test_bench_example_4_2(benchmark, pqr_db):
    """Downward: ιP(B) is satisfied exactly by δR(B) ∧ ¬δQ(B)."""
    interpreter = DownwardInterpreter(pqr_db)
    result = benchmark(interpreter.interpret, want_insert("P", "B"))
    (translation,) = result.translations
    assert translation.transaction == Transaction([delete("R", "B")])
    assert translation.constraints == frozenset({delete("Q", "B")})
    print(f"\ndownward(ιP(B)) = {result}")


def test_bench_example_5_1(benchmark, employment_db):
    """IC checking: T = {δU_benefit(Dolors)} violates Ic1."""
    from repro.problems import check_transaction

    interpreter = UpwardInterpreter(employment_db)
    transaction = parse_transaction("{delete U_benefit(Dolors)}")
    result = benchmark(check_transaction, employment_db, transaction,
                       interpreter)
    assert not result.ok
    assert result.violated_constraints() == ("Ic1",)
    print(f"\ncheck({transaction}) = {result}")


def test_bench_example_5_2(benchmark, employment_db):
    """View updating: δUnemp(Dolors) -> {δLa(Dolors)} or {ιWorks(Dolors)}."""
    interpreter = DownwardInterpreter(employment_db)
    result = benchmark(interpreter.interpret, want_delete("Unemp", "Dolors"))
    assert set(result.transactions()) == {
        Transaction([delete("La", "Dolors")]),
        Transaction([insert("Works", "Dolors")]),
    }
    print(f"\ndownward(δUnemp(Dolors)) = {result}")


def test_bench_example_5_3(benchmark, employment_db):
    """Side-effect prevention: the unique result {ιLa(Maria), ιWorks(Maria)}."""
    interpreter = DownwardInterpreter(employment_db)
    requests = [insert("La", "Maria"), forbid_insert("Unemp", "Maria")]
    result = benchmark(interpreter.interpret, requests)
    assert len(result.translations) == 1
    assert result.translations[0].transaction == Transaction([
        insert("La", "Maria"), insert("Works", "Maria")])
    print(f"\ndownward({{ιLa(Maria), ¬ιUnemp(Maria)}}) = {result}")
