"""Scatter-gather read throughput at 1 / 2 / 4 shards.

An unbound query against an :class:`EngineGroup` fans out to every shard
and merges the answers.  Each shard evaluates the goal over its own slice
of the EDB, and evaluation cost grows superlinearly in slice size, so
splitting the database is a win even before process-level parallelism:
four shards each solving a quarter-size problem beat one shard solving
the whole thing.  This benchmark drives ``Unemp(x)`` (the paper's derived
predicate, rule plus negation) over a 4000-person employment database and
records queries/second per shard count into ``BENCH_shard.json`` at the
repository root.

Acceptance criterion (ISSUE 6): 4-shard scatter-gather reads at >= 2x
single-shard throughput.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.shard import EngineGroup
from repro.workloads import employment_database

N_PEOPLE = 4000
SHARD_COUNTS = (1, 2, 4)
GOAL = "Unemp(x)"
REPEAT = 3

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def _open_group(tmp_path, shards: int) -> EngineGroup:
    return EngineGroup.open(tmp_path / f"grp{shards}",
                            employment_database(N_PEOPLE, seed=3),
                            shards=shards)


def _best_query_seconds(group: EngineGroup) -> tuple[float, int]:
    rows = group.query(GOAL)  # warm-up: imports, per-shard evaluators
    best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        rows = group.query(GOAL)
        best = min(best, time.perf_counter() - start)
    return best, len(rows)


def test_bench_scatter_gather_reads(benchmark, tmp_path):
    results: dict[int, dict] = {}
    expected_rows: int | None = None
    for shards in SHARD_COUNTS:
        group = _open_group(tmp_path, shards)
        try:
            seconds, n_rows = _best_query_seconds(group)
        finally:
            group.close(checkpoint=False)
        results[shards] = {"seconds_per_query": seconds,
                           "queries_per_second": 1.0 / seconds,
                           "rows": n_rows}
        # Sharding must not change the answer, only the latency.
        expected_rows = n_rows if expected_rows is None else expected_rows
        assert n_rows == expected_rows

    # The measured side through pytest-benchmark: the 4-shard scatter.
    group = _open_group(tmp_path / "measured", SHARD_COUNTS[-1])
    try:
        group.query(GOAL)
        benchmark.pedantic(lambda: group.query(GOAL), rounds=REPEAT)
    finally:
        group.close(checkpoint=False)

    for shards in SHARD_COUNTS:
        entry = results[shards]
        print(f"\nSHARD scatter={shards}  query({GOAL})="
              f"{entry['seconds_per_query'] * 1e3:8.2f} ms  "
              f"throughput={entry['queries_per_second']:7.1f} q/s")

    BENCH_FILE.write_text(json.dumps({
        "benchmark": "scatter_gather_reads",
        "goal": GOAL,
        "n_people": N_PEOPLE,
        "shards": {str(s): results[s] for s in SHARD_COUNTS},
        "speedup_4_over_1": (results[4]["queries_per_second"]
                             / results[1]["queries_per_second"]),
    }, indent=2) + "\n")

    # Acceptance criterion: 4 shards at least double 1-shard throughput.
    assert results[4]["queries_per_second"] >= \
        2.0 * results[1]["queries_per_second"], (
            f"scatter-gather must scale: 1-shard "
            f"{results[1]['queries_per_second']:.1f} q/s, 4-shard "
            f"{results[4]['queries_per_second']:.1f} q/s (need >= 2x)")
    assert results[2]["queries_per_second"] >= \
        results[1]["queries_per_second"], \
        "2-shard reads should not be slower than 1-shard"
