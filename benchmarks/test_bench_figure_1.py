"""Experiment F1 -- the Section 1 figure.

The paper's only figure shows derived predicates above base predicates,
upward problems computing changes bottom-to-top and downward problems
top-to-bottom.  Here the figure is regenerated *from a compiled transition
program*: the base/derived partition comes out of the schema analysis and
the two directions out of the interpretation machinery.
"""

from repro.datalog import DeductiveDatabase
from repro.events import EventCompiler
from repro.events.event_rules import TransitionProgram


def render_figure_1(program: TransitionProgram) -> str:
    """Render the paper's figure for a concrete compiled program."""
    derived = ", ".join(sorted(p for p in program.derived))
    base = ", ".join(sorted(program.base_arities))
    width = max(len(derived), len(base), 34) + 4
    top = f"Derived predicates: {derived}".center(width)
    bottom = f"Base predicates: {base}".center(width)
    middle = "Upward problems  ▲      ▼  Downward problems".center(width)
    return "\n".join([top, middle, bottom])


def _compile():
    db = DeductiveDatabase.from_source("""
        Q(A). Q(B). R(B).
        P(x) <- Q(x) & not R(x).
    """)
    return EventCompiler().compile(db)


def test_bench_figure_1(benchmark):
    program = benchmark(_compile)
    figure = render_figure_1(program)
    print("\n" + figure)
    assert "Derived predicates: P" in figure
    assert "Base predicates: Q, R" in figure
    assert "Upward problems" in figure and "Downward problems" in figure
