"""SYN8 -- maintenance-method ablation: counting [GMS93] vs. hybrid (DRed-style).

Both are faithful implementations of the upward interpretation for
non-recursive views; they differ in how deletions are handled:

- **hybrid**: destroyed-derivation candidates + a goal-directed
  re-derivability check per candidate (no extra state);
- **counting**: stored derivation counts, deletions = zero-crossings (no
  re-derivability queries, extra per-tuple state).

On delete-heavy workloads over multi-support views, counting avoids the
re-derivability joins; the benchmark verifies both give identical events
and reports the trade-off.
"""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.parser import parse_rule
from repro.events.events import Transaction, delete
from repro.interpretations import CountingEngine, UpwardInterpreter
from repro.workloads import random_database


def _multi_support_db(n_facts: int) -> DeductiveDatabase:
    """A view with heavy duplicate support: V(x) <- B1(x, y) (many y's)."""
    db = random_database(n_facts=n_facts, domain_size=30, n_base=2, seed=41)
    db.add_rule(parse_rule("V(x) <- B1(x, y)."))
    db.add_rule(parse_rule("W(x) <- V(x) & B2(x, y)."))
    return db


def _delete_stream(db, n: int):
    rows = sorted(db.facts_of("B1"), key=str)[:n]
    return [Transaction([delete("B1", *row)]) for row in rows]


@pytest.mark.parametrize("method", ["counting", "hybrid"])
def test_bench_syn8_delete_heavy(benchmark, method, measure):
    db = _multi_support_db(600)
    stream = _delete_stream(db, 40)
    counter = {"i": 0}

    if method == "counting":
        engine = CountingEngine(db)

        def step():
            transaction = stream[counter["i"] % len(stream)]
            counter["i"] += 1
            return engine.apply(transaction.normalized(db))
    else:
        interpreter = UpwardInterpreter(db)
        interpreter.old_extension("W")

        def step():
            transaction = stream[counter["i"] % len(stream)]
            counter["i"] += 1
            result = interpreter.interpret(transaction.normalized(db))
            # Apply and advance, mirroring the counting engine's write path.
            for event in result.transaction:
                if event.is_insertion:
                    db.add_fact(event.predicate, *event.args)
                else:
                    db.remove_fact(event.predicate, *event.args)
            interpreter.advance(result)
            return result

    benchmark.pedantic(step, rounds=20, iterations=1)
    print(f"\nSYN8 method={method}  steps={counter['i']}")


def test_bench_syn8_agreement(benchmark):
    """Identical induced events on the same delete stream."""
    def compare():
        db_a = _multi_support_db(400)
        db_b = _multi_support_db(400)
        engine = CountingEngine(db_a)
        interpreter = UpwardInterpreter(db_b)
        for transaction in _delete_stream(db_a, 15):
            counting_result = engine.apply(transaction)
            hybrid_result = interpreter.interpret(transaction)
            assert counting_result.insertions == hybrid_result.insertions
            assert counting_result.deletions == hybrid_result.deletions
            for event in transaction:
                db_b.remove_fact(event.predicate, *event.args)
            interpreter.advance(hybrid_result)
        return True

    assert benchmark.pedantic(compare, rounds=1, iterations=1)
