"""Experiment T4.1 -- regenerate Table 4.1 and check it against the paper.

The classification is derived from the problem registry, rendered in the
paper's layout, and asserted cell by cell.  The benchmark measures the full
regeneration (import-time registration is excluded; it already happened).
"""

import repro.problems  # noqa: F401  -- registers every problem spec
from repro.problems import classification_table, render_table_4_1
from repro.problems.base import Direction, PredicateSemantics

#: The paper's Table 4.1, cell by cell (problem names as registered).
PAPER_TABLE = {
    (Direction.UPWARD, "ιP", PredicateSemantics.VIEW): {
        "Materialized view maintenance"},
    (Direction.UPWARD, "δP", PredicateSemantics.VIEW): {
        "Materialized view maintenance"},
    (Direction.UPWARD, "ιP", PredicateSemantics.IC): {
        "Integrity constraints checking"},
    (Direction.UPWARD, "δP", PredicateSemantics.IC): {
        "Consistency restoration checking"},
    (Direction.UPWARD, "ιP", PredicateSemantics.CONDITION): {
        "Condition monitoring"},
    (Direction.UPWARD, "δP", PredicateSemantics.CONDITION): {
        "Condition monitoring"},
    (Direction.DOWNWARD, "ιP", PredicateSemantics.VIEW): {
        "View updating", "View validation"},
    (Direction.DOWNWARD, "δP", PredicateSemantics.VIEW): {
        "View updating (deletion)", "View validation"},
    (Direction.DOWNWARD, "ιP", PredicateSemantics.IC): {
        "Ensuring IC satisfaction"},
    (Direction.DOWNWARD, "δP", PredicateSemantics.IC): {
        "Repairing inconsistent databases",
        "Integrity constraints satisfiability"},
    (Direction.DOWNWARD, "ιP", PredicateSemantics.CONDITION): {
        "Enforcing condition activation", "Condition validation"},
    (Direction.DOWNWARD, "δP", PredicateSemantics.CONDITION): {
        "Enforcing condition activation", "Condition validation"},
    (Direction.DOWNWARD, "T, ¬ιP", PredicateSemantics.VIEW): {
        "Preventing side effects"},
    (Direction.DOWNWARD, "T, ¬δP", PredicateSemantics.VIEW): {
        "Preventing side effects"},
    (Direction.DOWNWARD, "T, ¬ιP", PredicateSemantics.IC): {
        "Integrity constraints maintenance"},
    (Direction.DOWNWARD, "T, ¬δP", PredicateSemantics.IC): {
        "Maintaining inconsistency"},
    (Direction.DOWNWARD, "T, ¬ιP", PredicateSemantics.CONDITION): {
        "Preventing condition activation"},
    (Direction.DOWNWARD, "T, ¬δP", PredicateSemantics.CONDITION): {
        "Preventing condition activation"},
}


def test_bench_table_4_1(benchmark):
    table = benchmark(classification_table)
    for key, expected in PAPER_TABLE.items():
        assert set(table[key]) == expected, f"cell {key} diverges from paper"
    rendered = render_table_4_1()
    print("\n" + rendered)
    assert "Upward" in rendered and "Downward" in rendered
