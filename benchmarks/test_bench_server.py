"""Group-commit throughput of the server engine: batch sizes 1 / 8 / 64.

The ``DatabaseEngine`` commit queue batches concurrent transactions into
one WAL append-and-fsync plus one merged transition-program evaluation
(integrity check) per batch.  This benchmark drives the same machinery
deterministically through :meth:`DatabaseEngine.commit_many` on an
employment-office workload of disjoint hirings, so the amortisation is
measured without scheduler noise: at batch size 1 every transaction pays
its own fsync and its own ``ιIc`` evaluation; at 64 those costs are
shared 64 ways.
"""

import itertools
import time

from repro.events.events import Transaction, insert
from repro.server import DatabaseEngine
from repro.workloads import employment_database

N_TRANSACTIONS = 128
_run_ids = itertools.count()


def _transactions() -> list[Transaction]:
    # Disjoint event sets: every pair is conflict-free, so a full batch
    # group-commits (the optimistic check never defers anyone).
    return [Transaction([insert("Works", f"N{index}"),
                         insert("La", f"N{index}")])
            for index in range(N_TRANSACTIONS)]


def _fresh_engine(tmp_path, max_batch: int) -> DatabaseEngine:
    directory = tmp_path / f"run{next(_run_ids)}"
    return DatabaseEngine.open(directory,
                               initial=employment_database(20, seed=5),
                               max_batch=max_batch)


def _commit_run(tmp_path, max_batch: int):
    """One fresh engine, one commit_many sweep; returns (seconds, counters)."""
    engine = _fresh_engine(tmp_path, max_batch)
    try:
        transactions = _transactions()
        start = time.perf_counter()
        outcomes = engine.commit_many(transactions)
        elapsed = time.perf_counter() - start
        assert all(outcome.applied for outcome in outcomes)
        counters = engine.stats()["counters"]
    finally:
        engine.close(checkpoint=False)
    return elapsed, counters


def _best_of(tmp_path, max_batch: int, repeat: int = 3):
    runs = [_commit_run(tmp_path, max_batch) for _ in range(repeat)]
    return min(run[0] for run in runs), runs[-1][1]


def test_bench_group_commit_throughput(benchmark, tmp_path):
    time_1, counters_1 = _best_of(tmp_path, max_batch=1)
    time_8, counters_8 = _best_of(tmp_path, max_batch=8)
    time_64, counters_64 = _best_of(tmp_path, max_batch=64)

    # The batching really happened: one WAL fsync per batch, not per commit.
    assert counters_1["commit.wal_syncs"] == N_TRANSACTIONS
    assert counters_8["commit.wal_syncs"] == N_TRANSACTIONS // 8
    assert counters_64["commit.wal_syncs"] == N_TRANSACTIONS // 64
    assert counters_64["commit.group_committed"] == N_TRANSACTIONS

    def setup():
        return (_fresh_engine(tmp_path, max_batch=64), _transactions()), {}

    def target(engine, transactions):
        try:
            engine.commit_many(transactions)
        finally:
            engine.close(checkpoint=False)

    benchmark.pedantic(target, setup=setup, rounds=3)

    for batch, seconds in ((1, time_1), (8, time_8), (64, time_64)):
        print(f"\nSERVER batch={batch:2d}  commit_many({N_TRANSACTIONS})="
              f"{seconds * 1e3:8.2f} ms  "
              f"throughput={N_TRANSACTIONS / seconds:8.0f} tx/s")

    # Acceptance criterion: batch-64 at least doubles batch-1 throughput.
    assert time_1 >= 2.0 * time_64, (
        f"group commit must amortise: batch-1 took {time_1:.4f}s, "
        f"batch-64 took {time_64:.4f}s (need >= 2x)")
    assert time_8 <= time_1, "batch-8 should not be slower than batch-1"
