"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one artefact of the paper (Table
4.1, the Section 1 figure, Examples 3.1-5.3) or one synthetic experiment
(SYN1-SYN7) from EXPERIMENTS.md.  Shape assertions live next to the
timings: a benchmark that stops reproducing the paper's qualitative claim
fails, not just slows down.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

#: Before/after evidence for the compiled evaluation engine (ISSUE 8).
#: Three suites (SYN6 chain, SYN1 scaling, SYN4 downward) each own one
#: section of the same file, so writes go through a read-modify-write.
BENCH_EVAL_FILE = Path(__file__).resolve().parent.parent / "BENCH_eval.json"


def record_bench_eval(section: str, payload: dict) -> None:
    """Merge *payload* under *section* into ``BENCH_eval.json``."""
    data = {}
    if BENCH_EVAL_FILE.exists():
        data = json.loads(BENCH_EVAL_FILE.read_text())
    data[section] = payload
    BENCH_EVAL_FILE.write_text(json.dumps(data, indent=2, sort_keys=True)
                               + "\n")


@pytest.fixture
def measure():
    """Wall-clock a callable a few times and return the best-of runtime.

    Used for the *baseline* side of A-vs-B comparisons, where the measured
    side goes through the pytest-benchmark fixture.
    """

    def run(fn, repeat: int = 3) -> float:
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    return run
