"""SYN3 -- materialized view maintenance vs. recomputation.

Sweep the height of a view tower (each level filters the one below); apply
single-event transactions at the base and keep every level's
materialisation in sync.  The maintained store pays delta-sized work per
level; the baseline rematerialises the whole tower.
"""

import pytest

from repro.core import MaterializedViewStore
from repro.datalog.evaluation import BottomUpEvaluator
from repro.events.events import Transaction, delete, insert
from repro.workloads import view_tower

HEIGHTS = [2, 4, 6, 8]


@pytest.mark.parametrize("height", HEIGHTS)
def test_bench_syn3_view_maintenance(benchmark, measure, height):
    db, views = view_tower(height=height, width=400, domain_size=120, seed=5)
    store = MaterializedViewStore(db, views)
    victim = sorted(db.facts_of("T0"), key=str)[0][0].value

    def toggle():
        # One real base event per call: the victim tuple flips in and out,
        # rippling a delta through every tower level.
        if db.has_fact("T0", victim):
            store.apply(Transaction([delete("T0", victim)]))
        else:
            store.apply(Transaction([insert("T0", victim)]))

    benchmark(toggle)

    incremental_time = measure(toggle)

    def recompute():
        evaluator = BottomUpEvaluator(db, db.all_rules())
        for view in views:
            evaluator.extension(view)

    recompute_time = measure(recompute)
    assert store.verify().ok, "maintained extensions must match recomputation"

    speedup = recompute_time / incremental_time if incremental_time else float("inf")
    print(f"\nSYN3 height={height}  maintain={incremental_time * 1e3:7.2f} ms  "
          f"recompute={recompute_time * 1e3:7.2f} ms  speedup={speedup:5.1f}x")
    assert incremental_time < recompute_time
