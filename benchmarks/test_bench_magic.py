"""SYN9 -- substrate ablation: magic-sets vs. full materialisation.

Goal-directed query answering against a bound query on a long chain: the
magic-rewritten program derives only tuples relevant to the query, while
full materialisation computes the whole O(n²) closure.  The gap widens with
chain length; answers are asserted identical.
"""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.evaluation import BottomUpEvaluator
from repro.datalog.magic import magic_answers
from repro.datalog.parser import parse_atom
from repro.datalog.terms import Constant

LENGTHS = [50, 100, 200]


def _chain(n: int) -> DeductiveDatabase:
    facts = " ".join(f"Edge(N{i}, N{i + 1})." for i in range(n))
    return DeductiveDatabase.from_source(facts + """
        Path(x, y) <- Edge(x, y).
        Path(x, y) <- Edge(x, z) & Path(z, y).
    """)


@pytest.mark.parametrize("length", LENGTHS)
def test_bench_syn9_magic(benchmark, length):
    db = _chain(length)
    # A query near the chain's end: only a short suffix is relevant.
    goal = parse_atom(f"Path(N{length - 5}, y)")

    stats: list = []
    answers = benchmark(magic_answers, db, db.all_rules(), goal, stats)

    assert len(answers) == 5
    full = BottomUpEvaluator(db, db.all_rules())
    expected = {row for row in full.extension("Path")
                if row[0] == Constant(f"N{length - 5}")}
    assert answers == expected
    ratio = full.stats.facts_derived / max(1, stats[-1].facts_derived)
    print(f"\nSYN9 length={length:4d}  magic facts={stats[-1].facts_derived:6d}  "
          f"full facts={full.stats.facts_derived:6d}  ratio={ratio:5.1f}x")
    assert stats[-1].facts_derived < full.stats.facts_derived


@pytest.mark.parametrize("length", [100])
def test_bench_syn9_full_baseline(benchmark, length):
    db = _chain(length)

    def materialize():
        evaluator = BottomUpEvaluator(db, db.all_rules())
        evaluator.materialize()
        return evaluator

    evaluator = benchmark.pedantic(materialize, rounds=3, iterations=1)
    assert len(evaluator.extension("Path")) == length * (length + 1) // 2
