"""Counting-mode IVM: commit latency scales with |delta|, not |EDB|.

A synthetic view over a 10^5--10^6-row extensional database:

    V(x)  <- E(x, y).
    Ic1   <- Banned(x) & V(x).

Every commit replaces a handful of ``E`` rows (|delta| = 8 events).  In
``invalidate`` mode each commit's integrity check re-materialises the
whole view -- O(|EDB|) per commit.  In ``counting`` mode the check *is*
the delta-rule evaluation over per-tuple derivation counts -- O(|delta|)
per commit after a one-time bootstrap at open.

Acceptance criteria (ISSUE 7), recorded into ``BENCH_ivm.json``:

- counting-mode commit latency at the 10^5-fact EDB is >= 5x lower than
  ``cache_mode="invalidate"``;
- counting-mode latency grows with |delta|, not |EDB|: doubling the EDB
  with the same delta leaves per-commit latency within 3x (in practice
  it is flat; the bound absorbs fsync noise).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.datalog.database import DeductiveDatabase
from repro.events.events import Transaction, parse_transaction
from repro.server.engine import DatabaseEngine

N_SMALL = 100_000
N_LARGE = 200_000
N_BANNED = 20
DELTA_EVENTS = 8  # 4 inserts + 4 deletes per commit
ROUNDS_COUNTING = 8
ROUNDS_INVALIDATE = 3

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_ivm.json"

RULES = """
    V(x) <- E(x, y).
    Ic1 <- Banned(x) & V(x).
"""


def _build_db(n_facts: int) -> DeductiveDatabase:
    db = DeductiveDatabase.from_source(RULES)
    db.declare_base("E", 2)
    db.declare_base("Banned", 1)
    for index in range(n_facts):
        db.add_fact("E", f"N{index}", f"M{index}")
    # Banned names never occur in E: the state stays consistent, so
    # commits exercise the real checked fast path.
    for index in range(N_BANNED):
        db.add_fact("Banned", f"Z{index}")
    return db


def _delta_transactions(rounds: int, tag: str) -> list[Transaction]:
    """One |delta|=8 transaction per round: 4 fresh inserts, 4 deletes."""
    transactions = []
    for r in range(rounds):
        events = []
        for j in range(DELTA_EVENTS // 2):
            events.append(f"insert E({tag}X{r}_{j}, {tag}Y{r}_{j})")
            events.append(f"delete E(N{r * (DELTA_EVENTS // 2) + j}, "
                          f"M{r * (DELTA_EVENTS // 2) + j})")
        transactions.append(Transaction(parse_transaction(", ".join(events))))
    return transactions


def _best_commit_seconds(engine: DatabaseEngine,
                         transactions: list[Transaction]) -> float:
    best = float("inf")
    for transaction in transactions:
        start = time.perf_counter()
        outcome = engine.commit(transaction)
        best = min(best, time.perf_counter() - start)
        assert outcome.applied
    return best


def test_bench_counting_vs_invalidate(benchmark, tmp_path):
    results: dict[str, dict] = {}

    # -- invalidate baseline at the small EDB ------------------------------
    engine = DatabaseEngine.open(tmp_path / "inv", initial=_build_db(N_SMALL),
                                 cache_mode="invalidate")
    try:
        warm = _delta_transactions(1, "W")  # warm-up commit (imports, JIT)
        assert engine.commit(warm[0]).applied
        seconds = _best_commit_seconds(
            engine, _delta_transactions(ROUNDS_INVALIDATE, "I"))
        results["invalidate_small"] = {
            "edb_facts": N_SMALL, "delta_events": DELTA_EVENTS,
            "seconds_per_commit": seconds,
        }
    finally:
        engine.close(checkpoint=False)

    # -- counting at the small EDB -----------------------------------------
    engine = DatabaseEngine.open(tmp_path / "cs", initial=_build_db(N_SMALL),
                                 cache_mode="counting")
    try:
        assert engine.metrics.counter("ivm.delta_rules") > 0
        warm = _delta_transactions(1, "W")
        assert engine.commit(warm[0]).applied
        seconds = _best_commit_seconds(
            engine, _delta_transactions(ROUNDS_COUNTING, "C"))
        results["counting_small"] = {
            "edb_facts": N_SMALL, "delta_events": DELTA_EVENTS,
            "seconds_per_commit": seconds,
            "bootstraps": engine.metrics.counter("ivm.bootstrap"),
            "rederives": engine.metrics.counter("ivm.rederive"),
            "cache_invalidations": engine.metrics.counter("cache.invalidate"),
        }
        # The whole run stayed on maintained state: no invalidations.
        assert engine.metrics.counter("cache.invalidate") == 0
        # The measured side through pytest-benchmark: one counting commit.
        pending = iter(_delta_transactions(ROUNDS_COUNTING, "P"))
        benchmark.pedantic(
            lambda: engine.commit(next(pending)),
            rounds=ROUNDS_COUNTING, iterations=1)
    finally:
        engine.close(checkpoint=False)

    # -- counting at the doubled EDB, identical delta ----------------------
    engine = DatabaseEngine.open(tmp_path / "cl", initial=_build_db(N_LARGE),
                                 cache_mode="counting")
    try:
        warm = _delta_transactions(1, "W")
        assert engine.commit(warm[0]).applied
        seconds = _best_commit_seconds(
            engine, _delta_transactions(ROUNDS_COUNTING, "L"))
        results["counting_large"] = {
            "edb_facts": N_LARGE, "delta_events": DELTA_EVENTS,
            "seconds_per_commit": seconds,
        }
    finally:
        engine.close(checkpoint=False)

    speedup = (results["invalidate_small"]["seconds_per_commit"]
               / results["counting_small"]["seconds_per_commit"])
    growth = (results["counting_large"]["seconds_per_commit"]
              / results["counting_small"]["seconds_per_commit"])

    for key, entry in sorted(results.items()):
        print(f"\nIVM {key:18s} edb={entry['edb_facts']:7d} "
              f"commit={entry['seconds_per_commit'] * 1e3:9.3f} ms")
    print(f"IVM speedup counting vs invalidate at {N_SMALL}: {speedup:.1f}x")
    print(f"IVM growth  counting {N_LARGE}/{N_SMALL} (same delta): "
          f"{growth:.2f}x")

    BENCH_FILE.write_text(json.dumps({
        "benchmark": "counting_ivm_commit_latency",
        "rules": [line.strip() for line in RULES.strip().splitlines()],
        "delta_events": DELTA_EVENTS,
        "results": results,
        "speedup_counting_vs_invalidate_small": speedup,
        "growth_counting_large_over_small": growth,
    }, indent=2) + "\n")

    # Acceptance: counting >= 5x faster than invalidate at the same EDB.
    assert speedup >= 5.0, (
        f"counting must beat invalidate by >= 5x at {N_SMALL} facts: "
        f"invalidate {results['invalidate_small']['seconds_per_commit']:.4f}s"
        f" vs counting "
        f"{results['counting_small']['seconds_per_commit']:.4f}s "
        f"({speedup:.1f}x)")
    # Acceptance: same delta, doubled EDB -> latency bounded (|delta|
    # scaling, not |EDB| scaling; 3x absorbs fsync jitter).
    assert growth <= 3.0, (
        f"counting commit latency must track |delta|, not |EDB|: "
        f"{N_LARGE}-fact EDB is {growth:.2f}x the {N_SMALL}-fact latency")
