"""Tracing overhead -- the no-op path must be ~free, the enabled path cheap.

The instrumentation contract (docs/OBSERVABILITY.md): span calls sit on
*stage* boundaries, never per-tuple, so disabling tracing leaves only a
null-object check per stage.  We measure one upward interpretation three
ways -- tracing off, tracing on, and tracing on with the stats counters
asserted -- and bound the disabled overhead against an uninstrumented
baseline proxy (the same run; the comparison is off-vs-on).
"""

from __future__ import annotations

import pytest

from repro.events.events import Transaction
from repro.interpretations import UpwardInterpreter
from repro.obs import tracer as obs
from repro.workloads import chain_join_views, random_database, random_transaction

N_FACTS = 1000


@pytest.fixture
def workload():
    db = random_database(n_facts=N_FACTS, domain_size=100, n_base=4, seed=1)
    chain_join_views(db, n_views=2, negated_last=True)
    transaction = random_transaction(db, n_events=4, seed=2)
    interpreter = UpwardInterpreter(db)
    interpreter.old_extension("V2")  # amortise old-state materialisation
    return interpreter, transaction


def test_bench_tracing_disabled(benchmark, workload):
    interpreter, transaction = workload
    assert not obs.enabled() or obs.disable() is not None
    result = benchmark(interpreter.interpret, transaction)
    assert isinstance(result.transaction, Transaction)


def test_bench_tracing_enabled(benchmark, workload):
    interpreter, transaction = workload
    with obs.use() as tracer:
        result = benchmark(interpreter.interpret, transaction)
        assert tracer.count("upward.interpret") >= 1
        assert tracer.count("eval.materialize") >= 1
    assert isinstance(result.transaction, Transaction)


def test_tracing_overhead_is_bounded(measure, workload):
    """Enabled tracing stays within 3x of disabled on a stage-heavy op.

    (The acceptance bound for *disabled* tracing is the <5% regression
    gate on SYN1/server benches; this guards the enabled path instead --
    span bookkeeping must scale with stages, not tuples.)
    """
    interpreter, transaction = workload
    previous = obs.disable()
    try:
        disabled = measure(lambda: interpreter.interpret(transaction),
                           repeat=5)
        with obs.use():
            enabled = measure(lambda: interpreter.interpret(transaction),
                              repeat=5)
    finally:
        if previous is not None:
            obs.enable(previous)
    print(f"\ntracing  disabled={disabled * 1e3:7.2f} ms  "
          f"enabled={enabled * 1e3:7.2f} ms  "
          f"overhead={(enabled / disabled - 1) * 100:5.1f}%")
    assert enabled < disabled * 3, (
        "enabled tracing must stay within 3x; span calls are leaking into "
        "a per-tuple loop")


def test_stage_counters_present_when_enabled(workload):
    interpreter, transaction = workload
    with obs.use() as tracer:
        interpreter.interpret(transaction)
    spans = tracer.aggregates()["spans"]
    assert "upward.interpret" in spans
    assert "eval.materialize" in spans
    assert spans["upward.interpret"]["counters"]["transaction_events"] == 4
