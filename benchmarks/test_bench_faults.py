"""Disabled failpoints are free: overhead <= 3% of the server commit path.

The fault-injection sites threaded through the WAL, the group-commit
engine and the protocol layer stay in production code permanently, so
their disabled cost has to be negligible.  The disabled fast path is a
single module-dict truthiness check; this benchmark measures that cost
directly, then bounds the total per-transaction failpoint spend against
the measured group-commit latency of the server engine.
"""

import itertools
import time

from repro import faults
from repro.events.events import Transaction, insert
from repro.server import DatabaseEngine
from repro.workloads import employment_database

N_TRANSACTIONS = 128
#: Generous static bound on failpoint evaluations per committed
#: transaction (fast path: 1 per-member WAL append site, plus the five
#: per-batch sites amortised; counted un-amortised here to stay safe).
SITES_PER_COMMIT = 8

_run_ids = itertools.count()
FP_BENCH = faults.register("test.bench_disabled", "disabled-cost probe")


def _transactions() -> list[Transaction]:
    return [Transaction([insert("Works", f"N{index}"),
                         insert("La", f"N{index}")])
            for index in range(N_TRANSACTIONS)]


def _commit_sweep_seconds(tmp_path, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        directory = tmp_path / f"run{next(_run_ids)}"
        engine = DatabaseEngine.open(directory,
                                     initial=employment_database(20, seed=5),
                                     max_batch=8)
        try:
            transactions = _transactions()
            start = time.perf_counter()
            outcomes = engine.commit_many(transactions)
            best = min(best, time.perf_counter() - start)
            assert all(outcome.applied for outcome in outcomes)
        finally:
            engine.close(checkpoint=False)
    return best


def _disabled_call_seconds(calls: int = 200_000, repeat: int = 3) -> float:
    """Best-of per-call cost of a failpoint nobody armed."""
    failpoint = faults.failpoint
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(calls):
            failpoint(FP_BENCH)
        best = min(best, time.perf_counter() - start)
    return best / calls


def test_bench_disabled_failpoint_overhead(benchmark, tmp_path):
    assert faults.armed_names() == (), "benchmark requires a disarmed registry"

    per_call = _disabled_call_seconds()
    sweep = _commit_sweep_seconds(tmp_path)
    per_commit = sweep / N_TRANSACTIONS
    spend = per_call * SITES_PER_COMMIT
    ratio = spend / per_commit

    benchmark.pedantic(
        lambda: [faults.failpoint(FP_BENCH) for _ in range(10_000)],
        rounds=3)

    print(f"\nFAULTS disabled failpoint: {per_call * 1e9:7.1f} ns/call, "
          f"commit path {per_commit * 1e6:8.1f} us/tx, "
          f"overhead {ratio * 100:.3f}% ({SITES_PER_COMMIT} sites/tx)")

    # Acceptance criterion: disabled-failpoint overhead <= 3% of the
    # server commit path, with the per-commit site count over-estimated.
    assert ratio <= 0.03, (
        f"disabled failpoints cost {ratio * 100:.2f}% of a commit "
        f"({per_call * 1e9:.0f} ns/call x {SITES_PER_COMMIT} sites vs "
        f"{per_commit * 1e6:.0f} us/tx); the disabled path must stay "
        "a single dict check")
