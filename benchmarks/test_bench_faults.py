"""Always-on robustness hooks are cheap on the server commit path.

Two permanent costs are bounded here:

- **Disabled failpoints** (<= 3%): the fault-injection sites threaded
  through the WAL, the group-commit engine and the protocol layer stay
  in production code permanently; the disabled fast path is a single
  module-dict truthiness check, measured directly and multiplied by an
  over-estimated per-commit site count.
- **Idempotency bookkeeping** (<= 5%): stamping every commit with a
  ``txn_id`` adds a digest, a dedup-table insert and a WAL header per
  transaction.  The batch-64 sweep is run stamped and unstamped,
  best-of-N each, and the stamped path must stay within 5% (plus a tiny
  absolute allowance for sub-millisecond noise).
"""

import itertools
import time

from repro import faults
from repro.events.events import Transaction, insert
from repro.server import DatabaseEngine
from repro.workloads import employment_database

N_TRANSACTIONS = 128
#: Generous static bound on failpoint evaluations per committed
#: transaction (fast path: 1 per-member WAL append site, plus the five
#: per-batch sites amortised; counted un-amortised here to stay safe).
SITES_PER_COMMIT = 8

_run_ids = itertools.count()
FP_BENCH = faults.register("test.bench_disabled", "disabled-cost probe")


def _transactions() -> list[Transaction]:
    return [Transaction([insert("Works", f"N{index}"),
                         insert("La", f"N{index}")])
            for index in range(N_TRANSACTIONS)]


def _commit_sweep_seconds(tmp_path, repeat: int = 3, max_batch: int = 8,
                          stamped: bool = False) -> float:
    best = float("inf")
    for _ in range(repeat):
        directory = tmp_path / f"run{next(_run_ids)}"
        engine = DatabaseEngine.open(directory,
                                     initial=employment_database(20, seed=5),
                                     max_batch=max_batch)
        try:
            transactions = _transactions()
            txn_ids = ([f"bench-{index}" for index in
                        range(len(transactions))] if stamped else None)
            start = time.perf_counter()
            outcomes = engine.commit_many(transactions, txn_ids=txn_ids)
            best = min(best, time.perf_counter() - start)
            assert all(outcome.applied for outcome in outcomes)
        finally:
            engine.close(checkpoint=False)
    return best


def _disabled_call_seconds(calls: int = 200_000, repeat: int = 3) -> float:
    """Best-of per-call cost of a failpoint nobody armed."""
    failpoint = faults.failpoint
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(calls):
            failpoint(FP_BENCH)
        best = min(best, time.perf_counter() - start)
    return best / calls


def test_bench_disabled_failpoint_overhead(benchmark, tmp_path):
    assert faults.armed_names() == (), "benchmark requires a disarmed registry"

    per_call = _disabled_call_seconds()
    sweep = _commit_sweep_seconds(tmp_path)
    per_commit = sweep / N_TRANSACTIONS
    spend = per_call * SITES_PER_COMMIT
    ratio = spend / per_commit

    benchmark.pedantic(
        lambda: [faults.failpoint(FP_BENCH) for _ in range(10_000)],
        rounds=3)

    print(f"\nFAULTS disabled failpoint: {per_call * 1e9:7.1f} ns/call, "
          f"commit path {per_commit * 1e6:8.1f} us/tx, "
          f"overhead {ratio * 100:.3f}% ({SITES_PER_COMMIT} sites/tx)")

    # Acceptance criterion: disabled-failpoint overhead <= 3% of the
    # server commit path, with the per-commit site count over-estimated.
    assert ratio <= 0.03, (
        f"disabled failpoints cost {ratio * 100:.2f}% of a commit "
        f"({per_call * 1e9:.0f} ns/call x {SITES_PER_COMMIT} sites vs "
        f"{per_commit * 1e6:.0f} us/tx); the disabled path must stay "
        "a single dict check")


def test_bench_idempotency_overhead(benchmark, tmp_path):
    """txn-id stamping costs <= 5% on the batch-64 commit path."""
    assert faults.armed_names() == (), "benchmark requires a disarmed registry"

    plain = _commit_sweep_seconds(tmp_path, repeat=5, max_batch=64)
    stamped = _commit_sweep_seconds(tmp_path, repeat=5, max_batch=64,
                                    stamped=True)

    benchmark.pedantic(
        lambda: _commit_sweep_seconds(tmp_path, repeat=1, max_batch=64,
                                      stamped=True),
        rounds=2)

    overhead = stamped / plain - 1.0
    print(f"\nIDEMPOTENCY batch-64 sweep: plain {plain * 1e3:8.2f} ms, "
          f"stamped {stamped * 1e3:8.2f} ms, "
          f"overhead {overhead * 100:+.2f}%")

    # Acceptance criterion: the dedup digest + table insert + WAL header
    # stay within 5% of the unstamped path (best-of-5 each side; the
    # small absolute allowance absorbs sub-millisecond timer noise).
    assert stamped <= plain * 1.05 + 2e-3, (
        f"idempotency bookkeeping costs {overhead * 100:.1f}% on the "
        f"batch-64 commit path ({plain * 1e3:.2f} ms -> "
        f"{stamped * 1e3:.2f} ms); the per-commit spend must stay one "
        "digest, one bounded-dict insert and one WAL header")
