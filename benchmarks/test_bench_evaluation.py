"""SYN6 -- substrate ablation: semi-naive vs. naive bottom-up evaluation.

Both compute the same perfect model; semi-naive restricts each recursive
round to the newly derived delta.  On a linear chain of length n the naive
strategy re-matches O(n³) literal/fact pairs overall while semi-naive stays
near O(n²) (the output size), so the gap widens quickly -- which is why the
naive lengths here stay modest and the rounds are pinned.
"""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.evaluation import BottomUpEvaluator

LENGTHS = [16, 32, 64]


def _chain(n: int) -> DeductiveDatabase:
    facts = " ".join(f"Edge(N{i}, N{i + 1})." for i in range(n))
    return DeductiveDatabase.from_source(facts + """
        Path(x, y) <- Edge(x, y).
        Path(x, y) <- Edge(x, z) & Path(z, y).
    """)


@pytest.mark.parametrize("semi_naive", [True, False],
                         ids=["semi-naive", "naive"])
@pytest.mark.parametrize("length", LENGTHS)
def test_bench_syn6_evaluation(benchmark, length, semi_naive):
    db = _chain(length)
    holder = {}

    def materialize():
        evaluator = BottomUpEvaluator(db, db.all_rules(),
                                      semi_naive=semi_naive)
        evaluator.materialize()
        holder["evaluator"] = evaluator

    benchmark.pedantic(materialize, rounds=3, iterations=1)

    evaluator = holder["evaluator"]
    expected_paths = length * (length + 1) // 2
    assert len(evaluator.extension("Path")) == expected_paths
    print(f"\nSYN6 length={length}  semi_naive={semi_naive}  "
          f"literals_matched={evaluator.stats.literals_matched}")


def test_bench_syn6_engine_comparison(benchmark, measure):
    """Compiled closure-chain plans vs. the tuple-at-a-time interpreter.

    Same perfect model, same semi-naive iteration structure; the compiled
    engine batches each rule into a closure chain with hash-join index
    probes.  Records the before/after into ``BENCH_eval.json``.
    """
    from benchmarks.conftest import record_bench_eval

    section: dict = {}
    for length in LENGTHS:
        db = _chain(length)

        def run(engine):
            evaluator = BottomUpEvaluator(db, db.all_rules(), engine=engine)
            evaluator.materialize()
            return evaluator

        interpreted_time = measure(lambda: run("interpreted"))
        compiled_time = measure(lambda: run("compiled"))
        interpreted = run("interpreted")
        compiled = run("compiled")
        assert compiled.extension("Path") == interpreted.extension("Path")
        ratio = (interpreted_time / compiled_time if compiled_time
                 else float("inf"))
        print(f"\nSYN6 length={length}  interpreted={interpreted_time * 1e3:7.2f} ms  "
              f"compiled={compiled_time * 1e3:7.2f} ms  speedup={ratio:4.1f}x")
        section[f"length_{length}"] = {
            "interpreted_ms": round(interpreted_time * 1e3, 3),
            "compiled_ms": round(compiled_time * 1e3, 3),
            "speedup": round(ratio, 2),
        }

    db = _chain(LENGTHS[-1])
    benchmark.pedantic(lambda: BottomUpEvaluator(
        db, db.all_rules(), engine="compiled").materialize(),
        rounds=3, iterations=1)
    record_bench_eval("syn6_chain_transitive_closure", section)
    # No-regression floor: compiled must not lose to the interpreter.
    assert section[f"length_{LENGTHS[-1]}"]["speedup"] >= 1.0


def test_bench_syn6_work_ratio(benchmark):
    """Shape check: semi-naive matches asymptotically fewer literals."""
    db = _chain(60)

    def both():
        semi = BottomUpEvaluator(db, db.all_rules(), semi_naive=True)
        semi.materialize()
        naive = BottomUpEvaluator(db, db.all_rules(), semi_naive=False)
        naive.materialize()
        return semi, naive

    semi, naive = benchmark.pedantic(both, rounds=1, iterations=1)
    ratio = naive.stats.literals_matched / semi.stats.literals_matched
    print(f"\nSYN6 literal-match ratio naive/semi-naive = {ratio:.1f}x")
    assert ratio > 2
