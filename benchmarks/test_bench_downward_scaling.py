"""SYN4 -- cost and output of the downward interpretation.

Two sweeps:

- **alternatives**: a view defined by m rules has (at least) m independent
  translations for an insertion request; cost and translation count grow
  with m ("in general, several translations may exist").
- **domain**: validating a non-ground request instantiates over the finite
  domain; cost grows with the domain size.
"""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.parser import parse_rule
from repro.interpretations import DownwardInterpreter, want_insert

RULE_COUNTS = [1, 2, 4, 8]
DOMAIN_SIZES = [4, 8, 16, 32]


def _multi_rule_db(m: int) -> DeductiveDatabase:
    db = DeductiveDatabase()
    for index in range(m):
        db.declare_base(f"B{index}", 1)
        db.add_rule(parse_rule(f"V(x) <- B{index}(x)."))
    db.add_fact("B0", "Seed")
    return db


@pytest.mark.parametrize("m", RULE_COUNTS)
def test_bench_syn4_alternatives(benchmark, m):
    db = _multi_rule_db(m)
    interpreter = DownwardInterpreter(db)

    result = benchmark(interpreter.interpret, want_insert("V", "New"))

    assert len(result.translations) == m, (
        "one translation per defining rule expected"
    )
    print(f"\nSYN4a rules={m}  translations={len(result.translations)}  "
          f"descents={result.stats.descents}")


def _domain_db(size: int) -> DeductiveDatabase:
    db = DeductiveDatabase()
    db.declare_base("B", 1)
    db.declare_base("G", 1)
    db.add_rule(parse_rule("V(x) <- B(x) & not G(x)."))
    for index in range(size):
        db.add_fact("G", f"C{index}")
    return db


@pytest.mark.parametrize("domain", DOMAIN_SIZES)
def test_bench_syn4_domain_instantiation(benchmark, domain):
    from repro.datalog.rules import Atom, Literal
    from repro.datalog.terms import Variable

    db = _domain_db(domain)
    interpreter = DownwardInterpreter(db)
    # Non-ground request: ∃x achievable ιV(x); every domain constant is a
    # candidate instantiation of the ιB(x) base event.
    request = Literal(Atom("ins$V", (Variable("x"),)), True)

    result = benchmark(interpreter.interpret, request)

    assert result.is_satisfiable
    print(f"\nSYN4b domain={domain:3d}  translations={len(result.translations):4d}  "
          f"enumerations={result.stats.enumerations}")
    # Shape: the number of alternatives tracks the domain size.
    assert len(result.translations) >= domain


def test_bench_syn4_engine_no_regression(benchmark, measure):
    """Downward interpretation must not regress under the compiled engine.

    The downward interpreter's evaluation work is goal solving over a
    materialized old state, so engine choice only affects the one-time
    materialization; this pins that the compiled default costs no more
    than the interpreter on the SYN4 shapes, into ``BENCH_eval.json``.
    """
    from benchmarks.conftest import record_bench_eval
    from repro.interpretations import DownwardOptions

    domain = DOMAIN_SIZES[-1]

    def run(engine):
        interpreter = DownwardInterpreter(
            _domain_db(domain), options=DownwardOptions(engine=engine))
        result = interpreter.interpret(want_insert("V", "New"))
        assert result.is_satisfiable
        return result

    interpreted_time = measure(lambda: run("interpreted"), repeat=5)
    compiled_time = measure(lambda: run("compiled"), repeat=5)
    benchmark.pedantic(lambda: run("compiled"), rounds=3, iterations=1)
    ratio = (interpreted_time / compiled_time if compiled_time
             else float("inf"))
    print(f"\nSYN4c domain={domain}  interpreted={interpreted_time * 1e3:7.2f} ms  "
          f"compiled={compiled_time * 1e3:7.2f} ms  ratio={ratio:4.2f}x")
    record_bench_eval("syn4_downward_no_regression", {
        "domain": domain,
        "interpreted_ms": round(interpreted_time * 1e3, 3),
        "compiled_ms": round(compiled_time * 1e3, 3),
        "ratio": round(ratio, 2),
    })
    # Generous noise floor: the evaluators here run over tiny databases,
    # so "no regression" means "not dramatically slower", not a speedup.
    assert compiled_time <= interpreted_time * 3
