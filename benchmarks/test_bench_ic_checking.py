"""SYN2 -- incremental integrity checking vs. full re-check.

Section 5.1.1's point is that checking is *incremental*: the upward
interpretation of ``ιIc`` touches only what the transaction can affect.
The baseline evaluates every constraint from scratch on the updated
database.  Sweep: number of stored facts, with constraints and transaction
size fixed.
"""

import pytest

from repro.interpretations import UpwardInterpreter
from repro.problems import check_transaction
from repro.problems.ic_checking import full_check
from repro.workloads import constraint_network, random_transaction

SIZES = [200, 500, 1000, 2000]


def _workload(n_facts: int):
    db = constraint_network(n_constraints=5, n_facts=n_facts,
                            domain_size=max(20, n_facts // 4), seed=3)
    transaction = random_transaction(db, n_events=3, insert_ratio=0.9, seed=4)
    return db, transaction


@pytest.mark.parametrize("n_facts", SIZES)
def test_bench_syn2_checking(benchmark, measure, n_facts):
    db, transaction = _workload(n_facts)
    interpreter = UpwardInterpreter(db)
    interpreter.old_extension("Ic")  # set-up: old state materialised once

    result = benchmark(check_transaction, db, transaction, interpreter)

    incremental_time = measure(
        lambda: check_transaction(db, transaction, interpreter))

    def baseline():
        updated = transaction.apply_to(db)
        return full_check(updated)

    full_time = measure(baseline)
    violations_after = baseline()
    assert result.ok == (not violations_after), (
        "incremental and full checking must agree"
    )

    speedup = full_time / incremental_time if incremental_time else float("inf")
    print(f"\nSYN2 n_facts={n_facts:5d}  incremental={incremental_time * 1e3:7.2f} ms  "
          f"full={full_time * 1e3:7.2f} ms  speedup={speedup:5.1f}x  "
          f"verdict={'ok' if result.ok else 'violation'}")
    if n_facts >= 500:
        assert incremental_time < full_time
