"""SYN5 -- ablation: [Oli91]-simplified vs. literal event rules.

The paper notes the event rules "can be intensively simplified".  The
simplified compiler inlines insertion event rules per transition disjunct
and drops event-free and contradictory disjuncts.  Results must be
identical; the simplified program evaluates fewer/cheaper rules under the
flat strategy.
"""

import pytest

from repro.events.event_rules import EventCompiler
from repro.interpretations import UpwardInterpreter, UpwardOptions
from repro.workloads import employment_database, random_transaction


@pytest.mark.parametrize("simplify", [True, False],
                         ids=["simplified", "literal"])
def test_bench_syn5_upward(benchmark, simplify):
    db = employment_database(300, seed=6)
    transaction = random_transaction(db, n_events=4, seed=7)
    interpreter = UpwardInterpreter(
        db, simplify=simplify, options=UpwardOptions(strategy="flat"))

    result = benchmark(interpreter.interpret, transaction)

    # Cross-check against the opposite compilation.
    other = UpwardInterpreter(
        db, simplify=not simplify,
        options=UpwardOptions(strategy="flat")).interpret(transaction)
    assert result.insertions == other.insertions
    assert result.deletions == other.deletions
    print(f"\nSYN5 simplify={simplify}  induced={result}")


def test_bench_syn5_compile_sizes(benchmark):
    db = employment_database(50, seed=6)

    def compile_both():
        literal = EventCompiler(simplify=False).compile(db)
        simplified = EventCompiler(simplify=True).compile(db)
        return literal, simplified

    literal, simplified = benchmark(compile_both)
    literal_disjuncts = sum(
        len(t.disjuncts) for ts in literal.transition_rules.values() for t in ts)
    simplified_disjuncts = sum(
        len(t.disjuncts) for ts in simplified.transition_rules.values() for t in ts)
    print(f"\nSYN5 transition disjuncts: literal={literal_disjuncts}  "
          f"simplified={simplified_disjuncts}")
    print(f"SYN5 flat rules: literal={len(literal.upward_rules)}  "
          f"simplified={len(simplified.upward_rules)}")
    assert simplified_disjuncts <= literal_disjuncts
