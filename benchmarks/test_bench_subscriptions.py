"""Change-feed cost: publishing is (nearly) free, sourcing is what pays.

The same synthetic view as the IVM benchmark:

    V(x)  <- E(x, y).
    Ic1   <- Banned(x) & V(x).

Two claims, recorded into ``BENCH_subs.json``:

- **Fan-out is cheap**: with 64 standing subscriptions on ``V``, the
  per-commit latency of a counting-mode engine stays within 1.2x of the
  same engine with no subscribers at all.  Publishing forwards the
  maintainer's own induced deltas to in-memory callbacks -- no extra
  evaluation, no blocking delivery.
- **Sourcing dominates**: at a 10^5-fact EDB, a counting-sourced feed
  (maintainer deltas) is >= 10x faster per commit than a diff-sourced
  one (``invalidate`` mode, where the engine must snapshot and diff the
  subscribed extents because no maintained deltas exist).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.datalog.database import DeductiveDatabase
from repro.events.events import Transaction, parse_transaction
from repro.server.engine import DatabaseEngine

N_EDB = 100_000
N_BANNED = 20
N_SUBSCRIBERS = 64
DELTA_EVENTS = 8  # 4 inserts + 4 deletes per commit
ROUNDS_FAST = 8
ROUNDS_DIFF = 2

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_subs.json"

RULES = """
    V(x) <- E(x, y).
    Ic1 <- Banned(x) & V(x).
"""


def _build_db(n_facts: int) -> DeductiveDatabase:
    db = DeductiveDatabase.from_source(RULES)
    db.declare_base("E", 2)
    db.declare_base("Banned", 1)
    for index in range(n_facts):
        db.add_fact("E", f"N{index}", f"M{index}")
    for index in range(N_BANNED):
        db.add_fact("Banned", f"Z{index}")
    return db


def _delta_transactions(rounds: int, tag: str) -> list[Transaction]:
    transactions = []
    for r in range(rounds):
        events = []
        for j in range(DELTA_EVENTS // 2):
            events.append(f"insert E({tag}X{r}_{j}, {tag}Y{r}_{j})")
            events.append(f"delete E(N{r * (DELTA_EVENTS // 2) + j}, "
                          f"M{r * (DELTA_EVENTS // 2) + j})")
        transactions.append(Transaction(parse_transaction(", ".join(events))))
    return transactions


def _best_commit_seconds(engine: DatabaseEngine,
                         transactions: list[Transaction]) -> float:
    best = float("inf")
    for transaction in transactions:
        start = time.perf_counter()
        outcome = engine.commit(transaction)
        best = min(best, time.perf_counter() - start)
        assert outcome.applied
    return best


def test_bench_feed_fanout_and_sourcing(benchmark, tmp_path):
    results: dict[str, dict] = {}

    # -- counting, no subscribers: the baseline ----------------------------
    engine = DatabaseEngine.open(tmp_path / "base",
                                 initial=_build_db(N_EDB),
                                 cache_mode="counting")
    try:
        assert engine.commit(_delta_transactions(1, "W")[0]).applied
        seconds = _best_commit_seconds(
            engine, _delta_transactions(ROUNDS_FAST, "B"))
        results["counting_no_subscribers"] = {
            "edb_facts": N_EDB, "delta_events": DELTA_EVENTS,
            "subscribers": 0, "seconds_per_commit": seconds,
        }
    finally:
        engine.close(checkpoint=False)

    # -- counting, 64 subscribers: delta-sourced fan-out -------------------
    engine = DatabaseEngine.open(tmp_path / "fan",
                                 initial=_build_db(N_EDB),
                                 cache_mode="counting")
    try:
        frames: list[list[dict]] = [[] for _ in range(N_SUBSCRIBERS)]
        for sink in frames:
            engine.feed_subscribe(["V"], sink.append)
        assert engine.stats()["engine"]["feed_sourcing"] == "delta"
        assert engine.commit(_delta_transactions(1, "W")[0]).applied
        seconds = _best_commit_seconds(
            engine, _delta_transactions(ROUNDS_FAST, "F"))
        # Every subscriber saw every commit as a delta frame.
        assert all(len(sink) == ROUNDS_FAST + 1 for sink in frames)
        assert all(frame["kind"] == "delta"
                   for sink in frames for frame in sink)
        results["counting_64_subscribers"] = {
            "edb_facts": N_EDB, "delta_events": DELTA_EVENTS,
            "subscribers": N_SUBSCRIBERS, "seconds_per_commit": seconds,
            "frames_delivered": engine.metrics.counter("feed.frames"),
        }
        # The measured side through pytest-benchmark: one fan-out commit.
        pending = iter(_delta_transactions(ROUNDS_FAST, "P"))
        benchmark.pedantic(
            lambda: engine.commit(next(pending)),
            rounds=ROUNDS_FAST, iterations=1)
    finally:
        engine.close(checkpoint=False)

    # -- invalidate, 1 subscriber: diff-sourced feed -----------------------
    engine = DatabaseEngine.open(tmp_path / "diff",
                                 initial=_build_db(N_EDB),
                                 cache_mode="invalidate")
    try:
        sink: list[dict] = []
        engine.feed_subscribe(["V"], sink.append)
        assert engine.stats()["engine"]["feed_sourcing"] == "diff"
        assert engine.commit(_delta_transactions(1, "W")[0]).applied
        seconds = _best_commit_seconds(
            engine, _delta_transactions(ROUNDS_DIFF, "D"))
        assert sink and all(frame["kind"] == "delta" for frame in sink)
        results["diff_1_subscriber"] = {
            "edb_facts": N_EDB, "delta_events": DELTA_EVENTS,
            "subscribers": 1, "seconds_per_commit": seconds,
        }
    finally:
        engine.close(checkpoint=False)

    fanout_overhead = (
        results["counting_64_subscribers"]["seconds_per_commit"]
        / results["counting_no_subscribers"]["seconds_per_commit"])
    sourcing_speedup = (
        results["diff_1_subscriber"]["seconds_per_commit"]
        / results["counting_64_subscribers"]["seconds_per_commit"])

    for key, entry in sorted(results.items()):
        print(f"\nSUBS {key:24s} subs={entry['subscribers']:3d} "
              f"commit={entry['seconds_per_commit'] * 1e3:9.3f} ms")
    print(f"SUBS fan-out overhead at {N_SUBSCRIBERS} subscribers: "
          f"{fanout_overhead:.3f}x")
    print(f"SUBS counting-sourced vs diff-sourced at {N_EDB}: "
          f"{sourcing_speedup:.1f}x")

    BENCH_FILE.write_text(json.dumps({
        "benchmark": "subscription_feed_cost",
        "rules": [line.strip() for line in RULES.strip().splitlines()],
        "delta_events": DELTA_EVENTS,
        "results": results,
        "fanout_overhead_64_subscribers": fanout_overhead,
        "speedup_counting_vs_diff_sourced": sourcing_speedup,
    }, indent=2) + "\n")

    # Acceptance: feed-enabled commits within 1.2x of feed-less commits.
    assert fanout_overhead <= 1.2, (
        f"64 subscribers must not slow commits beyond 1.2x: "
        f"{fanout_overhead:.3f}x")
    # Acceptance: maintainer-sourced frames >= 10x cheaper than diffing.
    assert sourcing_speedup >= 10.0, (
        f"counting-sourced feed must beat diff-sourced by >= 10x at "
        f"{N_EDB} facts: {sourcing_speedup:.1f}x")
