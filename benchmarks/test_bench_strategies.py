"""SYN10 -- upward strategy ablation: hybrid (incremental) vs. flat.

Both strategies are faithful §4.1 implementations (their agreement is
property-tested); they differ in cost model.  The flat strategy evaluates
the whole transition program -- materialising every ``new$P`` extension per
transaction -- while the hybrid one drives delta-sized joins.  The gap is
the incremental dividend, measured at the strategy level.
"""

import pytest

from repro.interpretations import UpwardInterpreter, UpwardOptions
from repro.workloads import employment_database, random_transaction

SIZES = [100, 300, 900]


@pytest.mark.parametrize("strategy", ["hybrid", "flat"])
@pytest.mark.parametrize("n_people", SIZES)
def test_bench_syn10_strategy(benchmark, n_people, strategy):
    db = employment_database(n_people, seed=19)
    transaction = random_transaction(db, n_events=3, seed=20)
    interpreter = UpwardInterpreter(
        db, options=UpwardOptions(strategy=strategy))
    interpreter.old_extension("Unemp")  # materialise old state up front

    result = benchmark(interpreter.interpret, transaction)

    other = "flat" if strategy == "hybrid" else "hybrid"
    cross = UpwardInterpreter(
        db, options=UpwardOptions(strategy=other)).interpret(transaction)
    assert result.insertions == cross.insertions
    assert result.deletions == cross.deletions
    print(f"\nSYN10 n={n_people} strategy={strategy} induced={result}")
