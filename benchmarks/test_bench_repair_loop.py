"""SYN7 -- repair-loop convergence on increasingly broken databases.

Sweep the number of simultaneous constraint violations; the per-violation
repair loop must converge in exactly one round per violation (the
employment constraints are independent), with cost linear in the number of
violations -- where the one-shot global ``δIc`` repair is exponential
(that cliff is asserted too).
"""

import pytest

from repro.core import repair_to_consistency
from repro.datalog.errors import ComplexityLimitExceeded
from repro.problems import is_consistent, repair_database
from repro.problems.ic_checking import full_check
from repro.workloads import employment_database

VIOLATION_COUNTS = [2, 5, 10, 20]


def _broken(n_violations: int):
    db = employment_database(n_violations, employed_ratio=0.0,
                             benefit_ratio=1.0, seed=8)
    # Everyone is unemployed with a benefit; removing n benefits creates
    # exactly n independent violations.
    for row in sorted(db.facts_of("U_benefit"), key=str)[:n_violations]:
        db.remove_fact("U_benefit", row[0].value)
    return db


@pytest.mark.parametrize("n_violations", VIOLATION_COUNTS)
def test_bench_syn7_repair_loop(benchmark, n_violations):
    db = _broken(n_violations)
    assert len(full_check(db).get("Ic1", ())) == n_violations

    result = benchmark(repair_to_consistency, db)

    assert result.consistent
    assert result.rounds == n_violations
    assert is_consistent(result.db)
    print(f"\nSYN7 violations={n_violations:2d}  rounds={result.rounds}  "
          f"events={result.total_events()}")


def test_bench_syn7_global_repair_cliff(benchmark):
    """The faithful global δIc repair handles 3 violations fine ...

    ... and hits the complexity guard well before 12 (it enumerates the
    cross-product of per-violation repairs).  This is the motivation for
    the per-violation loop above.
    """
    small = _broken(3)
    result = benchmark(repair_database, small)
    assert result.is_repairable
    print(f"\nSYN7 global repair, 3 violations: {len(result.repairs)} complete repairs")

    big = _broken(12)
    with pytest.raises(ComplexityLimitExceeded):
        repair_database(big)
