"""SYN1 -- incremental (upward) vs. naive change computation.

The premise of event-rule methods: computing the changes induced by a
transaction should cost in proportion to the *change*, not the database.
We sweep the database size with the transaction size fixed and compare the
hybrid upward interpreter (old state materialised once, per-transaction
work delta-sized) against the semantic oracle (materialise both states and
diff -- cost proportional to the database).

Expected shape: the incremental method wins, by a factor that grows with
database size.
"""

import pytest

from repro.interpretations import UpwardInterpreter, naive_changes
from repro.workloads import chain_join_views, random_database, random_transaction

SIZES = [200, 500, 1000, 2000]


def _workload(n_facts: int):
    db = random_database(n_facts=n_facts, domain_size=max(20, n_facts // 10),
                         n_base=4, seed=1)
    chain_join_views(db, n_views=2, negated_last=True)
    transaction = random_transaction(db, n_events=4, seed=2)
    return db, transaction


@pytest.mark.parametrize("n_facts", SIZES)
def test_bench_syn1_incremental_vs_naive(benchmark, measure, n_facts):
    db, transaction = _workload(n_facts)
    interpreter = UpwardInterpreter(db)
    interpreter.old_extension("V2")  # materialise the old state up front

    result = benchmark(interpreter.interpret, transaction)

    incremental_time = measure(lambda: interpreter.interpret(transaction))
    naive_time = measure(lambda: naive_changes(db, transaction))
    oracle = naive_changes(db, transaction)
    assert result.insertions == oracle.insertions
    assert result.deletions == oracle.deletions

    speedup = naive_time / incremental_time if incremental_time else float("inf")
    print(f"\nSYN1 n_facts={n_facts:5d}  incremental={incremental_time * 1e3:7.2f} ms  "
          f"naive={naive_time * 1e3:7.2f} ms  speedup={speedup:5.1f}x")
    if n_facts >= 500:
        assert incremental_time < naive_time, (
            "incremental change computation should beat rematerialisation"
        )


def test_bench_syn1_engine_scaling(benchmark, measure):
    """Compiled vs. interpreted materialization over the SYN1 databases.

    The chain-join views make V2 join the *derived* V1 on a bound column
    -- the interpreter full-scans derived extensions there, the compiled
    planner hash-indexes them, so the gap is structural, not constant-
    factor.  Acceptance bar (ISSUE 8): >= 5x at the largest configuration,
    recorded into ``BENCH_eval.json``.
    """
    from benchmarks.conftest import record_bench_eval
    from repro.datalog.evaluation import BottomUpEvaluator

    section: dict = {}
    for n_facts in SIZES:
        db, _ = _workload(n_facts)

        def run(engine):
            evaluator = BottomUpEvaluator(db, db.all_rules(), engine=engine)
            evaluator.materialize()
            return evaluator

        interpreted_time = measure(lambda: run("interpreted"), repeat=5)
        compiled_time = measure(lambda: run("compiled"), repeat=5)
        interpreted = run("interpreted")
        compiled = run("compiled")
        for predicate in db.schema.derived:
            assert compiled.extension(predicate) \
                == interpreted.extension(predicate)
        speedup = (interpreted_time / compiled_time if compiled_time
                   else float("inf"))
        print(f"\nSYN1 n_facts={n_facts:5d}  interpreted={interpreted_time * 1e3:7.2f} ms  "
              f"compiled={compiled_time * 1e3:7.2f} ms  speedup={speedup:5.1f}x")
        section[f"n_facts_{n_facts}"] = {
            "interpreted_ms": round(interpreted_time * 1e3, 3),
            "compiled_ms": round(compiled_time * 1e3, 3),
            "speedup": round(speedup, 2),
        }

    db, _ = _workload(SIZES[-1])
    benchmark.pedantic(lambda: BottomUpEvaluator(
        db, db.all_rules(), engine="compiled").materialize(),
        rounds=3, iterations=1)
    record_bench_eval("syn1_materialization_scaling", section)
    assert section[f"n_facts_{SIZES[-1]}"]["speedup"] >= 5.0, (
        "compiled engine must be >= 5x the interpreter at the largest "
        "SYN1 configuration")
