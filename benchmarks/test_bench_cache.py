"""Warm-cache serving: delta-driven advance vs invalidate-on-commit.

The engine's ``advance`` cache mode patches the memoised old-state
materialisation with the induced events the commit-time integrity check
already computed (the paper's view-maintenance reading of the event
rules).  The ``invalidate`` mode is the pre-advance baseline: every commit
drops the interpreters, so the next read pays a from-scratch
materialisation.

This benchmark drives a read-heavy interleaved workload -- each commit
followed by several integrity-check probes -- through both modes and
asserts the advance mode does at least 5x fewer full materialisations,
which is where its read-latency advantage comes from.
"""

import itertools
import time

from repro.events.events import Transaction, insert
from repro.server import DatabaseEngine
from repro.workloads import employment_database

ROUNDS = 8
READS_PER_ROUND = 6
_run_ids = itertools.count()


def _fresh_engine(tmp_path, cache_mode: str) -> DatabaseEngine:
    directory = tmp_path / f"run{next(_run_ids)}"
    return DatabaseEngine.open(directory,
                               initial=employment_database(60, seed=3),
                               cache_mode=cache_mode)


def _workload(engine: DatabaseEngine) -> float:
    """Interleave commits with check probes; return total read seconds."""
    engine.check(Transaction([insert("Works", "Warmup")]))
    read_seconds = 0.0
    for round_ in range(ROUNDS):
        name = f"N{round_}"
        engine.commit(Transaction([insert("La", name),
                                   insert("U_benefit", name)]))
        for read in range(READS_PER_ROUND):
            probe = Transaction([insert("Works", f"R{round_}_{read}")])
            start = time.perf_counter()
            verdict = engine.check(probe)
            read_seconds += time.perf_counter() - start
            assert verdict.ok
    return read_seconds


def _run(tmp_path, cache_mode: str):
    engine = _fresh_engine(tmp_path, cache_mode)
    try:
        read_seconds = _workload(engine)
        counters = engine.stats()["counters"]
    finally:
        engine.close(checkpoint=False)
    return read_seconds, counters


def test_bench_cache_advance_vs_invalidate(benchmark, tmp_path):
    advance_reads, advance_counters = _run(tmp_path, "advance")
    invalidate_reads, invalidate_counters = _run(tmp_path, "invalidate")

    advance_mat = advance_counters.get("cache.rematerialize", 0)
    invalidate_mat = invalidate_counters.get("cache.rematerialize", 0)

    print(f"\nCACHE advance:    materialisations={advance_mat:3d}  "
          f"read_time={advance_reads * 1e3:8.2f} ms")
    print(f"CACHE invalidate: materialisations={invalidate_mat:3d}  "
          f"read_time={invalidate_reads * 1e3:8.2f} ms")

    # The lifecycle did what it says: advance mode never invalidated, the
    # baseline invalidated once per commit.
    assert advance_counters.get("cache.advance", 0) == ROUNDS
    assert "cache.invalidate" not in advance_counters
    assert invalidate_counters.get("cache.invalidate", 0) == ROUNDS

    # Acceptance criterion: >= 5x fewer full materialisations.  The
    # advance mode pays one (the warm-up); the baseline pays one per
    # commit-then-read round plus the warm-up.
    assert advance_mat * 5 <= invalidate_mat, (
        f"advance mode must rematerialise at least 5x less often: "
        f"{advance_mat} vs {invalidate_mat}")

    def setup():
        return (_fresh_engine(tmp_path, "advance"),), {}

    def target(engine):
        try:
            _workload(engine)
        finally:
            engine.close(checkpoint=False)

    benchmark.pedantic(target, setup=setup, rounds=3)
