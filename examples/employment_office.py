"""The employment office of Section 5, run as a live update-processing system.

Walks through every problem class of the paper on the unemployment-benefit
schema (Examples 5.1-5.3), then scales the database up and runs a random
workload with automatic integrity maintenance.

Run:  python examples/employment_office.py
"""

from repro import (
    DeductiveDatabase,
    Transaction,
    UpdateProcessor,
    insert,
    parse_transaction,
    want_delete,
    want_insert,
)
from repro.workloads import employment_database, random_transaction


def paper_scenario() -> None:
    """Examples 5.1, 5.2 and 5.3, verbatim."""
    db = DeductiveDatabase.from_source("""
        La(Dolors). U_benefit(Dolors).
        Unemp(x) <- La(x) & not Works(x).
        Ic1 <- Unemp(x) & not U_benefit(x).
    """)
    db.declare_base("Works", 1)
    office = UpdateProcessor(db)
    office.declare_view("Unemp")
    office.declare_condition("Unemp")

    # 5.1 Integrity checking: removing Dolors' benefit violates Ic1.
    attempt = parse_transaction("{delete U_benefit(Dolors)}")
    verdict = office.check(attempt)
    print(f"5.1  check {attempt}: {verdict}")

    # 5.2 View updating: how can Dolors stop being unemployed?
    translations = office.translate(want_delete("Unemp", "Dolors"))
    print(f"5.2  translate δUnemp(Dolors): {translations}")

    # 5.3 Preventing side effects: register Maria without making her
    # unemployed.
    prevented = office.prevent_side_effects(
        Transaction([insert("La", "Maria")]), "Unemp", args=("Maria",))
    print(f"5.3  prevent ιUnemp(Maria): {prevented}")

    # 5.2.4 Maintenance: the checking failure above, repaired automatically.
    maintained = office.maintain(attempt)
    print(f"5.2.4 maintain {attempt}: {maintained}")


def scaled_workload(n_people: int = 150, days: int = 15) -> None:
    """A random day-by-day workload over a larger office."""
    db = employment_database(n_people, seed=2024)
    office = UpdateProcessor(db)
    office.declare_view("Unemp")

    applied = rejected = repaired = 0
    for day in range(days):
        transaction = random_transaction(db, n_events=3, seed=day)
        outcome = office.execute(transaction, on_violation="maintain")
        if not outcome.applied:
            rejected += 1
            continue
        applied += 1
        if outcome.repairs:
            repaired += 1
    print(f"\nworkload over {n_people} people, {days} transactions: "
          f"{applied} applied ({repaired} needed repairs), {rejected} rejected")
    print(f"database still consistent: {office.is_consistent()}")
    unemployed = len(office.maintenance_deltas(Transaction()).transaction) == 0
    assert office.is_consistent()
    assert unemployed is True  # empty transaction has no deltas


if __name__ == "__main__":
    paper_scenario()
    scaled_workload()
