"""Quickstart: the paper's running example, end to end.

Builds the database of Examples 3.1 / 4.1 / 4.2, shows the compiled
transition and event rules, and runs both interpretations.

Run:  python examples/quickstart.py
"""

from repro import (
    DeductiveDatabase,
    EventCompiler,
    UpdateProcessor,
    parse_transaction,
    want_insert,
)


def main() -> None:
    # A deductive database D = (F, DR, IC): three facts, one derived
    # predicate P defined as Q minus R.
    db = DeductiveDatabase.from_source("""
        Q(A). Q(B). R(B).
        P(x) <- Q(x) & not R(x).
    """)

    # --- Section 3: transition and event rules ---------------------------------
    program = EventCompiler().compile(db)
    print("Compiled transition and event rules (Example 3.1):\n")
    print(program.describe())

    processor = UpdateProcessor(db)

    # --- Section 4.1: the upward interpretation (Example 4.1) ------------------
    transaction = parse_transaction("{delete R(B)}")
    induced = processor.upward(transaction)
    print(f"\nUpward: transaction {transaction} induces {induced}")
    assert str(induced) == "{ιP(B)}"

    # --- Section 4.2: the downward interpretation (Example 4.2) ----------------
    request = want_insert("P", "B")
    translations = processor.downward(request)
    print(f"Downward: request ιP(B) is satisfied by {translations}")
    (translation,) = translations.translations
    assert str(translation.transaction) == "{δR(B)}"

    # The two interpretations are inverses: applying the translation induces
    # exactly the requested event.
    check = processor.upward(translation.transaction)
    print(f"Round-trip: applying {translation.transaction} induces {check}")


if __name__ == "__main__":
    main()
