"""An active database: triggers, cascades and an undo journal.

Inventory management where low-stock conditions automatically reorder,
powered by the upward interpretation deciding which conditions changed
(Section 5.1.2 turned into an active-rule engine), with a journal providing
exact undo.

Run:  python examples/active_inventory.py
"""

from repro import DeductiveDatabase, Transaction, delete, insert
from repro.core import ActiveDatabase, Journal


def build_inventory() -> DeductiveDatabase:
    return DeductiveDatabase.from_source("""
        Stock(Widget, 8). Stock(Gear, 2). Stock(Bolt, 40).
        Threshold(Widget, 5). Threshold(Gear, 5). Threshold(Bolt, 10).

        LowStock(p) <- Stock(p, n) & Threshold(p, m) & Lt(n, m).
        WellStocked(p) <- Stock(p, n) & Threshold(p, m) & Geq(n, m).
    """)


def main() -> None:
    db = build_inventory()
    active = ActiveDatabase(db)

    reorders: list[str] = []

    def reorder(row, _transaction) -> Transaction:
        product = row[0].value
        reorders.append(product)
        current = next(iter(
            n.value for p, n in
            ((r[0], r[1]) for r in db.facts_of("Stock")) if p.value == product
        ))
        print(f"  -> trigger: reordering {product} (stock {current})")
        return Transaction([delete("Stock", product, current),
                            insert("Stock", product, current + 50)])

    active.on_activate("LowStock", action=reorder, name="auto-reorder")
    active.on_deactivate("LowStock",
                         action=lambda row, t: print(
                             f"  -> trigger: {row[0]} back to normal") or None,
                         name="all-clear")

    print("initial low stock:", db.query("LowStock(p)"))

    # Gear is already low but pre-existing states don't fire triggers --
    # only *transitions* do (the event rules define transitions).  Sell
    # enough widgets to cross the threshold:
    print("\nselling 5 widgets…")
    trace = active.execute(Transaction([
        delete("Stock", "Widget", 8), insert("Stock", "Widget", 3)]))
    for firing in trace.firings:
        print(f"  fired: {firing}")
    print(f"rounds: {trace.rounds};  widget stock now: "
          f"{db.query('Stock(Widget, n)')}")
    assert reorders == ["Widget"]
    assert db.query("LowStock(Widget)") == []

    # --- journaled manual adjustments with undo ---------------------------------
    print("\njournaled session:")
    journal = Journal(db)
    journal.commit(Transaction([insert("Stock", "Cam", 4),
                                insert("Threshold", "Cam", 2)]))
    journal.commit(Transaction([delete("Stock", "Bolt", 40)]))
    print("  after commits, bolt stock:", db.query("Stock(Bolt, n)"))
    journal.undo()  # oops, bring the bolts back
    print("  after undo,    bolt stock:", db.query("Stock(Bolt, n)"))
    assert db.has_fact("Stock", "Bolt", 40)


if __name__ == "__main__":
    main()
