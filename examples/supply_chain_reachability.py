"""Recursive views: reachability analysis over a supply-chain network.

The recursive ``Supplies`` closure exercises the hybrid upward strategy's
recursive-component handling and the depth-bounded downward interpretation:
when a link is cut, which downstream dependencies disappear?  And which
links could be added to restore a route?

Run:  python examples/supply_chain_reachability.py
"""

from repro import (
    DeductiveDatabase,
    DownwardInterpreter,
    DownwardOptions,
    Transaction,
    UpwardInterpreter,
    delete,
    want_insert,
)


def build_network() -> DeductiveDatabase:
    return DeductiveDatabase.from_source("""
        % direct shipping links between facilities
        Link(Mine, Smelter). Link(Smelter, Plant).
        Link(Plant, Depot). Link(Depot, Store).
        Link(Smelter, Backup). Link(Backup, Plant).

        % transitive supply relation
        Supplies(x, y) <- Link(x, y).
        Supplies(x, y) <- Link(x, z) & Supplies(z, y).

        % a facility is isolated from the mine when no supply route reaches it
        Cut(y) <- Facility(y) & not Supplies(Mine, y).
        Facility(Smelter). Facility(Plant). Facility(Depot). Facility(Store).
    """)


def main() -> None:
    db = build_network()
    upward = UpwardInterpreter(db)

    print("initial supply closure from Mine:",
          sorted(t[1].value for t in upward.old_extension("Supplies")
                 if t[0].value == "Mine"))

    # --- upward over recursion: cut the Plant→Depot link -----------------------
    cut = Transaction([delete("Link", "Plant", "Depot")])
    induced = upward.interpret(cut)
    lost = sorted(f"{a}→{b}" for a, b in
                  ((x.value, y.value) for x, y in induced.deletions_of("Supplies")))
    print(f"\ncutting Plant→Depot destroys routes: {lost}")
    print(f"newly isolated facilities: "
          f"{sorted(r[0].value for r in induced.insertions_of('Cut'))}")

    # --- the redundant route survives -------------------------------------------
    redundant = Transaction([delete("Link", "Smelter", "Plant")])
    induced = upward.interpret(redundant)
    print(f"\ncutting Smelter→Plant (Backup route exists) destroys: "
          f"{sorted(map(str, induced.deletions_of('Supplies'))) or 'nothing'}")

    # --- downward over recursion (depth-bounded) ---------------------------------
    # After the Plant→Depot cut, how could Store become supplied again?
    # Recursion makes the search space infinite: the depth bound turns it
    # into a bounded plan search (deeper bounds admit longer repair routes
    # but the negative-event bookkeeping grows combinatorially).
    broken = cut.apply_to(db)
    downward = DownwardInterpreter(
        broken, options=DownwardOptions(max_depth=6, on_depth_limit="prune"))
    plans = downward.interpret(want_insert("Supplies", "Mine", "Store"))
    print(f"\nways to restore Mine→Store (depth-bounded search):")
    for index, translation in enumerate(plans.translations[:5], start=1):
        print(f"  {index}. {translation.transaction}")
    assert plans.is_satisfiable


if __name__ == "__main__":
    main()
