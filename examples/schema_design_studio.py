"""Design-time analysis of a schema: satisfiability, reachability, evolution.

The paper points out (5.2.1, 5.2.3) that the downward interpretation doubles
as a *design tool*: validate that views are populatable, check whether the
constraints can ever be violated, and assess the impact of adding or
removing deductive rules (5.3) -- all before any data is live.

Run:  python examples/schema_design_studio.py
"""

from repro import DeductiveDatabase, UpdateProcessor, apply_schema_update
from repro.datalog.parser import parse_rule


def main() -> None:
    # A draft course-enrolment schema, with a deliberately impossible view.
    db = DeductiveDatabase.from_source("""
        Student(Ada). Student(Alan).
        Course(Logic). Course(Databases).
        Enrolled(Ada, Logic).

        Classmate(x, y) <- Enrolled(x, c) & Enrolled(y, c).
        % 'Ghost' can never hold: it requires an enrolment that is not there.
        Ghost(x) <- Enrolled(x, c) & not Enrolled(x, c).

        % every enrolment must be of a known student in a known course
        Ic1(s, c) <- Enrolled(s, c) & not Student(s).
        Ic2(s, c) <- Enrolled(s, c) & not Course(c).
    """)
    studio = UpdateProcessor(db)
    studio.declare_view("Classmate")
    studio.declare_view("Ghost")

    # --- view validation (5.2.1) -------------------------------------------------
    classmate = studio.validate_view("Classmate")
    ghost = studio.validate_view("Ghost")
    print(f"Classmate view: {classmate}")
    print(f"Ghost view:     {ghost}")
    assert classmate.is_valid and not ghost.is_valid

    # --- ensuring IC satisfaction (5.2.3) ------------------------------------------
    reachable = studio.can_reach_inconsistency()
    print(f"\ncan the constraints be violated? {reachable.satisfiable}")
    if reachable.witnesses:
        print(f"  e.g. via {reachable.witnesses[0]}")

    # --- schema evolution (5.3) -----------------------------------------------------
    # Tighten the schema: classmates must be distinct people (built-in Neq).
    # The rule replacement induces deletions on the view without touching
    # any fact.
    old_rule = parse_rule("Classmate(x, y) <- Enrolled(x, c) & Enrolled(y, c).")
    new_rule = parse_rule(
        "Classmate(x, y) <- Enrolled(x, c) & Enrolled(y, c) & Neq(x, y)."
    )
    evolved = apply_schema_update(db, add_rules=[new_rule],
                                  remove_rules=[old_rule])
    print(f"\nrule replacement induces: {evolved.induced}")
    print(f"keeps consistency: {evolved.keeps_consistency}")

    # The evolved schema is immediately analysable again.
    evolved_studio = UpdateProcessor(evolved.db)
    print(f"evolved schema consistent: {evolved_studio.is_consistent()}")


if __name__ == "__main__":
    main()
