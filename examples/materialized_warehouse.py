"""Materialized view maintenance on a small order-processing warehouse.

Three base relations (customers, orders, shipments), two derived views kept
physically materialized, a stream of transactions, and a comparison of the
incremental maintenance cost against full recomputation (Section 5.1.3).

Run:  python examples/materialized_warehouse.py
"""

import random
import time

from repro import DeductiveDatabase, MaterializedViewStore, Transaction, insert
from repro.datalog.evaluation import BottomUpEvaluator


def build_warehouse(n_customers: int = 60, n_orders: int = 300,
                    seed: int = 7) -> DeductiveDatabase:
    rng = random.Random(seed)
    db = DeductiveDatabase()
    db.declare_base("Customer", 1)
    db.declare_base("Order", 2)      # Order(order_id, customer)
    db.declare_base("Shipped", 1)    # Shipped(order_id)
    from repro.datalog.parser import parse_rule

    db.add_rule(parse_rule("Pending(o, c) <- Order(o, c) & not Shipped(o)."))
    db.add_rule(parse_rule("ActiveCustomer(c) <- Pending(o, c)."))
    for index in range(n_customers):
        db.add_fact("Customer", f"Cust{index}")
    for index in range(n_orders):
        customer = f"Cust{rng.randrange(n_customers)}"
        db.add_fact("Order", f"Ord{index}", customer)
        if rng.random() < 0.5:
            db.add_fact("Shipped", f"Ord{index}")
    return db


def main() -> None:
    db = build_warehouse()
    store = MaterializedViewStore(db, ["Pending", "ActiveCustomer"])
    print(f"warehouse: {db.fact_count()} facts, "
          f"{len(store.extension('Pending'))} pending orders, "
          f"{len(store.extension('ActiveCustomer'))} active customers")

    rng = random.Random(99)
    incremental_time = 0.0
    recompute_time = 0.0
    for step in range(30):
        order = f"NewOrd{step}"
        customer = f"Cust{rng.randrange(60)}"
        transaction = Transaction([insert("Order", order, customer)]) \
            if step % 3 else Transaction([insert("Shipped", f"Ord{step}")])

        start = time.perf_counter()
        changed = store.apply(transaction)
        incremental_time += time.perf_counter() - start

        start = time.perf_counter()
        evaluator = BottomUpEvaluator(db, db.all_rules())
        evaluator.materialize()
        recompute_time += time.perf_counter() - start

        if changed:
            summary = {view: (len(ins), len(dels))
                       for view, (ins, dels) in changed.items()}
            print(f"  step {step:2d}: {transaction}  ->  deltas {summary}")

    report = store.verify()
    print(f"\nstore verified against recomputation: {report.ok}")
    print(f"incremental maintenance: {incremental_time * 1000:.1f} ms total; "
          f"full recomputation would have been {recompute_time * 1000:.1f} ms")


if __name__ == "__main__":
    main()
