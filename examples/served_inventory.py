"""An inventory database served over TCP, driven by concurrent clients.

Hosts a :class:`DatabaseServer` on a background thread, then exercises the
whole network stack: checked commits (a violating one is rejected on the
wire), condition monitoring before committing, several clients committing
concurrently so the engine group-commits their disjoint transactions, and
finally a graceful shutdown whose checkpoint lets a reopen recover the
exact served state.

Run:  python examples/served_inventory.py
"""

import tempfile
import threading
from pathlib import Path

from repro import DeductiveDatabase
from repro.core import DurableDatabase
from repro.server import DatabaseClient, DatabaseEngine, ServerError, ServerThread


def build_inventory() -> DeductiveDatabase:
    return DeductiveDatabase.from_source("""
        Item(Widget). Item(Gear). Item(Bolt).
        InStock(Widget). InStock(Bolt).
        Discontinued(Gear).

        Orderable(x) <- Item(x) & InStock(x) & not Discontinued(x).
        Missing(x) <- Item(x) & not InStock(x).

        % an item may not be both discontinued and kept in stock
        Ic1(x) <- Discontinued(x) & InStock(x).
    """)


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        directory = Path(scratch) / "inventory"
        engine = DatabaseEngine.open(directory, initial=build_inventory())

        with ServerThread(engine) as port:
            print(f"serving inventory on 127.0.0.1:{port}\n")

            with DatabaseClient(port=port) as client:
                print("orderable:", client.query("Orderable(x)"))

                # Condition monitoring (5.1.2) before committing: does
                # restocking the gear change what is missing?
                watched = client.monitor("insert InStock(Gear)", ["Missing"])
                print("restocking Gear would deactivate Missing for:",
                      watched["deactivated"].get("Missing", []))

                # The same commit violates Ic (Gear is discontinued) and
                # is rejected server-side; nothing reaches the WAL.
                outcome = client.commit("insert InStock(Gear)")
                print("commit insert InStock(Gear):",
                      "applied" if outcome["applied"] else
                      f"rejected ({outcome['check']['violations']})")

                # A malformed transaction fails with a typed wire error.
                try:
                    client.commit("insert ((")
                except ServerError as error:
                    print(f"malformed commit -> {error.type} error: {error}")

            # Concurrent restocking: disjoint transactions group-commit.
            def restock(index: int) -> None:
                with DatabaseClient(port=port) as worker:
                    for batch in range(5):
                        worker.commit(f"insert Item(Part{index}_{batch}), "
                                      f"insert InStock(Part{index}_{batch})")

            threads = [threading.Thread(target=restock, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            with DatabaseClient(port=port) as client:
                stats = client.stats()
                commits = stats["requests"]["commit"]["count"]
                batches = stats["counters"]["commit.batches"]
                grouped = stats["counters"].get("commit.group_committed", 0)
                print(f"\n{commits} commits ran in {batches} WAL batches "
                      f"({grouped} group-committed)")
                print("orderable now:",
                      len(client.query("Orderable(x)")), "items")
                client.shutdown()   # graceful: checkpoints the WAL

        # The directory reopens to exactly the state the server served.
        recovered = DurableDatabase.open(directory)
        print("after recovery:",
              len(recovered.db.query("Orderable(x)")), "orderable items,",
              f"log length {recovered.log_length()} (checkpointed)")


if __name__ == "__main__":
    main()
