"""Condition monitoring and activation control on a sensor network.

Conditions (Sections 5.1.2, 5.2.5, 5.2.6) as an alerting system: watch
which alerts a batch of sensor updates raises or clears, ask the framework
how an alert *could* be raised (enforcing activation), and extend a risky
batch so that no alert fires (preventing activation).

Run:  python examples/condition_monitoring_alerts.py
"""

from repro import DeductiveDatabase, Transaction, UpdateProcessor, insert, delete


def build_network() -> DeductiveDatabase:
    return DeductiveDatabase.from_source("""
        % sensors and their rooms
        Sensor(S1, Lab). Sensor(S2, Lab). Sensor(S3, Office).
        % current readings
        Hot(S1). Offline(S3).

        % an alert fires for a room when some sensor there reads hot and the
        % room's ventilation is not running
        Alert(r) <- Sensor(s, r) & Hot(s) & not Vent(r).
        % a room is blind when every... (simplified) a sensor there is offline
        Blind(r) <- Sensor(s, r) & Offline(s).
    """)


def main() -> None:
    db = build_network()
    db.declare_base("Vent", 1)
    monitor = UpdateProcessor(db)
    monitor.declare_condition("Alert")
    monitor.declare_condition("Blind")

    # --- 5.1.2: monitor a batch of sensor updates -------------------------------
    batch = Transaction([insert("Hot", "S3"), insert("Vent", "Lab")])
    changes = monitor.monitor(batch)
    print(f"batch {batch}\n  monitor -> {changes}")

    # --- 5.2.5: how could the Office alert ever fire? ---------------------------
    recipe = monitor.enforce_condition("Alert", args=("Office",))
    print(f"\nways to raise Alert(Office): {recipe}")

    # --- validation: is the Blind condition activatable at all? -----------------
    validation = monitor.validate_condition("Blind")
    print(f"Blind condition achievable: {validation}")

    # --- 5.2.6: apply a hot reading without raising any alert -------------------
    risky = Transaction([insert("Hot", "S2")])
    safe = monitor.prevent_condition_activation(risky, "Alert")
    print(f"\nrisky batch {risky}")
    print(f"  alert-free extensions: {safe}")

    # Execute the safest extension and confirm silence.
    chosen = safe.translations[0].transaction
    quiet = monitor.monitor(chosen)
    print(f"  executed {chosen}: alerts changed = "
          f"{not quiet.is_unaffected('Alert')}")
    assert quiet.is_unaffected("Alert")


if __name__ == "__main__":
    main()
