"""Unit tests for the predicate namespaces."""

import pytest

from repro.datalog.parser import parse_atom, parse_literal
from repro.events.naming import (
    EventKind,
    del_name,
    display,
    display_atom,
    display_literal,
    event_kind_of,
    event_name,
    ins_name,
    is_event_predicate,
    is_new_predicate,
    new_name,
    parse_prefixed,
    strip_prefix,
)


class TestPrefixes:
    def test_names(self):
        assert ins_name("P") == "ins$P"
        assert del_name("P") == "del$P"
        assert new_name("P") == "new$P"

    def test_event_name_by_kind(self):
        assert event_name(EventKind.INSERTION, "P") == "ins$P"
        assert event_name(EventKind.DELETION, "P") == "del$P"

    def test_predicates(self):
        assert is_event_predicate("ins$P")
        assert is_event_predicate("del$P")
        assert not is_event_predicate("new$P")
        assert is_new_predicate("new$P")
        assert not is_event_predicate("P")

    def test_strip(self):
        assert strip_prefix("ins$P") == "P"
        assert strip_prefix("P") == "P"

    def test_parse_prefixed(self):
        assert parse_prefixed("ins$P") == ("ins", "P")
        assert parse_prefixed("del$P") == ("del", "P")
        assert parse_prefixed("new$P") == ("new", "P")
        assert parse_prefixed("P") == ("old", "P")

    def test_event_kind_of(self):
        assert event_kind_of("ins$P") is EventKind.INSERTION
        assert event_kind_of("del$P") is EventKind.DELETION
        assert event_kind_of("new$P") is None

    def test_dollar_rejected_by_parser(self):
        from repro.datalog.errors import ParseError

        with pytest.raises(ParseError):
            parse_atom("ins$P(x)")


class TestEventKind:
    def test_symbols(self):
        assert EventKind.INSERTION.symbol == "ι"
        assert EventKind.DELETION.symbol == "δ"

    def test_opposite(self):
        assert EventKind.INSERTION.opposite() is EventKind.DELETION
        assert EventKind.DELETION.opposite() is EventKind.INSERTION


class TestDisplay:
    def test_display_names(self):
        assert display("ins$P") == "ιP"
        assert display("del$P") == "δP"
        assert display("new$P") == "Pn"
        assert display("P") == "P"

    def test_display_atom(self):
        from repro.datalog.rules import Atom
        from repro.datalog.terms import Constant

        assert display_atom(Atom("ins$P", (Constant("B"),))) == "ιP(B)"
        assert display_atom(Atom("ins$P")) == "ιP"

    def test_display_literal(self):
        literal = parse_literal("not P(x)")
        assert display_literal(literal) == "¬P(x)"
