"""EngineGroup behaviour: partitioning, scatter-gather, 2PC, degrade."""

from __future__ import annotations

import pytest

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import RoutingError
from repro.events.events import parse_transaction
from repro.server.engine import TxnConflictError
from repro.shard import EngineGroup

from tests import faultkit


def employment_db() -> DeductiveDatabase:
    db = DeductiveDatabase.from_source("""
        La(Dolors). U_benefit(Dolors).
        La(Pere). U_benefit(Pere). Works(Pere).
        Unemp(x) <- La(x) & not Works(x).
        Ic1 <- Unemp(x) & not U_benefit(x).
    """)
    return db


def open_group(tmp_path, shards=3, **kwargs) -> EngineGroup:
    return EngineGroup.open(tmp_path / "grp", employment_db(),
                            shards=shards, **kwargs)


def cross_shard_names(group: EngineGroup, count: int = 2) -> list[str]:
    """Constants provably living on *count* distinct shards."""
    chosen: dict[int, str] = {}
    for index in range(1000):
        name = f"Person{index}"
        shard = group.routing.shard_of("La", (name,))
        chosen.setdefault(shard, name)
        if len(chosen) == count:
            return [chosen[s] for s in sorted(chosen)][:count]
    raise AssertionError("hash never covered enough shards")  # pragma: no cover


class TestPartitioning:
    def test_facts_partition_and_rules_replicate(self, tmp_path):
        group = open_group(tmp_path)
        total = sum(len(list(e.db.iter_facts())) for e in group.engines)
        assert total == 5  # every fact lives on exactly one shard
        for engine in group.engines:
            assert len(engine.db.rules) == 1
            assert len(engine.db.constraints) == 1
        group.close()

    def test_reopen_preserves_schema_on_empty_shards(self, tmp_path):
        """A shard holding zero facts of a predicate must still accept
        commits for it after a reopen (routing.json is the durable
        schema record)."""
        group = open_group(tmp_path)
        group.close()
        group = EngineGroup.open(tmp_path / "grp")
        for engine in group.engines:
            assert set(engine.db.schema.base) >= {"La", "U_benefit", "Works"}
        # Commit a fact of a predicate this shard has never seen.
        name = cross_shard_names(group, 1)[0]
        outcome = group.commit(parse_transaction(
            f"insert La({name}), insert U_benefit({name})"))
        assert outcome.applied
        group.close()

    def test_reopen_with_wrong_shard_count_is_rejected(self, tmp_path):
        group = open_group(tmp_path, shards=3)
        group.close()
        with pytest.raises(RoutingError, match="3-shard"):
            EngineGroup.open(tmp_path / "grp", shards=2)

    def test_reopen_with_initial_is_rejected(self, tmp_path):
        group = open_group(tmp_path)
        group.close()
        with pytest.raises(RoutingError, match="already holds"):
            EngineGroup.open(tmp_path / "grp", employment_db())

    def test_single_shard_is_the_degenerate_case(self, tmp_path):
        group = open_group(tmp_path, shards=1)
        assert group.query("Unemp(x)") == [("Dolors",)]
        outcome = group.commit(parse_transaction("insert Works(Dolors)"))
        assert outcome.applied
        assert group.query("Unemp(x)") == []
        # Single-state ops delegate instead of raising.
        assert group.downward is not None
        group.monitor(parse_transaction("delete Works(Dolors)"), ["Unemp"])
        group.close()


class TestScatterGatherReads:
    def test_query_merges_shard_answers(self, tmp_path):
        group = open_group(tmp_path)
        assert group.query("La(x)") == [("Dolors",), ("Pere",)]
        assert group.query("Unemp(x)") == [("Dolors",)]
        group.close()

    def test_bound_key_routes_to_one_shard(self, tmp_path):
        group = open_group(tmp_path)
        assert group.routing.shards_for_goal("La(Dolors)") == \
            [group.routing.shard_of("La", ("Dolors",))]
        assert group.query("La(Dolors)") == [()]
        group.close()

    def test_upward_merges_induced_events(self, tmp_path):
        group = open_group(tmp_path)
        a, b = cross_shard_names(group)
        transaction = parse_transaction(f"insert La({a}), insert La({b})")
        result = group.upward(transaction)
        induced = result.insertions.get("Unemp", frozenset())
        assert {row[0].value for row in induced} == {a, b}
        group.close()

    def test_check_merges_violations(self, tmp_path):
        group = open_group(tmp_path)
        a, b = cross_shard_names(group)
        verdict = group.check(parse_transaction(
            f"insert La({a}), insert La({b})"))
        assert not verdict.ok  # both unemployed without benefit
        group.close()

    def test_multi_shard_rejects_single_state_ops(self, tmp_path):
        group = open_group(tmp_path)
        with pytest.raises(RoutingError, match="monitor"):
            group.monitor(parse_transaction("insert Works(Dolors)"), ["Unemp"])
        with pytest.raises(RoutingError, match="downward"):
            group.downward([])
        group.close()


class TestCommits:
    def test_single_shard_commit_routes_directly(self, tmp_path):
        group = open_group(tmp_path)
        outcome = group.commit(parse_transaction("insert Works(Dolors)"))
        assert outcome.applied
        assert group.metrics.counter("router.single_shard_commits") == 1
        assert group.metrics.counter("router.cross_shard_commits") == 0
        assert len(group.decisions) == 0  # no 2PC for one participant
        group.close()

    def test_cross_shard_commit_runs_2pc(self, tmp_path):
        group = open_group(tmp_path)
        a, b = cross_shard_names(group)
        outcome = group.commit(parse_transaction(
            f"insert La({a}), insert U_benefit({a}), "
            f"insert La({b}), insert U_benefit({b})"))
        assert outcome.applied
        assert sorted(map(str, outcome.effective)) == sorted(map(
            str, parse_transaction(
                f"insert La({a}), insert U_benefit({a}), "
                f"insert La({b}), insert U_benefit({b})")))
        assert group.metrics.counter("router.cross_shard_commits") == 1
        assert len(group.decisions) == 1
        assert group.query(f"Unemp({a})") == [()]
        group.close()

    def test_cross_shard_veto_aborts_everywhere(self, tmp_path):
        group = open_group(tmp_path)
        a, b = cross_shard_names(group)
        before = {tuple(r) for r in group.query("La(x)")}
        outcome = group.commit(parse_transaction(
            f"insert La({a}), insert La({b})"))  # no benefits: Ic1 fires
        assert not outcome.applied
        assert outcome.check is not None and not outcome.check.ok
        assert {tuple(r) for r in group.query("La(x)")} == before
        group.close()

    def test_cross_shard_commit_is_idempotent_by_txn_id(self, tmp_path):
        group = open_group(tmp_path)
        a, b = cross_shard_names(group)
        transaction = parse_transaction(
            f"insert La({a}), insert U_benefit({a}), "
            f"insert La({b}), insert U_benefit({b})")
        first = group.commit(transaction, txn_id="t-1")
        replay = group.commit(transaction, txn_id="t-1")
        assert first.applied and replay.applied
        assert len(group.decisions) == 1
        # Replay re-drove the recorded decision instead of re-applying.
        assert group.metrics.counter("twopc.redriven") == 1
        group.close()

    def test_cross_shard_maintain_policy_is_rejected(self, tmp_path):
        group = open_group(tmp_path)
        a, b = cross_shard_names(group)
        with pytest.raises(RoutingError, match="reject"):
            group.commit(parse_transaction(
                f"insert La({a}), insert La({b})"), on_violation="maintain")
        group.close()

    def test_unroutable_commit_is_a_typed_error(self, tmp_path):
        group = open_group(tmp_path)
        with pytest.raises(RoutingError, match="Ghost"):
            group.commit(parse_transaction("insert Ghost(X)"))
        group.close()

    def test_prepared_keys_block_conflicting_commits(self, tmp_path):
        group = open_group(tmp_path)
        a, b = cross_shard_names(group)
        shard = group.routing.shard_of("La", (a,))
        engine = group.engines[shard]
        sub = parse_transaction(f"insert La({a}), insert U_benefit({a})")
        vote = engine.prepare(sub, "held-1")
        assert vote["vote"] == "commit"
        with pytest.raises(TxnConflictError):
            engine.commit(parse_transaction(f"insert La({a})"))
        # Non-overlapping keys still commit while the vote is held.
        assert engine.commit(parse_transaction(
            f"insert Works({a}2), insert La({a}2)")).applied
        engine.decide("held-1", "abort")
        assert engine.commit(parse_transaction(
            f"insert La({a}), insert U_benefit({a})")).applied
        group.close()


class TestDegradedAggregation:
    def test_stats_aggregates_shards(self, tmp_path):
        group = open_group(tmp_path)
        stats = group.stats()
        assert stats["engine"]["shards"] == 3
        assert stats["engine"]["facts"] == 5
        assert set(stats["shards"]) == {"0", "1", "2"}
        assert "degraded" not in stats
        group.close()

    def test_stats_degrade_when_a_shard_is_down(self, tmp_path):
        group = open_group(tmp_path)
        group.engines[1].close()
        stats = group.stats()
        assert stats["degraded"]["shards"] == [1]
        assert stats["degraded"]["errors"]["1"]["type"] == "closed"
        assert stats["shards"]["1"] is None
        assert stats["shards"]["0"] is not None
        group.close()

    def test_health_reports_not_ready_but_answers(self, tmp_path):
        group = open_group(tmp_path)
        assert group.health()["ready"] is True
        group.engines[2].close()
        health = group.health()
        assert health["live"] is True
        assert health["ready"] is False
        # A closed in-process engine still answers health (not-ready);
        # transport-level degradation is the router's test to make.
        assert health["shards"]["2"]["ready"] is False
        group.close()

    def test_reads_fail_loudly_when_an_owner_is_down(self, tmp_path):
        """Reads must never silently return partial answers."""
        from repro.server.engine import EngineClosedError

        group = open_group(tmp_path)
        group.engines[0].close()
        with pytest.raises(EngineClosedError):
            group.query("La(x)")  # unbound: needs every shard
        group.close()


class TestGroupRecovery:
    def test_acked_cross_shard_commits_survive_reopen(self, tmp_path):
        group = open_group(tmp_path)
        a, b = cross_shard_names(group)
        assert group.commit(parse_transaction(
            f"insert La({a}), insert U_benefit({a}), "
            f"insert La({b}), insert U_benefit({b})")).applied
        group.close()
        group = EngineGroup.open(tmp_path / "grp")
        assert group.query(f"La({a})") == [()]
        assert group.query(f"La({b})") == [()]
        for engine in group.engines:
            faultkit.check_derived_oracle(engine)
        group.close()


class TestCountingMode:
    """Each EngineGroup member runs its own counting maintainer; 2PC
    decide applies counted deltas instead of invalidating."""

    def test_members_run_counting_maintainers(self, tmp_path):
        group = open_group(tmp_path, cache_mode="counting")
        try:
            for engine in group.engines:
                assert engine.stats()["engine"]["cache_mode"] == "counting"
                assert engine.maintainer.active
        finally:
            group.close()

    def test_cross_shard_commit_applies_counted_deltas(self, tmp_path):
        group = open_group(tmp_path, cache_mode="counting")
        try:
            a, b = cross_shard_names(group)
            outcome = group.commit(parse_transaction(
                f"insert La({a}), insert U_benefit({a}), "
                f"insert La({b}), insert U_benefit({b})"))
            assert outcome.applied
            assert group.metrics.counter("router.cross_shard_commits") == 1
            assert group.query(f"Unemp({a})") == [()]
            # Every member's maintained extensions equal its own naive
            # rebuild -- the decide path advanced counts, not just facts.
            for engine in group.engines:
                faultkit.check_derived_oracle(engine)
                assert engine.metrics.counter("cache.invalidate") == 0
        finally:
            group.close()

    def test_cross_shard_veto_leaves_counts_intact(self, tmp_path):
        group = open_group(tmp_path, cache_mode="counting")
        try:
            a, b = cross_shard_names(group)
            # Unemployed without a benefit on both shards: vetoed.
            outcome = group.commit(parse_transaction(
                f"insert La({a}), insert La({b})"))
            assert not outcome.applied
            for engine in group.engines:
                faultkit.check_derived_oracle(engine)
        finally:
            group.close()
