"""Multi-shard end-to-end: real processes, real sockets, real 2PC.

Three topologies, all driven through the ``repro`` CLI in subprocesses:

- ``shard-serve``: one process hosting a 3-shard :class:`EngineGroup`;
- ``serve`` x3 + ``route``: three shard servers fronted by a router
  process speaking 2PC over the wire;
- the same router topology under chaos (``REPRO_FAULTS`` drops frames on
  the shards), exercised through ``repro call --router`` -- the resilient
  path must still produce exactly-once commits.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.shard import RoutingTable

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

DB_SOURCE = """
    La(Dolors). U_benefit(Dolors). Works(Pere). La(Pere).
    Unemp(x) <- La(x) & not Works(x).
    Ic1 <- Unemp(x) & not U_benefit(x).
"""

pytestmark = pytest.mark.slow


def cli_env(extra: dict | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop("REPRO_FAULTS", None)
    env.update(extra or {})
    return env


def spawn(args: list[str], env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args], env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)


def await_port(port_file: Path, process: subprocess.Popen,
               deadline: float = 30.0) -> int:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if port_file.exists() and port_file.read_text().strip():
            return int(port_file.read_text().strip())
        assert process.poll() is None, (
            f"server died early:\n"
            f"{process.stdout.read().decode(errors='replace')}")
        time.sleep(0.05)
    raise AssertionError(f"no port file at {port_file} within {deadline}s")


def call(port: int, *args: str, env: dict | None = None,
         check: bool = True) -> dict:
    """One ``repro call`` invocation; returns the parsed JSON result."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "call", *args,
         "--port", str(port)],
        env=env or cli_env(), capture_output=True, timeout=60)
    if check:
        assert result.returncode == 0, (
            f"repro call {' '.join(args)} failed:\n"
            f"{result.stdout.decode()}\n{result.stderr.decode()}")
    return json.loads(result.stdout) if result.stdout.strip() else {}


def shutdown_all(*pairs) -> None:
    """Best-effort shutdown of (process, port) pairs, routers first."""
    for process, port in pairs:
        if process.poll() is None:
            try:
                call(port, "shutdown", check=False)
            except Exception:
                pass
    for process, _ in pairs:
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - cleanup
            process.kill()
            process.wait()


def names_per_shard(group_dir: Path) -> list[str]:
    """One hashed constant per shard, in shard order."""
    table = RoutingTable.load(group_dir)
    chosen: dict[int, str] = {}
    for index in range(1000):
        name = f"Person{index}"
        chosen.setdefault(table.shard_of("La", (name,)), name)
        if len(chosen) == table.n_shards:
            return [chosen[s] for s in sorted(chosen)]
    raise AssertionError("hash never covered all shards")  # pragma: no cover


class TestShardServeEndToEnd:
    def test_shard_serve_commit_query_recover(self, tmp_path):
        db_file = tmp_path / "db.dl"
        db_file.write_text(DB_SOURCE)
        group_dir = tmp_path / "grp"
        port_file = tmp_path / "port"
        env = cli_env()
        process = spawn(["shard-serve", str(group_dir), "--shards", "3",
                         "--init", str(db_file), "--port", "0",
                         "--port-file", str(port_file)], env)
        try:
            port = await_port(port_file, process)
            a, b, c = names_per_shard(group_dir)

            # Scatter-gather read across all three shards.
            answers = call(port, "query", "Unemp(x)", "--router")
            assert answers["answers"] == [["Dolors"]]

            # A cross-shard commit through the in-process coordinator.
            outcome = call(
                port, "commit", "--router", "-t",
                f"insert La({a}), insert U_benefit({a}), "
                f"insert La({b}), insert U_benefit({b}), "
                f"insert La({c}), insert U_benefit({c})")
            assert outcome["applied"] is True

            # A vetoed cross-shard commit: atomically rejected (exit 1).
            result = subprocess.run(
                [sys.executable, "-m", "repro", "call", "commit",
                 "--router", "-t", f"insert La({a}9), insert La({b}9)",
                 "--port", str(port)],
                env=env, capture_output=True, timeout=60)
            assert result.returncode == 1
            vetoed = json.loads(result.stdout)
            assert vetoed["applied"] is False

            health = call(port, "health", "--router")
            assert health["ready"] is True and health["in_doubt"] == []
            stats = call(port, "stats", "--router")
            assert stats["engine"]["shards"] == 3
            assert stats["counters"]["router.cross_shard_commits"] >= 1

            call(port, "shutdown")
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait()

        # Reopen offline: the committed people exist, the vetoed don't.
        from repro.shard import EngineGroup

        group = EngineGroup.open(group_dir)
        try:
            unemployed = {row[0] for row in group.query("Unemp(x)")}
            assert {a, b, c, "Dolors"} <= {str(v) for v in unemployed}
            assert not group.query(f"La({a}9)")
        finally:
            group.close()


def start_router_topology(tmp_path, env, router_args=()):
    """Bootstrap a 3-shard group dir, then serve it as 3+1 processes."""
    db_file = tmp_path / "db.dl"
    db_file.write_text(DB_SOURCE)
    group_dir = tmp_path / "grp"
    boot_port = tmp_path / "boot-port"
    boot = spawn(["shard-serve", str(group_dir), "--shards", "3",
                  "--init", str(db_file), "--port", "0",
                  "--port-file", str(boot_port)], cli_env())
    port = await_port(boot_port, boot)
    call(port, "shutdown", check=False)
    assert boot.wait(timeout=30) == 0

    shards = []
    for index in range(3):
        port_file = tmp_path / f"port{index}"
        process = spawn(
            ["serve", str(group_dir / f"shard-{index}"),
             "--routing", str(group_dir / "routing.json"),
             "--port", "0", "--port-file", str(port_file)], env)
        shards.append((process, await_port(port_file, process)))

    router_port_file = tmp_path / "portR"
    router = spawn(
        ["route", str(group_dir),
         *(piece for _, p in shards
           for piece in ("--shard", f"127.0.0.1:{p}")),
         *router_args,
         "--port", "0", "--port-file", str(router_port_file)], cli_env())
    router_port = await_port(router_port_file, router)
    return group_dir, shards, (router, router_port)


class TestRouterEndToEnd:
    def test_router_scatter_gather_and_remote_2pc(self, tmp_path):
        env = cli_env()
        group_dir, shards, (router, router_port) = \
            start_router_topology(tmp_path, env)
        try:
            a, b, c = names_per_shard(group_dir)
            answers = call(router_port, "query", "La(x)", "--router")
            assert answers["answers"] == [["Dolors"], ["Pere"]]

            outcome = call(
                router_port, "commit", "--router", "-t",
                f"insert La({a}), insert U_benefit({a}), "
                f"insert La({b}), insert U_benefit({b})")
            assert outcome["applied"] is True
            assert call(router_port, "query", f"La({a})",
                        "--router")["answers"] == [[]]

            stats = call(router_port, "stats", "--router")
            assert stats["engine"]["shards"] == 3
            assert stats["counters"]["router.cross_shard_commits"] == 1
            assert stats["engine"]["decisions"] == 1

            # Degrade: kill one shard, health answers with a typed entry.
            victim, victim_port = shards[2]
            call(victim_port, "shutdown", check=False)
            victim.wait(timeout=30)
            health = call(router_port, "health", check=False)
            assert health["live"] is True and health["ready"] is False
            assert health["degraded"]["shards"] == [2]
            assert health["degraded"]["errors"]["2"]["type"] == "unavailable"
        finally:
            shutdown_all((router, router_port),
                         *((p, port) for p, port in shards))

    def test_router_subscription_merges_2pc_frames(self, tmp_path):
        """A standing query through the router topology: a cross-shard 2PC
        commit pushes exactly one merged frame; an atomically vetoed one
        pushes none (proven by the next frame being the next commit)."""
        env = cli_env()
        group_dir, shards, (router, router_port) = \
            start_router_topology(tmp_path, env)
        follow = None
        try:
            a, b, c = names_per_shard(group_dir)
            follow = subprocess.Popen(
                [sys.executable, "-m", "repro", "call", "subscribe",
                 "Unemp", "--follow", "--max-frames", "2",
                 "--port", str(router_port)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
            info = json.loads(follow.stdout.readline())
            assert info["subscription_id"].startswith("sub-")
            assert info["predicates"] == ["Unemp"]

            # One 2PC commit touching two shards -> exactly one frame.
            outcome = call(
                router_port, "commit", "--router", "-t",
                f"insert La({a}), insert U_benefit({a}), "
                f"insert La({b}), insert U_benefit({b})")
            assert outcome["applied"] is True
            first = json.loads(follow.stdout.readline())
            assert first["feed"] == info["subscription_id"]
            assert first["frame"]["kind"] == "delta"
            assert first["frame"]["inserted"]["Unemp"] == sorted(
                [[a], [b]])

            # A vetoed cross-shard commit (no benefits: Ic1 fires on both
            # shards) must push nothing...
            vetoed = call(router_port, "commit", "--router", "-t",
                          f"insert La({a}2), insert La({b}2)", check=False)
            assert vetoed["applied"] is False
            # ...so the next frame on the stream is the next applied
            # commit, not a leak from the abort.
            outcome = call(router_port, "commit", "--router", "-t",
                           f"insert La({c}), insert U_benefit({c})")
            assert outcome["applied"] is True
            second = json.loads(follow.stdout.readline())
            assert second["frame"]["inserted"]["Unemp"] == [[c]]
            assert second["seq"] == first["seq"] + 1
            assert follow.wait(timeout=30) == 0  # --max-frames reached
        finally:
            if follow is not None and follow.poll() is None:
                follow.kill()
                follow.wait()
            shutdown_all((router, router_port),
                         *((p, port) for p, port in shards))

    def test_router_chaos_commits_exactly_once(self, tmp_path):
        """Each shard drops a run of response frames mid-workload; the
        resilient path through the router still yields exactly-once
        commits (dropped acks are retried under the same txn_id)."""
        chaos = cli_env({"REPRO_FAULTS": "server.send_frame=drop@4#3"})
        # A dropped response stalls the router's shard client until its
        # read timeout; keep that short so retries happen quickly.
        group_dir, shards, (router, router_port) = \
            start_router_topology(tmp_path, chaos,
                                  router_args=("--timeout", "3"))
        try:
            a, b, c = names_per_shard(group_dir)
            people = [f"{n}{i}" for n in (a, b, c) for i in range(3)]
            for index, person in enumerate(people):
                outcome = call(
                    router_port, "commit", "--router",
                    "--txn-id", f"chaos-{index}", "-t",
                    f"insert La({person}), insert U_benefit({person})")
                assert outcome["applied"] is True, person
            # Replays of the same ids return the recorded outcomes.
            for index, person in enumerate(people):
                replay = call(
                    router_port, "commit", "--router",
                    "--txn-id", f"chaos-{index}", "-t",
                    f"insert La({person}), insert U_benefit({person})")
                assert replay["applied"] is True, person
            answers = call(router_port, "query", "La(x)", "--router")
            assert {row[0] for row in answers["answers"]} == \
                set(people) | {"Dolors", "Pere"}
        finally:
            shutdown_all((router, router_port),
                         *((p, port) for p, port in shards))
