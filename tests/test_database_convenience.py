"""Tests for the query/persistence conveniences on DeductiveDatabase."""


from repro.datalog import DeductiveDatabase


class TestQuery:
    def test_open_query(self, pqr_db):
        assert pqr_db.query("P(x)") == [("A",)]
        assert sorted(pqr_db.query("Q(x)"), key=str) == [("A",), ("B",)]

    def test_ground_query(self, pqr_db):
        assert pqr_db.query("P(A)") == [()]
        assert pqr_db.query("P(B)") == []

    def test_join_query_variable_order(self):
        db = DeductiveDatabase.from_source(
            "E(A,B). E(B,C). J(x, z) <- E(x, y) & E(y, z).")
        assert db.query("J(x, z)") == [("A", "C")]

    def test_repeated_variable(self):
        db = DeductiveDatabase.from_source("E(A,A). E(A,B).")
        assert db.query("E(x, x)") == [("A",)]


class TestPersistence:
    def test_round_trip(self, employment_db, tmp_path):
        path = tmp_path / "db.dl"
        employment_db.to_file(path)
        again = DeductiveDatabase.from_file(path)
        assert set(again.iter_facts()) == set(employment_db.iter_facts())
        assert set(map(str, again.all_rules())) == \
            set(map(str, employment_db.all_rules()))

    def test_loaded_db_is_operational(self, employment_db, tmp_path):
        path = tmp_path / "db.dl"
        employment_db.to_file(path)
        again = DeductiveDatabase.from_file(path)
        assert again.query("Unemp(x)") == [("Dolors",)]
