"""Tests for the JSON-lines protocol: codec, versioning, dispatch."""

import json

import pytest

from repro.datalog import errors
from repro.problems.base import StateError
from repro.requests import WireFormatError
from repro.server import protocol
from repro.server.engine import (
    ConflictDeferralTimeout,
    DatabaseEngine,
    EngineClosedError,
    IdempotencyError,
)
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    Response,
    decode_request,
    decode_response,
    dispatch,
)


@pytest.fixture
def engine(tmp_path, employment_db):
    engine = DatabaseEngine.open(tmp_path / "d", initial=employment_db)
    yield engine
    engine.close(checkpoint=False)


def call(engine, op, **params):
    response = dispatch(engine, Request(op=op, params=params, id=1))
    return response


class TestCodec:
    def test_request_roundtrip(self):
        request = Request(op="commit", params={"transaction": "insert P(A)"},
                          id=42)
        decoded = decode_request(request.to_json())
        assert decoded.op == "commit"
        assert decoded.params == {"transaction": "insert P(A)"}
        assert decoded.id == 42
        assert decoded.version == PROTOCOL_VERSION

    def test_response_roundtrip(self):
        response = Response(ok=True, result={"answers": [["A"]]}, id=7)
        decoded = decode_response(response.to_json())
        assert decoded.ok and decoded.id == 7
        assert decoded.result == {"answers": [["A"]]}

    def test_error_response_roundtrip(self):
        response = protocol.error_response(3, ProtocolError("nope"))
        decoded = decode_response(response.to_json())
        assert not decoded.ok
        assert decoded.error["type"] == "protocol"
        assert "nope" in decoded.error["message"]

    def test_bytes_accepted(self):
        decoded = decode_request(b'{"v": 1, "op": "ping"}')
        assert decoded.op == "ping"

    @pytest.mark.parametrize("line", [
        "not json at all",
        "[1, 2, 3]",
        '{"v": 1}',
        '{"v": 1, "op": ""}',
        '{"v": 1, "op": "ping", "params": [1]}',
        '{"v": 99, "op": "ping"}',
    ])
    def test_malformed_requests_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_malformed_response_rejected(self):
        with pytest.raises(ProtocolError):
            decode_response('{"v": 1}')


class TestDispatch:
    def test_hello_lists_every_op(self, engine):
        result = call(engine, "hello").result
        assert result["version"] == PROTOCOL_VERSION
        assert "commit" in result["ops"] and "shutdown" in result["ops"]

    def test_ping(self, engine):
        assert call(engine, "ping").result == {"pong": True}

    def test_query(self, engine):
        response = call(engine, "query", goal="Unemp(x)")
        assert response.ok
        assert response.result["answers"] == [["Dolors"]]

    def test_commit_then_query(self, engine):
        response = call(engine, "commit", transaction="insert Works(Maria)")
        assert response.ok and response.result["applied"]
        assert call(engine, "query", goal="Works(x)").result["answers"] == [
            ["Maria"]]

    def test_commit_rejects_violation(self, engine):
        response = call(engine, "commit",
                        transaction="delete U_benefit(Dolors)")
        assert response.ok
        assert not response.result["applied"]
        assert "Ic1" in response.result["check"]["violations"]

    def test_check(self, engine):
        response = call(engine, "check", transaction="delete U_benefit(Dolors)")
        assert response.ok and not response.result["ok"]
        assert response.result["violations"]["Ic1"] == [[]]  # 0-ary Ic1 head

    def test_upward(self, engine):
        response = call(engine, "upward", transaction="insert Works(Dolors)")
        assert response.result["deletions"]["Unemp"] == [["Dolors"]]

    def test_upward_restricted_predicates(self, engine):
        response = call(engine, "upward", transaction="insert Works(Dolors)",
                        predicates=["Unemp"])
        assert response.ok

    def test_monitor(self, engine):
        response = call(engine, "monitor", transaction="insert Works(Dolors)",
                        conditions=["Unemp"])
        assert response.result["deactivated"]["Unemp"] == [["Dolors"]]

    def test_monitor_needs_conditions(self, engine):
        response = call(engine, "monitor", transaction="insert Works(Dolors)")
        assert not response.ok
        assert response.error["type"] == "protocol"

    def test_downward(self, engine):
        response = call(engine, "downward", requests=["del Unemp(Dolors)"])
        assert response.ok and response.result["satisfiable"]
        assert len(response.result["translations"]) == 2

    def test_downward_string_form(self, engine):
        response = call(engine, "downward",
                        requests="del Unemp(Dolors); not ins Ic")
        assert response.ok and response.result["satisfiable"]

    def test_repair_on_consistent_db_maps_state_error(self, engine):
        response = call(engine, "repair")
        assert not response.ok
        assert response.error["type"] == "state"

    def test_repair_on_inconsistent_db(self, tmp_path):
        from repro.datalog import DeductiveDatabase

        broken = DeductiveDatabase.from_source("""
            La(Dolors).
            Unemp(x) <- La(x) & not Works(x).
            Ic1 <- Unemp(x) & not U_benefit(x).
        """)
        engine = DatabaseEngine.open(tmp_path / "broken", initial=broken)
        try:
            response = call(engine, "repair")
            assert response.ok and response.result["repairable"]
        finally:
            engine.close(checkpoint=False)

    def test_stats(self, engine):
        call(engine, "query", goal="Unemp(x)")
        response = call(engine, "stats")
        assert response.result["engine"]["constraints"] == 1
        assert response.result["requests"]["query"]["count"] == 1

    def test_checkpoint(self, engine):
        call(engine, "commit", transaction="insert Works(Maria)")
        response = call(engine, "checkpoint")
        assert response.ok
        assert engine.store.log_length() == 0

    def test_unknown_op(self, engine):
        response = call(engine, "frobnicate")
        assert not response.ok and response.error["type"] == "protocol"
        assert "frobnicate" in response.error["message"]

    def test_parse_error_mapped(self, engine):
        response = call(engine, "commit", transaction="insert ((")
        assert not response.ok and response.error["type"] == "parse"

    def test_transaction_error_mapped(self, engine):
        response = call(engine, "commit", transaction="insert Unemp(Zoe)")
        assert not response.ok and response.error["type"] == "transaction"

    def test_missing_param_mapped(self, engine):
        response = call(engine, "commit")
        assert not response.ok and response.error["type"] == "protocol"

    def test_bad_policy_mapped(self, engine):
        response = call(engine, "commit", transaction="insert Works(Maria)",
                        on_violation="explode")
        assert not response.ok and response.error["type"] == "protocol"

    def test_closed_engine_mapped(self, tmp_path, employment_db):
        engine = DatabaseEngine.open(tmp_path / "c", initial=employment_db)
        engine.close(checkpoint=False)
        response = call(engine, "query", goal="Unemp(x)")
        assert not response.ok and response.error["type"] == "closed"

    def test_response_is_one_json_line(self, engine):
        text = call(engine, "query", goal="Unemp(x)").to_json()
        assert "\n" not in text
        assert json.loads(text)["ok"] is True


class TestErrorMapping:
    """Every engine/evaluation exception gets a stable wire error type."""

    @pytest.mark.parametrize("error,expected", [
        (ProtocolError("x"), "protocol"),
        (errors.ParseError("x"), "parse"),
        (errors.TransactionError("x"), "transaction"),
        (StateError("x"), "state"),
        (errors.UnknownPredicateError("x"), "unknown-predicate"),
        (errors.ArityError("x"), "arity"),
        (errors.SafetyError("x"), "safety"),
        (errors.StratificationError("x"), "stratification"),
        (errors.DomainError("x"), "domain"),
        (errors.ComplexityLimitExceeded("x"), "complexity"),
        (errors.DepthLimitExceeded("x"), "depth-limit"),
        (ConflictDeferralTimeout("x"), "conflict-timeout"),
        (IdempotencyError("x"), "idempotency"),
        (EngineClosedError("x"), "closed"),
        (errors.DatalogError("x"), "datalog"),
        (WireFormatError("x"), "protocol"),
        (RuntimeError("x"), "internal"),
    ])
    def test_error_type_of(self, error, expected):
        assert protocol.error_type_of(error) == expected

    def test_safety_error_over_the_wire(self, engine, monkeypatch):
        def raise_safety(goal):
            raise errors.SafetyError("unsafe rule: unbound head variable")

        monkeypatch.setattr(engine, "query", raise_safety)
        response = call(engine, "query", goal="P(x)")
        assert not response.ok and response.error["type"] == "safety"

    def test_stratification_error_over_the_wire(self, engine, monkeypatch):
        def raise_strat(transaction, predicates=None):
            raise errors.StratificationError("negative cycle through P")

        monkeypatch.setattr(engine, "upward", raise_strat)
        response = call(engine, "upward", transaction="insert Works(Maria)")
        assert not response.ok
        assert response.error["type"] == "stratification"

    def test_conflict_timeout_over_the_wire(self, engine):
        # Deterministic: while the batch lock is held, a bounded commit's
        # wait expires with the entry still queued (exact withdrawal).
        assert engine._batch_lock.acquire(timeout=5)
        try:
            response = call(engine, "commit",
                            transaction="insert Works(Maria)", timeout=0.05)
        finally:
            engine._batch_lock.release()
        assert not response.ok
        assert response.error["type"] == "conflict-timeout"
        assert "NOT applied" in response.error["message"]
        assert engine.metrics.counter("commit.deferral_timeouts") == 1

    def test_wire_format_error_maps_to_protocol(self, engine):
        response = call(engine, "commit", transaction="insert Works(Maria)",
                        timeout="soon")
        assert not response.ok and response.error["type"] == "protocol"
