"""The 2PC crash matrix: a failpoint at every arrow of the protocol.

Each test opens a 3-shard :class:`EngineGroup`, commits an acked baseline,
then drives a cross-shard transaction into an armed crash -- at the
participant's durable vote, at the coordinator's commit point (before and
after the decision record), and inside a participant's decide.  The group
is abandoned mid-crash (no close, exactly the state a dead process leaves)
and reopened through recovery, which must resolve every in-doubt vote via
the decision log (presumed abort when no record exists).

Invariants asserted after every crash:

1. **Acked commits survive** -- the baseline transaction is still there.
2. **Cross-shard atomicity** -- the crashed transaction is wholly applied
   on every shard or wholly absent from every shard, in agreement with
   the durable decision; no shard applies a transaction another shard
   aborted.
3. **No residue** -- no in-doubt votes or locked keys remain; the group
   reports ready, fresh commits proceed, and per-shard derived state
   matches the naive oracle rebuild.
4. **Deterministic retry** -- retrying the same ``txn_id`` re-drives the
   recorded decision and cannot flip the outcome.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import UnavailableError
from repro.events.events import parse_transaction
from repro.server import engine as engine_mod
from repro.shard import EngineGroup
from repro.shard import coordinator as coordinator_mod

from tests import faultkit

#: (failpoint, skip) -> which arrow of the 2PC diagram crashes.
#: ``skip`` targets the Nth firing, i.e. the Nth participant for
#: participant-side points; coordinator points fire once per commit.
MATRIX = [
    (engine_mod.FP_PREPARE_WRITTEN, 0),   # 1st vote durable, then crash
    (engine_mod.FP_PREPARE_WRITTEN, 1),   # 2nd vote durable, then crash
    (engine_mod.FP_PREPARE_WRITTEN, 2),   # all votes durable, no decision
    (coordinator_mod.FP_PRE_DECISION, 0),   # votes counted, record missing
    (coordinator_mod.FP_DECISION_WRITTEN, 0),  # decision durable, no decide
    (engine_mod.FP_DECIDE_PRE_ACK, 0),    # 1st shard applied, then crash
    (engine_mod.FP_DECIDE_PRE_ACK, 1),    # 2nd shard applied, then crash
    (engine_mod.FP_DECIDE_PRE_ACK, 2),    # all applied, ack never returned
]

TXN_ID = "xs-crash-1"


def fresh_group(tmp_path) -> EngineGroup:
    db = DeductiveDatabase.from_source("""
        La(Dolors). U_benefit(Dolors).
        Unemp(x) <- La(x) & not Works(x).
        Ic1 <- Unemp(x) & not U_benefit(x).
    """)
    db.declare_base("Works", 1)
    return EngineGroup.open(tmp_path / "grp", db, shards=3)


def three_way_names(group: EngineGroup) -> list[str]:
    """One constant per shard, so the transaction spans all three."""
    chosen: dict[int, str] = {}
    for index in range(1000):
        name = f"Person{index}"
        chosen.setdefault(group.routing.shard_of("La", (name,)), name)
        if len(chosen) == 3:
            return [chosen[s] for s in sorted(chosen)]
    raise AssertionError("hash never covered all shards")  # pragma: no cover


def cross_transaction(names):
    return parse_transaction(", ".join(
        f"insert La({n}), insert U_benefit({n})" for n in names))


def applied_on_shard(group: EngineGroup, name: str) -> bool:
    """Is *name*'s slice present on its owning shard?"""
    la = group.query(f"La({name})") == [()]
    benefit = group.query(f"U_benefit({name})") == [()]
    assert la == benefit, (
        f"slice for {name} is itself partial: La={la}, U_benefit={benefit}")
    return la


@pytest.mark.parametrize("point,skip", MATRIX,
                         ids=[f"{p}@{s}" for p, s in MATRIX])
def test_crash_matrix(tmp_path, point, skip):
    group = fresh_group(tmp_path)
    names = three_way_names(group)
    baseline = parse_transaction("insert Works(Dolors)")
    assert group.commit(baseline).applied  # the acked baseline

    faults.arm(point, "crash", skip=skip, times=1)
    with pytest.raises(faults.SimulatedCrash):
        group.commit(cross_transaction(names), txn_id=TXN_ID)
    faults.reset()  # recovery must run clean; the group is abandoned as-is

    recovered = EngineGroup.open(tmp_path / "grp")
    try:
        # 1. Acked commits survive.
        assert recovered.query("Works(Dolors)") == [()]
        assert ("Dolors",) not in set(recovered.query("Unemp(x)"))

        # 2. Atomic across shards, in agreement with the decision log.
        decision = recovered.decisions.decision(TXN_ID)
        assert decision in ("commit", "abort"), (
            "recovery must leave a durable decision for the in-doubt txn")
        presence = {name: applied_on_shard(recovered, name)
                    for name in names}
        assert set(presence.values()) == {decision == "commit"}, (
            f"decision {decision!r} but per-shard presence {presence}")

        # 3. No residue: votes resolved, keys released, group serves.
        for engine in recovered.engines:
            assert engine.in_doubt == ()
            faultkit.check_derived_oracle(engine)
        assert recovered.health()["ready"] is True
        follow_up = parse_transaction(", ".join(
            f"insert Works({n})" for n in names))
        assert recovered.commit(follow_up).applied

        # 4. A retry of the same txn_id re-drives the recorded decision.
        retry = recovered.commit(cross_transaction(names), txn_id=TXN_ID)
        assert retry.applied == (decision == "commit")
        assert recovered.decisions.decision(TXN_ID) == decision
    finally:
        recovered.close()


def test_crash_after_decision_commits_everywhere(tmp_path):
    """The decision record is the commit point: once durable, recovery
    must finish the commit even though no shard ever heard 'commit'."""
    group = fresh_group(tmp_path)
    names = three_way_names(group)
    faults.arm(coordinator_mod.FP_DECISION_WRITTEN, "crash", times=1)
    with pytest.raises(faults.SimulatedCrash):
        group.commit(cross_transaction(names), txn_id=TXN_ID)
    faults.reset()

    recovered = EngineGroup.open(tmp_path / "grp")
    try:
        assert recovered.decisions.decision(TXN_ID) == "commit"
        assert all(applied_on_shard(recovered, n) for n in names)
    finally:
        recovered.close()


def test_crash_before_decision_aborts_everywhere(tmp_path):
    """Presumed abort: votes without a decision record roll back, and no
    shard applies a transaction another shard aborted."""
    group = fresh_group(tmp_path)
    names = three_way_names(group)
    faults.arm(coordinator_mod.FP_PRE_DECISION, "crash", times=1)
    with pytest.raises(faults.SimulatedCrash):
        group.commit(cross_transaction(names), txn_id=TXN_ID)
    faults.reset()

    recovered = EngineGroup.open(tmp_path / "grp")
    try:
        assert recovered.decisions.decision(TXN_ID) == "abort"
        assert not any(applied_on_shard(recovered, n) for n in names)
    finally:
        recovered.close()


def test_transient_prepare_failure_keeps_txn_id_usable(tmp_path):
    """A shard failing *transiently* during phase 1 must not poison the
    txn_id: the coordinator records no decision, and a retry of the same
    id runs a fresh round to success."""
    group = fresh_group(tmp_path)
    names = three_way_names(group)
    transaction = cross_transaction(names)
    faults.arm(engine_mod.FP_PREPARE_WRITTEN, "raise", skip=1, times=1,
               exception=lambda: UnavailableError("injected shard outage"))
    with pytest.raises(UnavailableError):
        group.commit(transaction, txn_id=TXN_ID)
    assert group.decisions.decision(TXN_ID) is None  # nothing durable

    faults.reset()
    retry = group.commit(transaction, txn_id=TXN_ID)
    assert retry.applied
    assert group.decisions.decision(TXN_ID) == "commit"
    assert all(applied_on_shard(group, n) for n in names)
    for engine in group.engines:
        assert engine.in_doubt == ()
    group.close()


def test_vetoed_cross_shard_txn_replays_rejection(tmp_path):
    """An integrity veto is a *durable* no: the abort decision is
    recorded and a retry replays the rejection instead of re-running."""
    group = fresh_group(tmp_path)
    names = three_way_names(group)
    bad = parse_transaction(", ".join(
        f"insert La({n})" for n in names))  # unemployed, no benefit: Ic1
    first = group.commit(bad, txn_id=TXN_ID)
    assert not first.applied
    assert group.decisions.decision(TXN_ID) == "abort"
    replay = group.commit(bad, txn_id=TXN_ID)
    assert not replay.applied
    assert group.metrics.counter("twopc.redriven") == 1
    group.close()


def test_release_failure_resolves_at_next_open(tmp_path):
    """If releasing a vote also fails, the shard reboots in doubt and the
    next group open resolves it to abort (presumed abort)."""
    group = fresh_group(tmp_path)
    names = three_way_names(group)
    # Vote on shard A succeeds; shard B's prepare crashes the process.
    faults.arm(engine_mod.FP_PREPARE_WRITTEN, "crash", skip=1, times=1)
    with pytest.raises(faults.SimulatedCrash):
        group.commit(cross_transaction(names), txn_id=TXN_ID)
    faults.reset()

    recovered = EngineGroup.open(tmp_path / "grp")
    try:
        assert recovered.metrics.counter("twopc.recovered") >= 1
        assert recovered.decisions.decision(TXN_ID) == "abort"
        for engine in recovered.engines:
            assert engine.in_doubt == ()
        assert not any(applied_on_shard(recovered, n) for n in names)
    finally:
        recovered.close()
