"""Unit tests for the top-down prover, including agreement with bottom-up."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import SafetyError
from repro.datalog.evaluation import BottomUpEvaluator
from repro.datalog.parser import parse_atom, parse_literal
from repro.datalog.topdown import TopDownProver


def prover_for(source):
    db = DeductiveDatabase.from_source(source)
    return db, TopDownProver(db, db.all_rules())


class TestGroundGoals:
    def test_fact(self):
        _, prover = prover_for("Q(A).")
        assert prover.holds(parse_literal("Q(A)"))
        assert not prover.holds(parse_literal("Q(B)"))

    def test_derived(self):
        _, prover = prover_for("Q(A). R(B). Q(B). P(x) <- Q(x) & not R(x).")
        assert prover.holds(parse_literal("P(A)"))
        assert not prover.holds(parse_literal("P(B)"))

    def test_negation_as_failure(self):
        _, prover = prover_for("Q(A). P(x) <- Q(x).")
        assert prover.holds(parse_literal("not P(B)"))

    def test_propositional(self):
        _, prover = prover_for("Q(A). P <- Q(x).")
        assert prover.holds(parse_literal("P"))


class TestAnswers:
    def test_enumeration(self):
        _, prover = prover_for("Q(A). Q(B). R(B). P(x) <- Q(x) & not R(x).")
        answers = prover.answers(parse_atom("P(x)"))
        assert len(answers) == 1

    def test_deduplication_across_rules(self):
        _, prover = prover_for("Q(A). R(A). P(x) <- Q(x). P(x) <- R(x).")
        assert len(prover.answers(parse_atom("P(x)"))) == 1


class TestRecursionAndLoops:
    ACYCLIC = """
        Edge(A,B). Edge(B,C). Edge(C,D).
        Path(x,y) <- Edge(x,y).
        Path(x,y) <- Edge(x,z) & Path(z,y).
    """

    def test_recursive_ground_goal(self):
        _, prover = prover_for(self.ACYCLIC)
        assert prover.holds(parse_literal("Path(A,D)"))
        assert not prover.holds(parse_literal("Path(D,A)"))

    def test_loop_check_terminates_on_cyclic_rules(self):
        # Left recursion would loop an unchecked SLD prover even on acyclic data.
        _, prover = prover_for("""
            Edge(A,B).
            Path(x,y) <- Path(x,z) & Edge(z,y).
            Path(x,y) <- Edge(x,y).
        """)
        assert prover.holds(parse_literal("Path(A,B)"))

    def test_agreement_with_bottom_up_on_acyclic_data(self):
        db = DeductiveDatabase.from_source(self.ACYCLIC)
        bottom_up = BottomUpEvaluator(db, db.all_rules())
        top_down = TopDownProver(db, db.all_rules())
        bu_rows = {tuple(t.value for t in row)
                   for row in bottom_up.extension("Path")}
        td_rows = set()
        for answer in top_down.answers(parse_atom("Path(x,y)")):
            ordered = sorted(answer.items(), key=lambda kv: kv[0].name)
            td_rows.add(tuple(term.value for _, term in ordered))
        assert bu_rows == td_rows


class TestSafety:
    def test_non_ground_negative_rejected(self):
        _, prover = prover_for("Q(A).")
        with pytest.raises(SafetyError):
            list(prover.prove([parse_literal("not Q(x)")]))

    def test_negative_delayed_behind_positive(self):
        _, prover = prover_for("Q(A). Q(B). R(B).")
        answers = list(prover.prove([parse_literal("not R(x)"),
                                     parse_literal("Q(x)")]))
        assert len(answers) == 1
