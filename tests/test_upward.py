"""Unit tests for the upward interpretation (both strategies)."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import TransactionError
from repro.datalog.terms import Constant
from repro.events.events import Transaction, delete, insert
from repro.events.naming import EventKind
from repro.interpretations import (
    UpwardInterpreter,
    UpwardOptions,
    naive_changes,
)

STRATEGIES = ["hybrid", "flat"]


def rows(*names):
    return frozenset(
        tuple(Constant(part) for part in (name if isinstance(name, tuple) else (name,)))
        for name in names
    )


def interpret(db, transaction, strategy="hybrid", **kwargs):
    interpreter = UpwardInterpreter(
        db, options=UpwardOptions(strategy=strategy, **kwargs))
    return interpreter.interpret(transaction)


class TestBasicInduction:
    SOURCE = "Q(A). Q(B). R(B). P(x) <- Q(x) & not R(x)."

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_insertion_via_base_insert(self, strategy):
        db = DeductiveDatabase.from_source(self.SOURCE)
        result = interpret(db, Transaction([insert("Q", "C")]), strategy)
        assert result.insertions_of("P") == rows("C")

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_deletion_via_base_delete(self, strategy):
        db = DeductiveDatabase.from_source(self.SOURCE)
        result = interpret(db, Transaction([delete("Q", "A")]), strategy)
        assert result.deletions_of("P") == rows("A")

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_deletion_via_negative_literal(self, strategy):
        db = DeductiveDatabase.from_source(self.SOURCE)
        result = interpret(db, Transaction([insert("R", "A")]), strategy)
        assert result.deletions_of("P") == rows("A")

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_no_change(self, strategy):
        db = DeductiveDatabase.from_source(self.SOURCE)
        result = interpret(db, Transaction([insert("R", "Z")]), strategy)
        assert result.is_empty()

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_compensating_events(self, strategy):
        # Deleting R(B) inserts P(B); deleting Q(B) prevents it.
        db = DeductiveDatabase.from_source(self.SOURCE)
        result = interpret(
            db, Transaction([delete("R", "B"), delete("Q", "B")]), strategy)
        assert result.insertions_of("P") == frozenset()


class TestDerivedCascades:
    SOURCE = """
        Q(A). S(A).
        P(x) <- Q(x).
        W(x) <- P(x) & S(x).
        V(x) <- S(x) & not P(x).
    """

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_two_level_insertion(self, strategy):
        db = DeductiveDatabase.from_source(self.SOURCE)
        result = interpret(db, Transaction([insert("S", "B"), insert("Q", "B")]),
                           strategy)
        assert result.insertions_of("W") == rows("B")

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_negative_cascade(self, strategy):
        db = DeductiveDatabase.from_source(self.SOURCE)
        result = interpret(db, Transaction([delete("Q", "A")]), strategy)
        assert result.deletions_of("P") == rows("A")
        assert result.deletions_of("W") == rows("A")
        assert result.insertions_of("V") == rows("A")


class TestMultiRulePredicates:
    SOURCE = """
        Q(A). R(B).
        P(x) <- Q(x).
        P(x) <- R(x).
    """

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_alternative_derivation_prevents_deletion(self, strategy):
        db = DeductiveDatabase.from_source(self.SOURCE + "R(A).")
        result = interpret(db, Transaction([delete("Q", "A")]), strategy)
        assert result.deletions_of("P") == frozenset()

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_last_support_removed(self, strategy):
        db = DeductiveDatabase.from_source(self.SOURCE)
        result = interpret(db, Transaction([delete("Q", "A")]), strategy)
        assert result.deletions_of("P") == rows("A")

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_already_derivable_insert_is_noop(self, strategy):
        db = DeductiveDatabase.from_source(self.SOURCE)
        result = interpret(db, Transaction([insert("R", "A")]), strategy)
        assert result.insertions_of("P") == frozenset()


class TestRecursionHybrid:
    SOURCE = """
        Edge(A,B). Edge(B,C).
        Path(x,y) <- Edge(x,y).
        Path(x,y) <- Edge(x,z) & Path(z,y).
    """

    def test_insert_edge_extends_paths(self):
        db = DeductiveDatabase.from_source(self.SOURCE)
        result = interpret(db, Transaction([insert("Edge", "C", "D")]))
        assert result.insertions_of("Path") == rows(
            ("C", "D"), ("B", "D"), ("A", "D"))

    def test_delete_edge_cuts_paths(self):
        db = DeductiveDatabase.from_source(self.SOURCE)
        result = interpret(db, Transaction([delete("Edge", "B", "C")]))
        assert result.deletions_of("Path") == rows(("B", "C"), ("A", "C"))

    def test_cycle_handling(self):
        db = DeductiveDatabase.from_source(self.SOURCE + "Edge(C,A).")
        result = interpret(db, Transaction([delete("Edge", "C", "A")]))
        oracle = naive_changes(db, Transaction([delete("Edge", "C", "A")]))
        assert result.insertions == oracle.insertions
        assert result.deletions == oracle.deletions

    def test_flat_strategy_rejects_recursion(self):
        from repro.datalog.errors import StratificationError

        db = DeductiveDatabase.from_source(self.SOURCE)
        interpreter = UpwardInterpreter(db, options=UpwardOptions(strategy="flat"))
        with pytest.raises(StratificationError):
            interpreter.interpret(Transaction([insert("Edge", "C", "D")]))


class TestOptionsAndApi:
    def test_derived_events_in_transaction_rejected(self, pqr_db):
        interpreter = UpwardInterpreter(pqr_db)
        with pytest.raises(TransactionError):
            interpreter.interpret(Transaction([insert("P", "Z")]))

    def test_unknown_strategy_rejected(self, pqr_db):
        interpreter = UpwardInterpreter(pqr_db,
                                        options=UpwardOptions(strategy="bogus"))
        with pytest.raises(ValueError):
            interpreter.interpret(Transaction())

    def test_noop_events_normalized_away(self, pqr_db):
        interpreter = UpwardInterpreter(pqr_db)
        result = interpreter.interpret(Transaction([insert("Q", "A")]))
        assert result.transaction == Transaction()
        assert result.is_empty()

    def test_predicates_filter(self, employment_db):
        interpreter = UpwardInterpreter(employment_db)
        result = interpreter.interpret(
            Transaction([delete("U_benefit", "Dolors")]), predicates=["Ic1"])
        assert set(result.insertions) <= {"Ic1"}
        assert result.insertions_of("Ic1")

    def test_holds_after(self, pqr_db):
        interpreter = UpwardInterpreter(pqr_db)
        assert interpreter.holds_after("P", (Constant("B"),),
                                       Transaction([delete("R", "B")]))
        assert not interpreter.holds_after("P", (Constant("A"),),
                                           Transaction([delete("Q", "A")]))

    def test_refresh_after_mutation(self, pqr_db):
        interpreter = UpwardInterpreter(pqr_db)
        interpreter.interpret(Transaction())
        pqr_db.add_fact("R", "A")
        interpreter.refresh()
        result = interpreter.interpret(Transaction([delete("R", "A")]))
        assert result.insertions_of("P") == rows("A")

    def test_result_events_and_str(self, pqr_db):
        interpreter = UpwardInterpreter(pqr_db)
        result = interpreter.interpret(Transaction([delete("R", "B")]))
        assert {str(e) for e in result.events()} == {"ιP(B)"}
        assert str(result) == "{ιP(B)}"

    def test_induced_accessor(self, pqr_db):
        interpreter = UpwardInterpreter(pqr_db)
        result = interpreter.interpret(Transaction([delete("R", "B")]))
        assert result.induced(EventKind.INSERTION, "P")
        assert not result.induced(EventKind.DELETION, "P")

    def test_old_extension(self, pqr_db):
        interpreter = UpwardInterpreter(pqr_db)
        assert interpreter.old_extension("P") == rows("A")
        assert interpreter.old_extension("Q") == rows("A", "B")


class TestSimplificationEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_simplified_matches_literal(self, employment_db, strategy):
        transaction = Transaction([delete("U_benefit", "Dolors"),
                                   insert("La", "Pere")])
        results = []
        for simplify in (True, False):
            interpreter = UpwardInterpreter(
                employment_db, simplify=simplify,
                options=UpwardOptions(strategy=strategy))
            result = interpreter.interpret(transaction)
            results.append((result.insertions, result.deletions))
        assert results[0] == results[1]
