"""Unit tests for the synthetic workload generators."""

import pytest

from repro.datalog.evaluation import BottomUpEvaluator
from repro.problems import is_consistent
from repro.workloads import (
    chain_join_views,
    constraint_network,
    employment_database,
    random_database,
    random_transaction,
    reachability_database,
    view_tower,
)


class TestEmployment:
    def test_deterministic(self):
        a = employment_database(50, seed=3)
        b = employment_database(50, seed=3)
        assert set(a.iter_facts()) == set(b.iter_facts())

    def test_consistent_by_default(self):
        assert is_consistent(employment_database(60, seed=1))

    def test_inconsistent_when_benefits_missing(self):
        db = employment_database(60, benefit_ratio=0.0, employed_ratio=0.3,
                                 seed=1)
        assert not is_consistent(db)

    def test_schema(self):
        db = employment_database(10, seed=0)
        assert db.schema.is_derived("Unemp")
        assert db.schema.is_base("Works")


class TestRandomDatabase:
    def test_sizes(self):
        db = random_database(n_facts=200, n_base=3, seed=4)
        assert db.fact_count() <= 200  # duplicates collapse
        assert db.fact_count() > 100

    def test_deterministic(self):
        assert set(random_database(seed=7).iter_facts()) == \
            set(random_database(seed=7).iter_facts())


class TestChainJoinViews:
    def test_views_built_and_derivable(self):
        db = random_database(n_facts=300, domain_size=20, seed=5)
        views = chain_join_views(db, n_views=2, negated_last=True)
        assert views == ["V1", "V2"]
        ev = BottomUpEvaluator(db, db.all_rules())
        assert len(ev.extension("V1")) > 0

    def test_requires_two_base_relations(self):
        from repro.datalog import DeductiveDatabase

        db = DeductiveDatabase()
        db.declare_base("B1", 2)
        with pytest.raises(ValueError):
            chain_join_views(db)


class TestViewTower:
    def test_height(self):
        db, views = view_tower(height=4, width=100, seed=2)
        assert views == ["T1", "T2", "T3", "T4"]
        ev = BottomUpEvaluator(db, db.all_rules())
        sizes = [len(ev.extension(v)) for v in views]
        # Each level filters the previous one.
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))


class TestConstraintNetwork:
    def test_starts_consistent(self):
        db = constraint_network(n_constraints=4, seed=6)
        assert is_consistent(db)

    def test_deleting_superset_fact_violates(self):
        from repro.events.events import Transaction, delete
        from repro.problems import check_transaction

        db = constraint_network(n_constraints=3, seed=8)
        # Find a fact in R2 that is also in R1: deleting it breaks Ic1.
        shared = sorted(db.facts_of("R1") & db.facts_of("R2"), key=str)
        if not shared:
            pytest.skip("seed produced no shared tuple")
        result = check_transaction(
            db, Transaction([delete("R2", shared[0][0])]))
        assert not result.ok


class TestReachability:
    def test_recursive_schema(self):
        db = reachability_database(seed=3)
        assert "Path" in db.stratification.recursive


class TestRandomTransaction:
    def test_effective_events_only(self):
        db = employment_database(40, seed=9)
        transaction = random_transaction(db, n_events=5, seed=10)
        assert transaction.normalized(db) == transaction

    def test_deterministic(self):
        db = employment_database(40, seed=9)
        assert random_transaction(db, seed=1) == random_transaction(db, seed=1)

    def test_respects_requested_size(self):
        db = employment_database(40, seed=9)
        assert len(random_transaction(db, n_events=3, seed=2)) == 3

    def test_empty_database_rejected(self):
        from repro.datalog import DeductiveDatabase

        with pytest.raises(ValueError):
            random_transaction(DeductiveDatabase(), seed=0)
