"""Unit tests for schema analysis and the allowedness check."""

import pytest

from repro.datalog.analysis import (
    analyse_program,
    check_allowed,
    check_arities,
    is_inconsistency_predicate,
)
from repro.datalog.errors import ArityError, SafetyError
from repro.datalog.parser import parse_program, parse_rule


class TestArities:
    def test_consistent(self):
        program = parse_program("P(x) <- Q(x, y).  Q(A, B).")
        arities = check_arities(program.all_rules())
        assert arities == {"P": 1, "Q": 2}

    def test_inconsistent_raises(self):
        program = parse_program("P(x) <- Q(x).  Q(A, B).")
        with pytest.raises(ArityError):
            check_arities(program.all_rules())

    def test_known_seed_conflict(self):
        program = parse_program("P(x) <- Q(x).")
        with pytest.raises(ArityError):
            check_arities(program.all_rules(), known={"Q": 2})


class TestAllowedness:
    def test_allowed_rule_passes(self):
        check_allowed(parse_rule("P(x) <- Q(x) & not R(x)."))

    def test_head_variable_not_bound(self):
        with pytest.raises(SafetyError):
            check_allowed(parse_rule("P(x, y) <- Q(x)."))

    def test_negative_only_variable(self):
        with pytest.raises(SafetyError):
            check_allowed(parse_rule("P(x) <- Q(x) & not R(y)."))

    def test_propositional_negation_allowed(self):
        check_allowed(parse_rule("P <- not Q."))

    def test_constants_always_fine(self):
        check_allowed(parse_rule("P(A) <- not Q(B)."))


class TestInconsistencyPredicates:
    @pytest.mark.parametrize("name,expected", [
        ("Ic", True), ("Ic1", True), ("Ic42", True),
        ("Icx", False), ("P", False), ("ic1", False),
    ])
    def test_names(self, name, expected):
        assert is_inconsistency_predicate(name) is expected


class TestAnalyseProgram:
    def test_base_derived_partition(self):
        program = parse_program("P(x) <- Q(x).  Q(A).")
        analysis = analyse_program(program.all_rules())
        assert analysis.derived == {"P"}
        assert "Q" in analysis.base

    def test_facts_do_not_make_derived(self):
        program = parse_program("Q(A). Q(B).")
        analysis = analyse_program(program.all_rules())
        assert analysis.derived == set()

    def test_declared_base_with_rule_head_rejected(self):
        program = parse_program("P(x) <- Q(x).")
        with pytest.raises(SafetyError):
            analyse_program(program.all_rules(), declared_base=["P"])

    def test_declared_base_without_occurrence(self):
        analysis = analyse_program([], declared_base=["Works"])
        assert analysis.info("Works").is_base

    def test_info_lookup(self):
        program = parse_program("P(x) <- Q(x). Q(A).")
        analysis = analyse_program(program.all_rules())
        assert analysis.info("P").is_derived
        assert analysis.info("P").arity == 1
