"""Crash-recovery matrix: every failpoint x a workload, three invariants.

Each test arms a failpoint schedule, drives a generated workload through a
real engine over a real directory (``tests/faultkit.py``), lets the
simulated crash unwind, re-opens through recovery and asserts the
invariants: acked commits survive, no partial batch is visible, derived
state equals the naive oracle rebuild.

``test_every_failpoint_is_exercised`` is the completeness backstop: the
point lists below (plus the two server-layer points exercised in
``tests/test_server.py``) must cover the whole registry, so registering a
new failpoint without a crash-recovery test fails the suite.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core import durable
from repro.events.events import Transaction, parse_transaction
from repro.server import engine as engine_mod
from repro.server import server as server_mod
from repro.server.engine import DatabaseEngine
from repro.shard import coordinator as coordinator_mod
from repro.workloads.generators import employment_database

from tests import faultkit

#: Crash points on the commit path, exercised single-commit and batched.
COMMIT_POINTS = (
    durable.FP_WAL_MID_APPEND,
    durable.FP_WAL_PRE_FSYNC,
    engine_mod.FP_PRE_BATCH_MERGE,
    engine_mod.FP_POST_CHECK_PRE_ACK,
    engine_mod.FP_MID_CACHE_ADVANCE,
    engine_mod.FP_PRE_ACK,
)
#: Crash points on the checkpoint path.
CHECKPOINT_POINTS = (
    durable.FP_CHECKPOINT_PRE_RENAME,
    durable.FP_CHECKPOINT_PRE_TRUNCATE,
)
#: Protocol-layer points; their crash/timeout tests live in test_server.py.
SERVER_POINTS = (
    server_mod.FP_PRE_DISPATCH,
    server_mod.FP_SEND_FRAME,
)
#: Two-phase-commit points; their crash matrix lives in test_shard_2pc.py.
TWOPC_POINTS = (
    engine_mod.FP_PREPARE_WRITTEN,
    engine_mod.FP_DECIDE_PRE_ACK,
    coordinator_mod.FP_PRE_DECISION,
    coordinator_mod.FP_DECISION_WRITTEN,
)
#: Change-feed points; their fault matrix lives in test_subscriptions.py
#: (they only fire while a subscription is registered, so the generic
#: subscriber-less workloads here can never reach them).
FEED_POINTS = (
    engine_mod.FP_FEED_PUBLISH,
    server_mod.FP_FEED_FRAME,
)


def fresh_engine(tmp_path, **kwargs) -> DatabaseEngine:
    directory = tmp_path / "db"
    initial = employment_database(n_people=20, seed=7)
    # Give everyone a benefit: most random events then pass the Ic1
    # check (so workloads actually commit), while deleting the benefit
    # of an unemployed person still exercises rejection now and then.
    for index in range(20):
        initial.add_fact("U_benefit", f"P{index}")
    return DatabaseEngine.open(directory, initial=initial, **kwargs)


def test_every_failpoint_is_exercised():
    """New failpoints must be added to a covered list (and get a test)."""
    covered = (set(COMMIT_POINTS) | set(CHECKPOINT_POINTS)
               | set(SERVER_POINTS) | set(TWOPC_POINTS)
               | set(FEED_POINTS))
    registered = {name for name in faults.names()
                  if not name.startswith("test.")}
    assert covered == registered, (
        "failpoint registry and crash-recovery coverage diverge; "
        f"uncovered: {sorted(registered - covered)}, "
        f"stale: {sorted(covered - registered)}")


def test_baseline_workload_without_faults(tmp_path):
    """The harness itself: no faults -> no crash, invariants hold."""
    engine = fresh_engine(tmp_path)
    report, recovered = faultkit.crash_and_recover(
        engine, tmp_path / "db", steps=10, seed=1)
    try:
        assert not report.crashed
        assert report.acked  # the workload really commits things
        assert faultkit.base_facts(recovered.db) == report.expected_facts()
    finally:
        recovered.close()


@pytest.mark.parametrize("point", COMMIT_POINTS)
@pytest.mark.parametrize("skip", [0, 2])
def test_commit_crash_single(tmp_path, point, skip):
    engine = fresh_engine(tmp_path)
    faults.arm(point, "crash", skip=skip, times=1)
    report, recovered = faultkit.crash_and_recover(
        engine, tmp_path / "db", steps=25, seed=3)
    try:
        assert report.crashed, f"{point} never fired (skip={skip})"
        assert len(report.inflight) == 1
    finally:
        recovered.close()


@pytest.mark.parametrize("point", COMMIT_POINTS)
def test_commit_crash_batched(tmp_path, point):
    """Group-commit batches: the whole chunk is in flight at the crash."""
    engine = fresh_engine(tmp_path, max_batch=8)
    faults.arm(point, "crash", skip=1, times=1)
    report, recovered = faultkit.crash_and_recover(
        engine, tmp_path / "db", steps=25, seed=5, batch=4)
    try:
        assert report.crashed, f"{point} never fired batched"
        assert len(report.inflight) >= 1
    finally:
        recovered.close()


@pytest.mark.parametrize("point", CHECKPOINT_POINTS)
def test_checkpoint_crash(tmp_path, point):
    """A crash inside checkpoint loses nothing: old-snapshot+log or
    new-snapshot+stale-log, and stale-log replay is idempotent."""
    engine = fresh_engine(tmp_path)
    faults.arm(point, "crash", times=1)
    report, recovered = faultkit.crash_and_recover(
        engine, tmp_path / "db", steps=10, seed=9, checkpoint_every=3)
    try:
        assert report.crashed, f"{point} never fired"
        assert not report.inflight  # checkpoints carry no transaction
        assert faultkit.base_facts(recovered.db) == report.expected_facts()
    finally:
        recovered.close()


@pytest.mark.parametrize("fraction", [0.0, 0.5, 0.9])
def test_torn_wal_append_is_dropped_on_recovery(tmp_path, fraction):
    """A torn final line -- any cut point -- recovers to the acked state."""
    engine = fresh_engine(tmp_path)
    faults.arm(durable.FP_WAL_MID_APPEND, "torn", param=fraction,
               skip=2, times=1)
    report, recovered = faultkit.crash_and_recover(
        engine, tmp_path / "db", steps=25, seed=11)
    try:
        assert report.crashed
        # The torn fragment must be gone entirely: recovery rewrote the
        # log to the durable prefix, so the observed state is exactly the
        # acked one and the log ends with a newline again.
        assert faultkit.base_facts(recovered.db) == report.expected_facts()
        log = (tmp_path / "db" / durable.LOG_NAME).read_text()
        assert not log or log.endswith("\n")
    finally:
        recovered.close()


def test_torn_append_then_more_commits(tmp_path):
    """Recovery after a torn write leaves a fully usable database."""
    engine = fresh_engine(tmp_path)
    faults.arm(durable.FP_WAL_MID_APPEND, "torn", skip=1, times=1)
    report, recovered = faultkit.crash_and_recover(
        engine, tmp_path / "db", steps=10, seed=13)
    try:
        assert report.crashed
        more = faultkit.run_workload(recovered, steps=5, seed=14)
        assert not more.crashed and more.acked
    finally:
        recovered.close()


def test_injected_fsync_error_fails_commit_not_engine(tmp_path):
    """A 'raise' action is an infrastructure error, not a crash: the
    waiter sees it, the engine survives, and the change is not acked."""
    engine = fresh_engine(tmp_path)
    report = faultkit.run_workload(engine, steps=3, seed=15)
    faults.arm(durable.FP_WAL_PRE_FSYNC, "raise",
               exception=lambda: OSError(5, "Input/output error"))
    # Hiring someone always passes Ic1, so this reaches the WAL fsync.
    working = {row[0].value for row in engine.db.facts_of("Works")}
    idle = sorted(p for p in (f"P{i}" for i in range(20)) if p not in working)
    transaction = Transaction(parse_transaction(
        f"insert Works({idle[0]}), insert Works({idle[1]})"))
    with pytest.raises(OSError):
        engine.commit(transaction)
    faults.reset()
    after = faultkit.run_workload(engine, steps=3, seed=16)
    assert not after.crashed and after.acked
    engine.close()
    recovered = faultkit.recover(tmp_path / "db")
    try:
        # Everything acked before and after the fault survived; the
        # faulted transaction may or may not (its fsync never returned).
        surviving = faultkit.base_facts(recovered.db)
        combined = faultkit.CrashReport(
            initial=report.initial,
            acked=report.acked + after.acked,
            inflight=[transaction])
        assert surviving in combined.allowed_facts()
        faultkit.check_invariants(combined, recovered)
    finally:
        recovered.close()


def test_crash_unwinds_commit_many_and_fails_waiters(tmp_path):
    """SimulatedCrash reaches the commit_many caller; every pending entry
    is finished with the error rather than left blocked."""
    engine = fresh_engine(tmp_path, max_batch=2)
    transactions = [
        faultkit.random_transaction(engine.db, n_events=1, seed=s)
        for s in (21, 22, 23)
    ]
    faults.arm(engine_mod.FP_PRE_BATCH_MERGE, "crash", times=1)
    with pytest.raises(faults.SimulatedCrash):
        engine.commit_many(transactions, raise_errors=True)


@pytest.mark.parametrize("cache_mode", ["invalidate", "counting"])
def test_alternate_cache_modes_recover_too(tmp_path, cache_mode):
    """The matrix holds in the non-default cache modes as well.

    Recovery re-opens in the same mode, so for ``counting`` the oracle
    check in :func:`faultkit.check_derived_oracle` also compares the
    re-bootstrapped maintained extensions against the naive rebuild.
    """
    engine = fresh_engine(tmp_path, cache_mode=cache_mode)
    faults.arm(engine_mod.FP_PRE_ACK, "crash", skip=1, times=1)
    report, recovered = faultkit.crash_and_recover(
        engine, tmp_path / "db", steps=20, seed=17,
        engine_kwargs={"cache_mode": cache_mode})
    try:
        assert report.crashed
        assert recovered.stats()["engine"]["cache_mode"] == cache_mode
    finally:
        recovered.close()


@pytest.mark.parametrize("point", COMMIT_POINTS)
def test_commit_crash_counting_mode(tmp_path, point):
    """The full commit-path crash matrix in counting mode.

    Counts live only in memory; every crash point must recover to a
    state whose re-bootstrapped counts equal the naive oracle, with the
    acked-prefix invariants intact.
    """
    engine = fresh_engine(tmp_path, cache_mode="counting")
    faults.arm(point, "crash", skip=1, times=1)
    report, recovered = faultkit.crash_and_recover(
        engine, tmp_path / "db", steps=25, seed=3,
        engine_kwargs={"cache_mode": "counting"})
    try:
        assert report.crashed, f"{point} never fired in counting mode"
        assert recovered.maintainer.active
    finally:
        recovered.close()


@pytest.mark.parametrize("point", COMMIT_POINTS)
def test_commit_crash_compiled_engine(tmp_path, point):
    """The commit-path crash matrix under the compiled evaluation engine.

    Select this slice with ``-k compiled``.  The compiled planner keeps
    in-memory join indexes over base and derived extensions; every crash
    point must recover (re-opening with ``eval_engine="compiled"``) to a
    state whose derived predicates equal the naive rebuild.
    """
    engine = fresh_engine(tmp_path, eval_engine="compiled")
    faults.arm(point, "crash", skip=1, times=1)
    report, recovered = faultkit.crash_and_recover(
        engine, tmp_path / "db", steps=25, seed=11,
        engine_kwargs={"eval_engine": "compiled"})
    try:
        assert report.crashed, f"{point} never fired with the compiled engine"
        assert recovered.stats()["engine"]["eval_engine"] == "compiled"
    finally:
        recovered.close()


@pytest.mark.parametrize("eval_engine", ["compiled", "interpreted"])
def test_eval_engine_survives_recovery(tmp_path, eval_engine):
    """Recovery re-opens with the same evaluation engine selection."""
    engine = fresh_engine(tmp_path, eval_engine=eval_engine)
    faults.arm(engine_mod.FP_PRE_ACK, "crash", skip=1, times=1)
    report, recovered = faultkit.crash_and_recover(
        engine, tmp_path / "db", steps=20, seed=23,
        engine_kwargs={"eval_engine": eval_engine})
    try:
        assert report.crashed
        assert recovered.stats()["engine"]["eval_engine"] == eval_engine
    finally:
        recovered.close()


def test_counting_mode_batched_crash(tmp_path):
    """Group-commit batches under counting maintenance survive a crash."""
    engine = fresh_engine(tmp_path, cache_mode="counting", max_batch=8)
    faults.arm(engine_mod.FP_MID_CACHE_ADVANCE, "crash", skip=1, times=1)
    report, recovered = faultkit.crash_and_recover(
        engine, tmp_path / "db", steps=25, seed=5, batch=4,
        engine_kwargs={"cache_mode": "counting"})
    try:
        assert report.crashed
    finally:
        recovered.close()
