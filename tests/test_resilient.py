"""The self-healing client, end to end against a real served engine.

The three ambiguous-failure stories of the exactly-once design, driven
over actual sockets: a dropped ack resolved by a txn-id retry, overload
shedding honoured via ``retry_after``, and deadline budgets enforced on
both sides of the wire.  Backoff schedules run on the virtual fault
clock, so nothing here waits for real time except the slot-release test.
"""

from __future__ import annotations

import random
import socket
import threading

import pytest

from repro import faults
from repro.faults.clock import VirtualClock
from repro.server import (
    ConnectionLostError,
    DatabaseClient,
    DatabaseEngine,
    ResilientClient,
    ServerError,
    ServerThread,
)
from repro.server.resilient import DeadlineExceeded, RetriesExhausted
from repro.server.server import FP_PRE_DISPATCH, FP_SEND_FRAME


@pytest.fixture
def engine(tmp_path, employment_db):
    engine = DatabaseEngine.open(tmp_path / "d", initial=employment_db)
    yield engine
    engine.close()


@pytest.fixture
def server(engine):
    thread = ServerThread(engine)
    port = thread.start()
    yield port
    thread.stop()


def free_port() -> int:
    """A port nothing is listening on (best effort, fine for tests)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


# -- the connection-lost bugfix (raw client) ------------------------------


class TestConnectionLost:
    def test_read_timeout_marks_connection_broken(self, server):
        """A timeout mid-response used to leave the connection silently
        desynchronised; now it is a typed, terminal client error."""
        faults.arm(FP_PRE_DISPATCH, "sleep", param=1.0, times=1)
        with DatabaseClient(port=server, handshake=False,
                            timeout=0.1) as client:
            with pytest.raises(ConnectionLostError):
                client.ping()
            assert client.broken is not None
            # Subsequent calls fail fast instead of reading a stale reply.
            with pytest.raises(ConnectionLostError):
                client.query("Unemp(x)")

    def test_dropped_frame_is_connection_lost(self, server):
        with DatabaseClient(port=server, handshake=False,
                            timeout=0.2) as client:
            assert client.ping()
            faults.arm(FP_SEND_FRAME, "drop", times=1)
            with pytest.raises(ConnectionLostError):
                client.ping()
            assert client.broken is not None


# -- exactly-once over the wire -------------------------------------------


class TestExactlyOnceOverTheWire:
    def test_dropped_ack_retry_returns_original_outcome(self, engine,
                                                        server):
        """The headline scenario: the commit applies, the ack is lost,
        the stamped retry dedups to the original result."""
        with ResilientClient(port=server, timeout=0.5, seed=0,
                             base_delay=0.0) as client:
            assert client.ping()  # connection + handshake established
            faults.arm(FP_SEND_FRAME, "drop", times=1)
            result = client.commit("insert Works(Maria)")
            assert result["applied"]
            assert client.counters["retry.attempts"] == 1
            assert client.counters["retry.reconnects"] == 1
            assert engine.metrics.counter("dedup.hit") == 1
            # Applied exactly once despite two wire attempts.
            assert client.query("Works(x)").count(["Maria"]) == 1
            assert engine.stats()["engine"]["log_length"] == 1

    def test_caller_supplied_txn_id_wins(self, engine, server):
        with ResilientClient(port=server, seed=0) as client:
            first = client.commit("insert Works(Zoe)", txn_id="mine")
            again = client.commit("insert Works(Zoe)", txn_id="mine")
            assert first["applied"] and again == first
            assert engine.metrics.counter("dedup.hit") == 1

    def test_unstamped_commit_is_not_retried(self, engine, server):
        """Without an idempotency key a replay could double-apply, so the
        client must surface the ambiguity instead of resolving it."""
        with ResilientClient(port=server, timeout=0.5, seed=0,
                             auto_txn_id=False) as client:
            assert client.ping()
            faults.arm(FP_SEND_FRAME, "drop", times=1)
            with pytest.raises(ConnectionLostError):
                client.commit("insert Works(Maria)")
            assert client.counters["retry.attempts"] == 0
            assert engine.stats()["engine"]["dedup_size"] == 0

    def test_auto_txn_id_stamps_every_commit(self, engine, server):
        with ResilientClient(port=server, seed=0) as client:
            client.commit("insert Works(A)")
            client.commit("insert Works(B)")
            assert engine.stats()["engine"]["dedup_size"] == 2

    def test_duplicate_key_different_body_not_retried(self, server):
        """The idempotency error is a client bug, not a transient."""
        with ResilientClient(port=server, seed=0) as client:
            client.commit("insert Works(A)", txn_id="k")
            with pytest.raises(ServerError) as excinfo:
                client.commit("insert Works(B)", txn_id="k")
            assert excinfo.value.type == "idempotency"
            assert client.counters["retry.attempts"] == 0


# -- admission control ----------------------------------------------------


class TestAdmissionControl:
    def test_overloaded_connect_retries_until_slot_frees(self, engine):
        with ServerThread(engine, max_connections=1) as port:
            holder = DatabaseClient(port=port)
            releaser = threading.Timer(0.15, holder.close)
            releaser.start()
            try:
                with ResilientClient(port=port, seed=3, base_delay=0.05,
                                     max_attempts=10) as client:
                    assert client.ping()
                    assert client.counters["retry.attempts"] >= 1
            finally:
                releaser.cancel()
                holder.close()

    def test_retry_after_hint_drives_the_backoff(self, engine):
        with faults.clock.use(VirtualClock()) as clock:
            with ServerThread(engine, max_connections=1) as port:
                holder = DatabaseClient(port=port)
                try:
                    with ResilientClient(port=port, seed=3,
                                         max_attempts=2) as client:
                        with pytest.raises(RetriesExhausted) as excinfo:
                            client.ping()
                finally:
                    holder.close()
                hint = excinfo.value.last.retry_after
                assert hint is not None and hint > 0
                assert clock.sleeps == [hint]

    def test_inflight_budget_sheds_with_retry_after(self, tmp_path,
                                                    employment_db):
        """max_inflight=1 plus a slow request: the second concurrent
        request is shed with the typed overloaded error."""
        engine = DatabaseEngine.open(tmp_path / "shed",
                                     initial=employment_db)
        faults.arm(FP_PRE_DISPATCH, "sleep", param=1.0, times=1)
        with ServerThread(engine, max_inflight=1) as port:
            slow = DatabaseClient(port=port, handshake=False, timeout=5.0)
            fast = DatabaseClient(port=port, handshake=False, timeout=5.0)

            def hold_the_slot() -> None:
                try:
                    slow.call("ping")
                except ServerError:
                    pass  # lost the race for the slot; the prober won it

            try:
                blocker = threading.Thread(target=hold_the_slot)
                blocker.start()
                try:
                    # Whichever request grabbed the slot is asleep on the
                    # dispatch failpoint; hammering the other connection
                    # must hit the in-flight budget within the window.
                    deadline = faults.clock.monotonic() + 5.0
                    while True:
                        try:
                            fast.call("ping")
                        except ServerError as error:
                            assert error.type == "overloaded"
                            assert error.retry_after is not None
                            break
                        if engine.metrics.counter("server.shed") >= 1:
                            break  # the blocker lost the race and was
                            # the one shed -- equally a pass
                        assert faults.clock.monotonic() < deadline, (
                            "no request was ever shed")
                finally:
                    blocker.join(timeout=10)
                assert engine.metrics.counter("server.shed") >= 1
            finally:
                slow.close()
                fast.close()
        engine.close()


# -- deadlines ------------------------------------------------------------


class TestDeadlines:
    def test_sub_floor_deadline_is_rejected(self, engine, server):
        with DatabaseClient(port=server, handshake=False) as client:
            with pytest.raises(ServerError) as excinfo:
                client.call("ping", deadline_ms=0.5)
            assert excinfo.value.type == "deadline"
        assert engine.metrics.counter("server.deadline_rejected") >= 1

    def test_mid_flight_deadline_beats_request_timeout(self, engine,
                                                       server):
        """deadline_ms below the server's own request timeout bounds the
        dispatch wait and is reported as 'deadline', not 'timeout'."""
        faults.arm(FP_PRE_DISPATCH, "sleep", param=1.0, times=1)
        with DatabaseClient(port=server, handshake=False,
                            timeout=5.0) as client:
            with pytest.raises(ServerError) as excinfo:
                client.call("ping", deadline_ms=100)
            assert excinfo.value.type == "deadline"
        assert engine.metrics.counter("server.deadline_rejected") >= 1

    def test_client_budget_exhaustion_raises_deadline_exceeded(self):
        port = free_port()  # nothing listening: every dial fails
        with faults.clock.use(VirtualClock()):
            with ResilientClient(port=port, seed=7, base_delay=1.0,
                                 max_delay=8.0, deadline=2.5,
                                 max_attempts=50) as client:
                with pytest.raises(DeadlineExceeded):
                    client.ping()
                assert client.counters["retry.give_up"] == 1

    def test_remaining_budget_travels_as_deadline_ms(self, server):
        seen: list[dict] = []
        original = DatabaseClient.call

        def spy(self, op, **params):
            seen.append(dict(params))
            return original(self, op, **params)

        with faults.clock.use(VirtualClock()):
            with ResilientClient(port=server, seed=0) as client:
                DatabaseClient.call = spy
                try:
                    client.call("ping", deadline=3.0)
                finally:
                    DatabaseClient.call = original
        assert seen and 0 < seen[-1]["deadline_ms"] <= 3000


# -- backoff schedule -----------------------------------------------------


class TestBackoff:
    def test_full_jitter_schedule_is_seeded_and_capped(self):
        port = free_port()
        with faults.clock.use(VirtualClock()) as clock:
            with ResilientClient(port=port, seed=42, base_delay=0.05,
                                 max_delay=0.15, max_attempts=5) as client:
                with pytest.raises(RetriesExhausted) as excinfo:
                    client.ping()
        assert isinstance(excinfo.value.last, OSError)
        expected_rng = random.Random(42)
        caps = [0.05, 0.1, 0.15, 0.15]  # doubling, clipped at max_delay
        expected = [expected_rng.uniform(0.0, cap) for cap in caps]
        assert clock.sleeps == expected
        assert all(delay <= 0.15 for delay in clock.sleeps)

    def test_give_up_counter_and_last_error(self):
        port = free_port()
        with faults.clock.use(VirtualClock()):
            with ResilientClient(port=port, seed=1,
                                 max_attempts=3) as client:
                with pytest.raises(RetriesExhausted):
                    client.ping()
                assert client.counters["retry.give_up"] == 1
                assert client.counters["retry.attempts"] == 2


# -- health ---------------------------------------------------------------


class TestHealth:
    def test_health_over_the_wire(self, engine, server):
        with ResilientClient(port=server, seed=0) as client:
            payload = client.health()
        assert payload["live"] and payload["ready"]
        assert payload["dedup"]["capacity"] > 0
        assert payload["server"]["max_inflight"] >= 1
        assert payload["server"]["active_connections"] >= 1

    def test_health_reports_not_ready_after_close(self, engine):
        engine.close()
        payload = engine.health()
        assert payload["live"] and not payload["ready"]
