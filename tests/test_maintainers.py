"""The StateMaintainer registry and the three cache-mode strategies.

Covers the API-redesign surface of the counting PR: the
:class:`CacheMode` enum (typed values, legacy string spellings), the
name-keyed registry replacing the old ``if cache_mode == ...`` branches,
protocol conformance of all three maintainers against the naive oracle,
and the serving engine's counting-mode behaviour (verdicts, ``ivm.*``
counters, resets, stats/health surfacing).
"""

from __future__ import annotations

import pytest

from repro.datalog.database import DeductiveDatabase
from repro.datalog.terms import Constant
from repro.core.processor import UpdateProcessor
from repro.events.events import Transaction, delete, insert, parse_transaction
from repro.interpretations import naive_changes
from repro.interpretations.counting import CountingUnsupportedError
from repro.interpretations.maintainers import (
    MAINTAINERS,
    AdvancingMaintainer,
    CacheMode,
    CountingMaintainer,
    InvalidatingMaintainer,
    StateMaintainer,
    create_maintainer,
)
from repro.server.engine import DatabaseEngine
from repro.workloads import employment_database, random_transaction

ALL_MODES = ("advance", "invalidate", "counting")


def small_db() -> DeductiveDatabase:
    return DeductiveDatabase.from_source("""
        Q(A). Q(B). R(B).
        P(x) <- Q(x).
        V(x) <- Q(x) & not R(x).
    """)


class TestCacheMode:
    def test_legacy_strings_accepted(self):
        assert CacheMode.of("advance") is CacheMode.ADVANCE
        assert CacheMode.of("invalidate") is CacheMode.INVALIDATE
        assert CacheMode.of("counting") is CacheMode.COUNTING

    def test_enum_values_accepted(self):
        for mode in CacheMode:
            assert CacheMode.of(mode) is mode

    def test_case_insensitive(self):
        assert CacheMode.of("ADVANCE") is CacheMode.ADVANCE

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="cache_mode"):
            CacheMode.of("bogus")
        with pytest.raises(ValueError, match="cache_mode"):
            CacheMode.of(7)

    def test_str_is_wire_spelling(self):
        assert str(CacheMode.COUNTING) == "counting"
        assert CacheMode.COUNTING.value == "counting"


class TestRegistry:
    def test_three_strategies_registered(self):
        assert set(MAINTAINERS) == set(ALL_MODES)
        assert MAINTAINERS["advance"] is AdvancingMaintainer
        assert MAINTAINERS["invalidate"] is InvalidatingMaintainer
        assert MAINTAINERS["counting"] is CountingMaintainer

    def test_create_maintainer_by_name_and_enum(self):
        processor = UpdateProcessor(small_db())
        assert isinstance(create_maintainer("counting", processor),
                          CountingMaintainer)
        assert isinstance(create_maintainer(CacheMode.ADVANCE, processor),
                          AdvancingMaintainer)

    def test_subclass_registration_hook(self):
        class Probe(InvalidatingMaintainer):
            name = "probe-test"
        try:
            assert MAINTAINERS["probe-test"] is Probe
        finally:
            del MAINTAINERS["probe-test"]


class TestProtocolConformance:
    """apply/extension/reset/bootstrap behave alike across strategies."""

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_apply_matches_oracle_and_moves_the_database(self, mode):
        db = small_db()
        maintainer = create_maintainer(mode, UpdateProcessor(db))
        transaction = Transaction([delete("Q", "A"), insert("Q", "C")])
        expected = naive_changes(db, transaction)
        result = maintainer.apply(transaction)
        assert result.insertions == expected.insertions
        assert result.deletions == expected.deletions
        assert not db.has_fact("Q", "A") and db.has_fact("Q", "C")

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_extension_reflects_applied_state(self, mode):
        db = small_db()
        maintainer = create_maintainer(mode, UpdateProcessor(db))
        maintainer.apply(Transaction([insert("R", "A")]))
        extension = {tuple(c.value for c in row)
                     for row in maintainer.extension("V")}
        assert extension == set()  # both A and B are now in R
        assert {tuple(c.value for c in row)
                for row in maintainer.extension("P")} == {("A",), ("B",)}

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_reset_then_reuse(self, mode):
        db = small_db()
        maintainer = create_maintainer(mode, UpdateProcessor(db))
        maintainer.apply(Transaction([delete("Q", "B")]))
        maintainer.reset()
        assert {tuple(c.value for c in row)
                for row in maintainer.extension("P")} == {("A",)}

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_apply_sequence_matches_oracle(self, mode):
        db = employment_database(15, seed=23)
        maintainer = create_maintainer(mode, UpdateProcessor(db))
        for seed in range(6):
            transaction = random_transaction(db, n_events=2, seed=seed)
            expected = naive_changes(db, transaction)
            result = maintainer.apply(transaction)
            assert result.insertions == expected.insertions, f"seed {seed}"
            assert result.deletions == expected.deletions, f"seed {seed}"

    def test_bootstrap_rejects_foreign_database(self):
        maintainer = create_maintainer("counting",
                                       UpdateProcessor(small_db()))
        with pytest.raises(ValueError):
            maintainer.bootstrap(small_db())

    def test_counting_bootstrap_materialises_counts(self):
        maintainer = create_maintainer("counting",
                                       UpdateProcessor(small_db()))
        assert not maintainer.active
        maintainer.bootstrap()
        assert maintainer.active
        maintainer.reset()
        assert not maintainer.active

    def test_on_event_observes_bootstrap(self):
        events = []
        maintainer = create_maintainer("counting",
                                       UpdateProcessor(small_db()))
        maintainer.on_event = events.append
        maintainer.bootstrap()
        assert events == ["bootstrap"]

    def test_base_class_is_abstract(self):
        with pytest.raises(TypeError):
            StateMaintainer(UpdateProcessor(small_db()))


def fresh_engine(tmp_path, **kwargs) -> DatabaseEngine:
    initial = employment_database(n_people=12, seed=7)
    for index in range(12):
        initial.add_fact("U_benefit", f"P{index}")
    return DatabaseEngine.open(tmp_path / "db", initial=initial, **kwargs)


class TestEngineCountingMode:
    def test_stats_and_health_surface_the_mode(self, tmp_path):
        engine = fresh_engine(tmp_path, cache_mode=CacheMode.COUNTING)
        try:
            assert engine.cache_mode is CacheMode.COUNTING
            assert engine.stats()["engine"]["cache_mode"] == "counting"
            assert engine.health()["cache"]["mode"] == "counting"
            assert isinstance(engine.maintainer, CountingMaintainer)
        finally:
            engine.close()

    def test_delta_rules_counter_set_at_bootstrap(self, tmp_path):
        engine = fresh_engine(tmp_path, cache_mode="counting")
        try:
            assert engine.metrics.counter("ivm.delta_rules") \
                == engine.maintainer.counting_engine().n_delta_rules > 0
            assert engine.metrics.counter("ivm.bootstrap") == 1
        finally:
            engine.close()

    def test_commits_maintain_without_invalidation(self, tmp_path):
        engine = fresh_engine(tmp_path, cache_mode="counting")
        try:
            working = {r[0].value for r in engine.db.facts_of("Works")}
            idle = sorted(p for p in (f"P{i}" for i in range(12))
                          if p not in working)
            for person in idle[:3]:
                outcome = engine.commit(Transaction(
                    parse_transaction(f"insert Works({person})")))
                assert outcome.applied and outcome.check.ok
            assert engine.stats()["engine"]["cache_epoch"] == 0
            assert engine.metrics.counter("cache.invalidate") == 0
            faultkit_oracle(engine)
        finally:
            engine.close()

    def test_rejection_verdict_matches_interpreter(self, tmp_path):
        engine = fresh_engine(tmp_path, cache_mode="counting")
        try:
            # Deleting the benefit of an unemployed person violates Ic1.
            working = {r[0].value for r in engine.db.facts_of("Works")}
            idle = sorted(p for p in (f"P{i}" for i in range(12))
                          if p not in working)
            bad = Transaction(
                parse_transaction(f"delete U_benefit({idle[0]})"))
            counting_verdict = engine.maintainer.check(bad)
            interpreter_verdict = engine.processor.check(bad)
            assert counting_verdict.ok == interpreter_verdict.ok is False
            assert counting_verdict.violations \
                == interpreter_verdict.violations
            outcome = engine.commit(bad)
            assert not outcome.applied
            faultkit_oracle(engine)
        finally:
            engine.close()

    def test_checkpoint_resets_then_rebootstraps(self, tmp_path):
        engine = fresh_engine(tmp_path, cache_mode="counting")
        try:
            assert engine.maintainer.active
            engine.checkpoint()
            assert not engine.maintainer.active  # conservative reset
            working = {r[0].value for r in engine.db.facts_of("Works")}
            idle = sorted(p for p in (f"P{i}" for i in range(12))
                          if p not in working)
            outcome = engine.commit(Transaction(
                parse_transaction(f"insert Works({idle[0]})")))
            assert outcome.applied
            assert engine.maintainer.active  # lazily re-bootstrapped
            assert engine.metrics.counter("ivm.bootstrap") == 2
            faultkit_oracle(engine)
        finally:
            engine.close()

    def test_slow_path_resets_counting_state(self, tmp_path):
        engine = fresh_engine(tmp_path, cache_mode="counting")
        try:
            working = {r[0].value for r in engine.db.facts_of("Works")}
            idle = sorted(p for p in (f"P{i}" for i in range(12))
                          if p not in working)
            # A maintain-policy commit takes the serial slow path.
            outcome = engine.commit(
                Transaction(parse_transaction(f"insert Works({idle[0]})")),
                on_violation="maintain")
            assert outcome.applied
            # Facts moved outside delta maintenance: counts were dropped
            # and the next commit re-bootstraps to a consistent state.
            someone_working = sorted(working)[0]
            outcome = engine.commit(Transaction(
                parse_transaction(f"delete Works({someone_working})")))
            assert outcome.applied
            faultkit_oracle(engine)
        finally:
            engine.close()

    def test_recursive_program_fails_fast_at_open(self, tmp_path):
        db = DeductiveDatabase.from_source("""
            Edge(A, B).
            Path(x, y) <- Edge(x, y).
            Path(x, y) <- Edge(x, z) & Path(z, y).
        """)
        with pytest.raises(CountingUnsupportedError):
            DatabaseEngine.open(tmp_path / "rec", initial=db,
                                cache_mode="counting")

    def test_legacy_string_still_opens_engine(self, tmp_path):
        engine = fresh_engine(tmp_path, cache_mode="advance")
        try:
            assert engine.cache_mode is CacheMode.ADVANCE
            assert engine.stats()["engine"]["cache_mode"] == "advance"
        finally:
            engine.close()

    def test_invalid_mode_still_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cache_mode"):
            fresh_engine(tmp_path, cache_mode="refcount")


def faultkit_oracle(engine: DatabaseEngine) -> None:
    """Counting extensions vs a fresh naive rebuild of the live state."""
    oracle = DeductiveDatabase.from_source(str(engine.db))
    schema = engine.db.schema
    for predicate in sorted(schema.derived):
        arity = schema.arity(predicate)
        variables = ", ".join(f"x{i}" for i in range(arity))
        goal = f"{predicate}({variables})" if arity else predicate
        answers = {tuple(row) for row in oracle.query(goal)}
        extension = {tuple(constant.value for constant in row)
                     for row in engine.maintainer.extension(predicate)}
        assert extension == answers, (
            f"maintained {predicate} diverges from the oracle")
        assert {tuple(row) for row in engine.query(goal)} == answers


class TestEngineBatchCounting:
    def test_group_commit_batches_stay_consistent(self, tmp_path):
        engine = fresh_engine(tmp_path, cache_mode="counting", max_batch=8)
        try:
            working = {r[0].value for r in engine.db.facts_of("Works")}
            idle = sorted(p for p in (f"P{i}" for i in range(12))
                          if p not in working)
            transactions = [
                Transaction(parse_transaction(f"insert Works({person})"))
                for person in idle[:4]
            ]
            results = engine.commit_many(transactions, raise_errors=True)
            assert all(outcome.applied for outcome in results)
            faultkit_oracle(engine)
        finally:
            engine.close()
