"""Unit tests for repro.datalog.rules."""

import pytest

from repro.datalog.rules import (
    Atom,
    Rule,
    atom,
    fact,
    format_program,
    neg,
    pos,
    rule,
    rules_by_predicate,
)
from repro.datalog.terms import Constant, Variable


class TestAtom:
    def test_arity(self):
        assert atom("P", "x", "A").arity == 2
        assert atom("P").arity == 0

    def test_is_ground(self):
        assert atom("P", "A", "B").is_ground()
        assert not atom("P", "x").is_ground()
        assert atom("P").is_ground()

    def test_variables_and_constants(self):
        a = atom("P", "x", "A", "x")
        assert list(a.variables()) == [Variable("x"), Variable("x")]
        assert list(a.constants()) == [Constant("A")]

    def test_str(self):
        assert str(atom("P", "x", "A")) == "P(x, A)"
        assert str(atom("P")) == "P"

    def test_coercion(self):
        assert atom("P", 3).args == (Constant(3),)

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Atom("")


class TestLiteral:
    def test_negate_is_involution(self):
        literal = pos("P", "x")
        assert literal.negate().negate() == literal

    def test_negate_flips_sign(self):
        assert not pos("P", "x").negate().positive

    def test_str(self):
        assert str(neg("R", "x")) == "not R(x)"
        assert str(pos("R", "x")) == "R(x)"

    def test_accessors(self):
        literal = pos("P", "x", "A")
        assert literal.predicate == "P"
        assert literal.args == (Variable("x"), Constant("A"))


class TestRule:
    def test_fact_detection(self):
        assert fact("P", "A").is_fact()
        assert not rule(atom("P", "x"), [pos("Q", "x")]).is_fact()

    def test_fact_requires_ground(self):
        with pytest.raises(ValueError):
            fact("P", "x")

    def test_variables(self):
        r = rule(atom("P", "x"), [pos("Q", "x", "y"), neg("R", "y")])
        assert r.variables() == {Variable("x"), Variable("y")}

    def test_constants(self):
        r = rule(atom("P", "x"), [pos("Q", "x", "A")])
        assert r.constants() == {Constant("A")}

    def test_positive_and_negative_body(self):
        r = rule(atom("P", "x"), [pos("Q", "x"), neg("R", "x")])
        assert [l.predicate for l in r.positive_body()] == ["Q"]
        assert [l.predicate for l in r.negative_body()] == ["R"]

    def test_predicates(self):
        r = rule(atom("P", "x"), [pos("Q", "x"), neg("R", "x")])
        assert r.predicates() == {"P", "Q", "R"}

    def test_str(self):
        r = rule(atom("P", "x"), [pos("Q", "x"), neg("R", "x")])
        assert str(r) == "P(x) <- Q(x) & not R(x)."
        assert str(fact("P", "A")) == "P(A)."

    def test_label_ignored_by_equality(self):
        a = Rule(atom("P", "x"), (pos("Q", "x"),), label="one")
        b = Rule(atom("P", "x"), (pos("Q", "x"),), label="two")
        assert a == b

    def test_rule_head_from_literal(self):
        assert rule(pos("P", "x"), [pos("Q", "x")]).head == atom("P", "x")
        with pytest.raises(ValueError):
            rule(neg("P", "x"), [pos("Q", "x")])


class TestGrouping:
    def test_rules_by_predicate_preserves_order(self):
        r1 = rule(atom("P", "x"), [pos("Q", "x")])
        r2 = rule(atom("P", "x"), [pos("R", "x")])
        r3 = rule(atom("S", "x"), [pos("Q", "x")])
        grouped = rules_by_predicate([r1, r3, r2])
        assert grouped["P"] == (r1, r2)
        assert grouped["S"] == (r3,)

    def test_format_program(self):
        text = format_program([fact("P", "A"), rule(atom("Q", "x"), [pos("P", "x")])])
        assert text == "P(A).\nQ(x) <- P(x)."
