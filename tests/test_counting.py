"""Tests for the counting-based change computation engine ([GMS93])."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import StratificationError
from repro.datalog.terms import Constant
from repro.events.events import Transaction, delete, insert
from repro.interpretations import naive_changes
from repro.interpretations.counting import CountingEngine
from repro.workloads import employment_database, random_transaction


def rows(*names):
    return frozenset(
        tuple(Constant(p) for p in (n if isinstance(n, tuple) else (n,)))
        for n in names
    )


class TestInitialization:
    def test_counts_match_derivations(self):
        db = DeductiveDatabase.from_source("""
            Q(A). R(A).
            P(x) <- Q(x).
            P(x) <- R(x).
        """)
        engine = CountingEngine(db)
        assert engine.count("P", (Constant("A"),)) == 2
        assert engine.extension("P") == rows("A")

    def test_join_derivations_counted_per_binding(self):
        db = DeductiveDatabase.from_source("""
            E(A, B). E(A, C).
            Reaches(x) <- E(x, y).
        """)
        engine = CountingEngine(db)
        # Two bindings of y support Reaches(A).
        assert engine.count("Reaches", (Constant("A"),)) == 2

    def test_recursion_rejected(self):
        db = DeductiveDatabase.from_source("""
            Edge(A, B).
            Path(x, y) <- Edge(x, y).
            Path(x, y) <- Edge(x, z) & Path(z, y).
        """)
        with pytest.raises(StratificationError):
            CountingEngine(db)


class TestZeroCrossings:
    def test_duplicate_support_prevents_deletion(self):
        db = DeductiveDatabase.from_source("""
            Q(A). R(A).
            P(x) <- Q(x).
            P(x) <- R(x).
        """)
        engine = CountingEngine(db)
        result = engine.apply(Transaction([delete("Q", "A")]))
        assert result.deletions == {}  # count 2 -> 1, no zero-crossing
        assert engine.count("P", (Constant("A"),)) == 1
        result = engine.apply(Transaction([delete("R", "A")]))
        assert result.deletions_of("P") == rows("A")
        assert engine.count("P", (Constant("A"),)) == 0

    def test_insertion_crossing(self):
        db = DeductiveDatabase.from_source("Q(A). P(x) <- Q(x) & S(x).")
        db.declare_base("S", 1)
        engine = CountingEngine(db)
        result = engine.apply(Transaction([insert("S", "A")]))
        assert result.insertions_of("P") == rows("A")

    def test_negative_literal_deltas(self):
        db = DeductiveDatabase.from_source("""
            Q(A). Q(B). R(B).
            P(x) <- Q(x) & not R(x).
        """)
        engine = CountingEngine(db)
        result = engine.apply(Transaction([delete("R", "B")]))
        assert result.insertions_of("P") == rows("B")
        result = engine.apply(Transaction([insert("R", "A")]))
        assert result.deletions_of("P") == rows("A")

    def test_cascading_levels(self):
        db = DeductiveDatabase.from_source("""
            Q(A). S(A).
            P(x) <- Q(x).
            W(x) <- P(x) & S(x).
        """)
        engine = CountingEngine(db)
        result = engine.apply(Transaction([delete("Q", "A")]))
        assert result.deletions_of("P") == rows("A")
        assert result.deletions_of("W") == rows("A")


class TestAgainstOracle:
    def test_transaction_sequence_agrees_with_oracle(self):
        db = employment_database(40, seed=31)
        engine = CountingEngine(db)
        for seed in range(12):
            # The oracle sees the database *before* the engine applies.
            transaction = random_transaction(db, n_events=3, seed=seed)
            expected = naive_changes(db, transaction)
            result = engine.apply(transaction)
            assert result.insertions == expected.insertions, f"seed {seed}"
            assert result.deletions == expected.deletions, f"seed {seed}"

    def test_extensions_stay_in_sync(self):
        from repro.datalog.evaluation import BottomUpEvaluator

        db = employment_database(30, seed=5)
        engine = CountingEngine(db)
        for seed in range(8):
            engine.apply(random_transaction(db, n_events=2, seed=100 + seed))
        evaluator = BottomUpEvaluator(db, db.rules_with_global_ic())
        assert engine.extension("Unemp") == evaluator.extension("Unemp")

    def test_with_builtins(self):
        db = DeductiveDatabase.from_source("""
            Q(A). Q(B).
            Pair(x, y) <- Q(x) & Q(y) & Neq(x, y).
        """)
        engine = CountingEngine(db)
        expected = naive_changes(db, Transaction([insert("Q", "C")]))
        result = engine.apply(Transaction([insert("Q", "C")]))
        assert result.insertions == expected.insertions

    def test_same_event_multiple_positions(self):
        # One event hits two positions of the same rule body: the
        # telescoping decomposition must not double-count.
        db = DeductiveDatabase.from_source("E(A, A). Self(x) <- E(x, y) & E(y, x).")
        engine = CountingEngine(db)
        expected = naive_changes(db, Transaction([insert("E", "B", "B")]))
        result = engine.apply(Transaction([insert("E", "B", "B")]))
        assert result.insertions == expected.insertions
        assert engine.count("Self", (Constant("B"),)) == 1
