"""Tests for the counting-based change computation engine ([GMS93])."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import StratificationError
from repro.datalog.terms import Constant
from repro.events.events import Transaction, delete, insert
from repro.interpretations import naive_changes
from repro.interpretations.counting import CountingEngine
from repro.workloads import employment_database, random_transaction


def rows(*names):
    return frozenset(
        tuple(Constant(p) for p in (n if isinstance(n, tuple) else (n,)))
        for n in names
    )


class TestInitialization:
    def test_counts_match_derivations(self):
        db = DeductiveDatabase.from_source("""
            Q(A). R(A).
            P(x) <- Q(x).
            P(x) <- R(x).
        """)
        engine = CountingEngine(db)
        assert engine.count("P", (Constant("A"),)) == 2
        assert engine.extension("P") == rows("A")

    def test_join_derivations_counted_per_binding(self):
        db = DeductiveDatabase.from_source("""
            E(A, B). E(A, C).
            Reaches(x) <- E(x, y).
        """)
        engine = CountingEngine(db)
        # Two bindings of y support Reaches(A).
        assert engine.count("Reaches", (Constant("A"),)) == 2

    def test_recursion_rejected(self):
        db = DeductiveDatabase.from_source("""
            Edge(A, B).
            Path(x, y) <- Edge(x, y).
            Path(x, y) <- Edge(x, z) & Path(z, y).
        """)
        with pytest.raises(StratificationError):
            CountingEngine(db)


class TestZeroCrossings:
    def test_duplicate_support_prevents_deletion(self):
        db = DeductiveDatabase.from_source("""
            Q(A). R(A).
            P(x) <- Q(x).
            P(x) <- R(x).
        """)
        engine = CountingEngine(db)
        result = engine.apply(Transaction([delete("Q", "A")]))
        assert result.deletions == {}  # count 2 -> 1, no zero-crossing
        assert engine.count("P", (Constant("A"),)) == 1
        result = engine.apply(Transaction([delete("R", "A")]))
        assert result.deletions_of("P") == rows("A")
        assert engine.count("P", (Constant("A"),)) == 0

    def test_insertion_crossing(self):
        db = DeductiveDatabase.from_source("Q(A). P(x) <- Q(x) & S(x).")
        db.declare_base("S", 1)
        engine = CountingEngine(db)
        result = engine.apply(Transaction([insert("S", "A")]))
        assert result.insertions_of("P") == rows("A")

    def test_negative_literal_deltas(self):
        db = DeductiveDatabase.from_source("""
            Q(A). Q(B). R(B).
            P(x) <- Q(x) & not R(x).
        """)
        engine = CountingEngine(db)
        result = engine.apply(Transaction([delete("R", "B")]))
        assert result.insertions_of("P") == rows("B")
        result = engine.apply(Transaction([insert("R", "A")]))
        assert result.deletions_of("P") == rows("A")

    def test_cascading_levels(self):
        db = DeductiveDatabase.from_source("""
            Q(A). S(A).
            P(x) <- Q(x).
            W(x) <- P(x) & S(x).
        """)
        engine = CountingEngine(db)
        result = engine.apply(Transaction([delete("Q", "A")]))
        assert result.deletions_of("P") == rows("A")
        assert result.deletions_of("W") == rows("A")


class TestAgainstOracle:
    def test_transaction_sequence_agrees_with_oracle(self):
        db = employment_database(40, seed=31)
        engine = CountingEngine(db)
        for seed in range(12):
            # The oracle sees the database *before* the engine applies.
            transaction = random_transaction(db, n_events=3, seed=seed)
            expected = naive_changes(db, transaction)
            result = engine.apply(transaction)
            assert result.insertions == expected.insertions, f"seed {seed}"
            assert result.deletions == expected.deletions, f"seed {seed}"

    def test_extensions_stay_in_sync(self):
        from repro.datalog.evaluation import BottomUpEvaluator

        db = employment_database(30, seed=5)
        engine = CountingEngine(db)
        for seed in range(8):
            engine.apply(random_transaction(db, n_events=2, seed=100 + seed))
        evaluator = BottomUpEvaluator(db, db.rules_with_global_ic())
        assert engine.extension("Unemp") == evaluator.extension("Unemp")

    def test_with_builtins(self):
        db = DeductiveDatabase.from_source("""
            Q(A). Q(B).
            Pair(x, y) <- Q(x) & Q(y) & Neq(x, y).
        """)
        engine = CountingEngine(db)
        expected = naive_changes(db, Transaction([insert("Q", "C")]))
        result = engine.apply(Transaction([insert("Q", "C")]))
        assert result.insertions == expected.insertions

    def test_same_event_multiple_positions(self):
        # One event hits two positions of the same rule body: the
        # telescoping decomposition must not double-count.
        db = DeductiveDatabase.from_source("E(A, A). Self(x) <- E(x, y) & E(y, x).")
        engine = CountingEngine(db)
        expected = naive_changes(db, Transaction([insert("E", "B", "B")]))
        result = engine.apply(Transaction([insert("E", "B", "B")]))
        assert result.insertions == expected.insertions
        assert engine.count("Self", (Constant("B"),)) == 1


class TestTwoPhase:
    """The staged delta()/advance() split used by the serving engine."""

    def test_delta_leaves_state_untouched(self):
        db = DeductiveDatabase.from_source("Q(A). P(x) <- Q(x).")
        engine = CountingEngine(db)
        result, staged = engine.delta(Transaction([delete("Q", "A")]))
        assert result.deletions_of("P") == rows("A")
        # Nothing moved: neither the database nor the counts.
        assert db.has_fact("Q", "A")
        assert engine.extension("P") == rows("A")
        assert engine.count("P", (Constant("A"),)) == 1

    def test_advance_after_manual_apply(self):
        db = DeductiveDatabase.from_source("Q(A). P(x) <- Q(x).")
        engine = CountingEngine(db)
        result, staged = engine.delta(Transaction([delete("Q", "A")]))
        for event in result.transaction:
            db.remove_fact(event.predicate, *event.args)
        engine.advance(staged)
        assert engine.extension("P") == frozenset()
        assert engine.count("P", (Constant("A"),)) == 0

    def test_double_advance_is_rejected(self):
        from repro.datalog.errors import SafetyError

        db = DeductiveDatabase.from_source("Q(A). P(x) <- Q(x).")
        engine = CountingEngine(db)
        result, staged = engine.delta(Transaction([delete("Q", "A")]))
        db.remove_fact("Q", "A")
        engine.advance(staged)
        with pytest.raises(SafetyError):
            engine.advance(staged)  # stale: would drive the count negative

    def test_apply_is_delta_plus_advance(self):
        db = employment_database(20, seed=11)
        twin = db.copy()
        engine = CountingEngine(db)
        twin_engine = CountingEngine(twin)
        transaction = random_transaction(db, n_events=3, seed=2)
        result, staged = engine.delta(transaction)
        applied = engine.apply(transaction)
        assert applied.insertions == result.insertions
        assert applied.deletions == result.deletions
        one_shot = twin_engine.apply(transaction)
        assert one_shot.insertions == applied.insertions
        assert one_shot.deletions == applied.deletions


class TestDeltaRules:
    def test_delta_rules_compiled_per_body_position(self):
        db = DeductiveDatabase.from_source("""
            Q(A). R(A).
            P(x) <- Q(x) & R(x).
        """)
        engine = CountingEngine(db)
        # One delta rule per non-builtin body literal.
        assert engine.n_delta_rules == 2

    def test_builtin_positions_are_rigid(self):
        db = DeductiveDatabase.from_source("""
            Q(A). Q(B).
            Pair(x, y) <- Q(x) & Q(y) & Neq(x, y).
        """)
        engine = CountingEngine(db)
        assert engine.n_delta_rules == 2  # Neq is never a delta position

    def test_delete_both_supports_in_one_transaction(self):
        # Refcount regression: the same tuple derived through two rules,
        # both supports removed by a single transaction -> exactly one
        # deletion event, count exactly zero (not negative).
        db = DeductiveDatabase.from_source("""
            Q(A). R(A).
            P(x) <- Q(x).
            P(x) <- R(x).
        """)
        engine = CountingEngine(db)
        result = engine.apply(
            Transaction([delete("Q", "A"), delete("R", "A")]))
        assert result.deletions_of("P") == rows("A")
        assert engine.count("P", (Constant("A"),)) == 0
        assert engine.extension("P") == frozenset()


class TestNegationBoundary:
    def test_boundary_is_negation_over_derived(self):
        db = DeductiveDatabase.from_source("""
            Q(A). S(A). R(A).
            V(x) <- Q(x).
            P(x) <- S(x) & not V(x).
            W(x) <- S(x) & not R(x).
        """)
        engine = CountingEngine(db)
        # P negates the derived V; W only negates the base R.
        assert engine.negation_boundary == frozenset({"P"})

    def test_rederive_heals_stale_counts_across_boundary(self):
        db = DeductiveDatabase.from_source("""
            Q(A). S(A). S(B).
            V(x) <- Q(x).
            P(x) <- S(x) & not V(x).
        """)
        healed = []
        engine = CountingEngine(db, on_rederive=healed.append)
        assert engine.extension("P") == rows("B")
        # Corrupt the counts behind the engine's back: the next decrement
        # breaches the invariant, and P (a negation boundary) must heal
        # by DRed-style rederivation instead of raising.
        engine._counts["P"].clear()
        result = engine.apply(Transaction([delete("S", "B")]))
        assert result.deletions_of("P") == rows("B")
        assert engine.extension("P") == frozenset()
        assert engine.rederive_count == 1
        assert healed == ["P"]

    def test_breach_off_boundary_raises(self):
        from repro.datalog.errors import SafetyError

        db = DeductiveDatabase.from_source("Q(A). W(x) <- Q(x).")
        engine = CountingEngine(db)
        engine._counts["W"].clear()  # corrupt: no rederive escape for W
        with pytest.raises(SafetyError):
            engine.apply(Transaction([delete("Q", "A")]))

    def test_recursion_error_is_typed(self):
        from repro.interpretations.counting import CountingUnsupportedError

        db = DeductiveDatabase.from_source("""
            Edge(A, B).
            Path(x, y) <- Edge(x, y).
            Path(x, y) <- Edge(x, z) & Path(z, y).
        """)
        assert issubclass(CountingUnsupportedError, StratificationError)
        with pytest.raises(CountingUnsupportedError):
            CountingEngine(db)

    def test_stratified_negation_sequence_agrees_with_oracle(self):
        db = DeductiveDatabase.from_source("""
            B(A). B(C). S(A). S(C). S(D).
            V(x) <- B(x).
            P(x) <- S(x) & not V(x).
            W(x) <- P(x) & S(x).
        """)
        engine = CountingEngine(db)
        steps = [
            Transaction([delete("B", "A")]),
            Transaction([insert("B", "D")]),
            Transaction([insert("S", "E"), delete("S", "C")]),
            Transaction([delete("B", "D"), insert("B", "A")]),
        ]
        for step, transaction in enumerate(steps):
            expected = naive_changes(db, transaction)
            result = engine.apply(transaction)
            assert result.insertions == expected.insertions, f"step {step}"
            assert result.deletions == expected.deletions, f"step {step}"
        assert engine.rederive_count == 0  # exact counting, no healing
