"""Standing-query subscriptions: the differential oracle and fault matrix.

The centrepiece is :class:`tests.faultkit.SubscriptionOracle`: a shadow
subscriber that applies delta frames (and re-pulls on ``resync``) and
asserts, after every commit, that the feed reconstructed exactly the
materialised state -- across all three cache modes and both evaluation
engines, over the engine API, the wire protocol and the shard group.

The fault slice covers the feed-specific failpoints: a crash between the
fsync and the publish must never produce phantom or duplicate frames, a
dropped wire frame must surface as a seq gap the resilient client resyncs
over, and a subscriber that stops reading must never delay a commit ack
(it overflows its bounded queue and is dropped with a typed close).
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import faults
from repro.events.events import Transaction, insert, parse_transaction
from repro.server import DatabaseEngine, ServerThread
from repro.server import server as server_mod
from repro.server.client import DatabaseClient, ServerError
from repro.server.engine import FP_FEED_PUBLISH
from repro.server.resilient import ResilientClient
from repro.server.server import FP_FEED_FRAME
from repro.workloads.generators import (
    employment_database,
    random_transaction,
)

from tests import faultkit

CACHE_MODES = ("advance", "invalidate", "counting")
EVAL_ENGINES = ("compiled", "interpreted")


def fresh_engine(tmp_path, **kwargs) -> DatabaseEngine:
    directory = tmp_path / "db"
    initial = employment_database(n_people=15, seed=11)
    for index in range(15):  # benefits for all: most commits apply
        initial.add_fact("U_benefit", f"P{index}")
    return DatabaseEngine.open(directory, initial=initial, **kwargs)


def grow(person: str) -> Transaction:
    """A safe insertion: makes *person* unemployed without violating Ic1."""
    return Transaction([insert("La", person), insert("U_benefit", person)])


# ---------------------------------------------------------------------------
# the differential oracle, engine level


class TestDifferentialOracle:
    @pytest.mark.parametrize("eval_engine", EVAL_ENGINES)
    @pytest.mark.parametrize("cache_mode", CACHE_MODES)
    def test_random_workload(self, tmp_path, cache_mode, eval_engine):
        """Frames == before/after diff, for every commit of a workload."""
        engine = fresh_engine(tmp_path, cache_mode=cache_mode,
                              eval_engine=eval_engine)
        try:
            oracle = faultkit.SubscriptionOracle(engine)
            applied = 0
            for step in range(25):
                txn = random_transaction(engine.db, n_events=3,
                                         seed=9000 + step)
                if engine.commit(txn).applied:
                    applied += 1
                oracle.check()  # after *every* commit, not just at the end
            assert applied >= 5, "workload never commits; oracle untested"
            assert oracle.deltas + oracle.resyncs > 0, "feed stayed silent"
            sourcing = engine.stats()["engine"]["feed_sourcing"]
            if cache_mode in ("advance", "counting"):
                assert sourcing == "delta"
                assert oracle.deltas > 0
            else:
                assert sourcing == "diff"
        finally:
            engine.close()

    @pytest.mark.parametrize("cache_mode", CACHE_MODES)
    def test_resync_paths(self, tmp_path, cache_mode):
        """Slow-path and checkpoint commits surface as typed resyncs."""
        engine = fresh_engine(tmp_path, cache_mode=cache_mode)
        try:
            oracle = faultkit.SubscriptionOracle(engine)
            # A non-reject policy always takes the slow commit path, so
            # subscribers get a resync marker, never a quietly wrong delta.
            assert engine.commit(grow("Zed"),
                                 on_violation="maintain").applied
            oracle.drain()
            assert oracle.resyncs >= 1
            oracle.check()
            engine.checkpoint()  # maintainer reset: coverage lost again
            before = oracle.resyncs
            oracle.drain()
            assert oracle.resyncs > before
            oracle.check()
        finally:
            engine.close()

    def test_bound_goal_filters(self, tmp_path):
        """A constant-bound goal only sees its own rows."""
        engine = fresh_engine(tmp_path)
        try:
            frames: list[dict] = []
            engine.feed_subscribe(["Unemp(Zed)"], frames.append)
            assert engine.commit(grow("Zed")).applied
            assert engine.commit(grow("Ann")).applied
            deltas = [f for f in frames if f["kind"] == "delta"]
            assert deltas, "bound subscription never got its row"
            seen = {tuple(row) for f in deltas
                    for row in f["inserted"].get("Unemp", ())}
            assert seen == {("Zed",)}, f"filter leaked rows: {seen}"
        finally:
            engine.close()

    def test_typed_goal_errors(self, tmp_path):
        from repro.datalog.errors import SubscriptionError

        engine = fresh_engine(tmp_path)
        try:
            for bad in ("La", "Nope", "Unemp(", "Unemp(x, y)", "", 7):
                with pytest.raises(SubscriptionError):
                    engine.feed_subscribe([bad], lambda frame: None)
            with pytest.raises(SubscriptionError):
                engine.feed_unsubscribe("sub-999")
            info = engine.feed_subscribe(["Unemp"], lambda frame: None)
            engine.feed_unsubscribe(info["subscription_id"])
            with pytest.raises(SubscriptionError):  # double unsubscribe
                engine.feed_unsubscribe(info["subscription_id"])
        finally:
            engine.close()

    def test_broken_callback_is_dropped_not_propagated(self, tmp_path):
        engine = fresh_engine(tmp_path)
        try:
            def explode(frame):
                raise RuntimeError("subscriber bug")

            engine.feed_subscribe(["Unemp"], explode)
            assert engine.commit(grow("Zed")).applied  # commit unharmed
            assert engine.feed.active == 0
            assert engine.metrics.counter("feed.callback_errors") == 1
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# feed failpoints: crash mid-publish, dropped wire frames


class TestFeedFaults:
    def test_crash_mid_publish_no_phantom_no_duplicate(self, tmp_path):
        """A crash between fsync and publish loses the frame, not the txn.

        The commit is durable (publish runs strictly after the fsync), so
        recovery must show its effects -- while the subscriber, which never
        got a frame, must see no phantom before the crash and no duplicate
        when the stamped commit is replayed (dedup hit, no re-publish).
        """
        engine = fresh_engine(tmp_path)
        oracle = faultkit.SubscriptionOracle(engine)
        txn = grow("Zed")
        faults.arm(FP_FEED_PUBLISH, "crash", times=1)
        with pytest.raises(faults.SimulatedCrash):
            engine.commit(txn, txn_id="crash-1")
        assert not oracle.frames, "phantom frame published before a crash"
        faults.reset()

        recovered = faultkit.recover(tmp_path / "db")
        try:
            assert recovered.query("Unemp(Zed)"), "durable commit lost"
            oracle2 = faultkit.SubscriptionOracle(recovered)
            replay = recovered.commit(txn, txn_id="crash-1")
            assert replay.applied  # the recorded outcome, via dedup
            oracle2.drain()
            assert oracle2.deltas == 0, "dedup replay re-published a frame"
            oracle2.check()
            faultkit.check_derived_oracle(recovered)
        finally:
            recovered.close()

    def test_dropped_frame_gap_resync(self, tmp_path):
        """FP drop loses one pushed frame; the client resyncs over the gap."""
        engine = fresh_engine(tmp_path)
        with ServerThread(engine) as port:
            received: list[dict] = []
            done = threading.Event()
            client = ResilientClient(port=port, seed=3)

            def consume():
                for frame in client.subscribe("Unemp", frame_timeout=10):
                    received.append(frame)
                    if len(received) >= 3:
                        break
                done.set()

            thread = threading.Thread(target=consume, daemon=True)
            thread.start()
            with DatabaseClient(port=port) as writer:
                deadline = time.monotonic() + 10
                while not engine.feed.active:  # wait for the subscribe
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                writer.commit("insert La(Zed), insert U_benefit(Zed)")
                while not received:  # first frame through, seq=1
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                faults.arm(FP_FEED_FRAME, "drop", times=1)
                writer.commit("insert La(Ann), insert U_benefit(Ann)")
                writer.commit("insert La(Bob), insert U_benefit(Bob)")
                assert done.wait(timeout=10), f"stream stalled: {received}"
            client.close()
            assert received[0]["kind"] == "delta"
            assert [f["kind"] for f in received[1:3]] == ["resync", "delta"]
            assert received[1]["reason"] == "gap"
            assert client.counters.get("feed.gaps") == 1

    def test_torn_frame_reconnect_resubscribe(self, tmp_path):
        """A torn frame kills the stream; the resilient client re-subscribes."""
        engine = fresh_engine(tmp_path)
        with ServerThread(engine) as port:
            received: list[dict] = []
            done = threading.Event()
            client = ResilientClient(port=port, seed=5, timeout=10.0)

            def consume():
                seen_resync = False
                for frame in client.subscribe("Unemp", frame_timeout=10):
                    received.append(frame)
                    seen_resync = seen_resync or frame["kind"] == "resync"
                    if seen_resync and frame["kind"] == "delta":
                        break
                done.set()

            thread = threading.Thread(target=consume, daemon=True)
            thread.start()
            with DatabaseClient(port=port) as writer:
                deadline = time.monotonic() + 10
                while not engine.feed.active:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                faults.arm(FP_FEED_FRAME, "torn", times=1)
                writer.commit("insert La(Ann), insert U_benefit(Ann)")
                # The subscriber's connection died mid-frame (its frame is
                # lost); it must come back on a fresh connection with a new
                # engine-side subscription before we publish again.
                while engine.metrics.counter("feed.subscribed") < 2:
                    assert time.monotonic() < deadline, "never re-subscribed"
                    time.sleep(0.02)
                writer.commit("insert La(Bob), insert U_benefit(Bob)")
                assert done.wait(timeout=15), f"stream stalled: {received}"
            client.close()
            kinds = [f["kind"] for f in received]
            assert "resync" in kinds, f"no resync after a torn frame: {kinds}"
            last = [f for f in received if f["kind"] == "delta"][-1]
            assert last["inserted"] == {"Unemp": [["Bob"]]}


# ---------------------------------------------------------------------------
# wire semantics: push, ordering, isolation, overflow


class TestWireFeed:
    def test_oracle_over_the_wire(self, tmp_path):
        """The socket stream satisfies the same differential oracle."""
        engine = fresh_engine(tmp_path)
        with ServerThread(engine) as port:
            with DatabaseClient(port=port) as sub, \
                    DatabaseClient(port=port) as writer:
                oracle = faultkit.SubscriptionOracle(
                    engine, {"Unemp": 1}, subscribe=False)
                info = sub.subscribe("Unemp")
                seqs = []
                for person in ("Ann", "Bob", "Cal"):
                    writer.commit(f"insert La({person}), "
                                  f"insert U_benefit({person})")
                    pushed = sub.next_frame(timeout=10)
                    assert pushed["feed"] == info["subscription_id"]
                    seqs.append(pushed["seq"])
                    oracle.observe(pushed["frame"])
                    oracle.check()
                assert seqs == [1, 2, 3], "per-subscription seq not monotone"

    def test_unsubscribe_stops_frames_and_session_survives(self, tmp_path):
        engine = fresh_engine(tmp_path)
        with ServerThread(engine) as port:
            with DatabaseClient(port=port) as sub, \
                    DatabaseClient(port=port) as writer:
                info = sub.subscribe("Unemp")
                writer.commit("insert La(Ann), insert U_benefit(Ann)")
                assert sub.next_frame(timeout=10)["seq"] == 1
                sub.unsubscribe(info["subscription_id"])
                writer.commit("insert La(Bob), insert U_benefit(Bob)")
                assert sub.ping()  # request path still fine, no stray push
                assert sub.pending_frames == 0
                assert engine.feed.active == 0

    def test_session_close_cleans_up_subscriptions(self, tmp_path):
        engine = fresh_engine(tmp_path)
        with ServerThread(engine) as port:
            client = DatabaseClient(port=port)
            client.subscribe("Unemp")
            assert engine.feed.active == 1
            client.close()
            deadline = time.monotonic() + 10
            while engine.feed.active and time.monotonic() < deadline:
                time.sleep(0.02)
            assert engine.feed.active == 0

    def test_stalled_subscriber_never_delays_acks(self, tmp_path):
        """Commits ack at full speed while a subscriber reads nothing."""
        engine = fresh_engine(tmp_path)
        with ServerThread(engine, max_inflight=8) as port:
            stalled = DatabaseClient(port=port)
            stalled.subscribe("Unemp")
            with DatabaseClient(port=port) as writer:
                start = time.monotonic()
                for step in range(40):  # far beyond the queue budget
                    outcome = writer.commit(
                        f"insert La(Q{step}), insert U_benefit(Q{step})")
                    assert outcome["applied"]
                elapsed = time.monotonic() - start
            # Bound generously: the point is no per-frame stall, not speed.
            assert elapsed < 20, "commits throttled by a dead subscriber"
            stalled.close()

    def test_subscribe_validates_before_streaming(self, tmp_path):
        engine = fresh_engine(tmp_path)
        with ServerThread(engine) as port:
            with DatabaseClient(port=port) as client:
                for bad in ("La", "Nope", "Unemp(x, y)"):
                    with pytest.raises(ServerError) as err:
                        client.subscribe(bad)
                    assert err.value.type == "subscription"
                with pytest.raises(ServerError) as err:
                    client.unsubscribe("sub-404")
                assert err.value.type == "subscription"
                assert client.ping()  # session survives every rejection


class TestOverflow:
    def test_overflow_drops_subscriber_with_typed_close(self, tmp_path):
        """Queue past capacity: typed close, engine-side cleanup, reusable
        channel -- and the enqueue path never blocks the committer."""
        engine = fresh_engine(tmp_path)
        server = server_mod.DatabaseServer(engine, max_inflight=3)

        class StallWriter:
            def __init__(self):
                self.lines: list[bytes] = []
                self.gate = asyncio.Event()

            def write(self, data: bytes) -> None:
                self.lines.append(data)

            async def drain(self) -> None:
                await self.gate.wait()

            def close(self) -> None:
                pass

        async def scenario():
            import json

            writer = StallWriter()
            channel = server_mod._FeedChannel(server, writer)
            channel.subscribe(["Unemp"])
            assert channel.capacity == 3
            # Frame 1 is popped by the drain task and stalls in drain();
            # frames 2..4 fill the queue; frame 5 trips the overflow.
            for step in range(5):
                await asyncio.to_thread(
                    engine.commit,
                    parse_transaction(f"insert La(O{step}), "
                                      f"insert U_benefit(O{step})"))
                await asyncio.sleep(0.05)  # let the drain task run
            assert channel.queue_depth() == 0  # cleared on overflow
            writer.gate.set()  # un-stall the socket
            deadline = time.monotonic() + 10
            while channel.subs and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            assert not channel.subs, "overflowed subscriber not dropped"
            assert engine.feed.active == 0
            final = json.loads(writer.lines[-1])
            assert final["frame"]["kind"] == "closed"
            assert final["frame"]["error_type"] == "feed_overflow"
            # The channel is reusable: the same session may re-subscribe.
            channel.subscribe(["Unemp"])
            assert engine.feed.active == 1
            channel.close()
            assert engine.feed.active == 0

        try:
            asyncio.run(scenario())
            assert engine.metrics.counter("feed.overflow") >= 1
            assert engine.metrics.counter("feed.dropped_subscribers") == 1
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# shard group: merged frames across a 2PC commit


class TestGroupFeed:
    @staticmethod
    def cross_shard_pairs(group):
        """Two fresh names per shard: ((a0, a1), (b0, b1)) by shard index."""
        routing = group._routing
        byshard: dict[int, list[str]] = {}
        for index in range(1000):
            name = f"X{index}"
            shard = routing.shard_of("La", (name,))
            byshard.setdefault(shard, []).append(name)
            if all(len(byshard.get(s, ())) >= 2
                   for s in range(routing.n_shards)):
                return tuple(byshard[s][0] for s in range(2)), \
                    tuple(byshard[s][1] for s in range(2))
        raise AssertionError("hash never covered both shards")

    def test_two_shard_commit_one_merged_frame(self, tmp_path):
        from repro.shard.group import EngineGroup

        initial = employment_database(n_people=4, seed=2)
        group = EngineGroup.open(tmp_path / "grp", initial=initial, shards=2)
        try:
            oracle = faultkit.SubscriptionOracle(group, {"Unemp": 1})
            (a, b), (c, d) = self.cross_shard_pairs(group)
            outcome = group.commit(parse_transaction(
                f"insert La({a}), insert U_benefit({a}), "
                f"insert La({b}), insert U_benefit({b})"))
            assert outcome.applied
            oracle.drain()
            assert oracle.deltas == 1, (
                "a 2PC commit must yield exactly one merged frame")
            oracle.check()
            assert {(a,), (b,)} <= oracle.shadow["Unemp"]

            # An atomically vetoed cross-shard commit yields no frame:
            # unemployment without benefit violates Ic1 on both shards.
            vetoed = group.commit(parse_transaction(
                f"insert La({c}), insert La({d})"))
            assert not vetoed.applied
            oracle.drain()
            assert oracle.deltas == 1, "an aborted 2PC commit leaked a frame"
            oracle.check()
            group.feed_unsubscribe(oracle.info["subscription_id"])
        finally:
            group.close()
