"""Unit tests for the UpdateProcessor façade."""

import pytest

from repro.datalog.errors import UnknownPredicateError
from repro.datalog.terms import Constant
from repro.events.events import Transaction, insert, parse_transaction
from repro.events.naming import EventKind
from repro.core import UpdateProcessor
from repro.interpretations import want_delete, want_insert


@pytest.fixture
def processor(employment_db):
    p = UpdateProcessor(employment_db)
    p.declare_view("Unemp")
    p.declare_condition("Unemp")  # a predicate may serve several roles
    return p


class TestDeclarations:
    def test_views_and_conditions(self, employment_db):
        p = UpdateProcessor(employment_db)
        p.declare_view("Unemp")
        assert p.views() == ("Unemp",)
        assert p.conditions() == ()

    def test_unknown_predicate_rejected(self, employment_db):
        p = UpdateProcessor(employment_db)
        with pytest.raises(UnknownPredicateError):
            p.declare_view("La")  # base, not derived


class TestRawInterpretations:
    def test_upward(self, processor):
        result = processor.upward(parse_transaction("{delete U_benefit(Dolors)}"))
        assert result.insertions_of("Ic1")

    def test_downward(self, processor):
        result = processor.downward(want_delete("Unemp", "Dolors"))
        assert len(result.translations) == 2

    def test_program_shared(self, processor):
        assert processor.program is processor.program


class TestUpwardProblems:
    def test_check(self, processor):
        assert processor.is_consistent()
        result = processor.check(parse_transaction("{delete U_benefit(Dolors)}"))
        assert not result.ok

    def test_check_restoration(self, employment_db):
        employment_db.remove_fact("U_benefit", "Dolors")
        p = UpdateProcessor(employment_db)
        result = p.check_restoration(
            Transaction([insert("U_benefit", "Dolors")]))
        assert result.ok

    def test_monitor_default_conditions(self, processor):
        changes = processor.monitor(Transaction([insert("La", "Maria")]))
        assert changes.activated["Unemp"] == {(Constant("Maria"),)}

    def test_maintenance_deltas_default_views(self, processor):
        deltas = processor.maintenance_deltas(
            Transaction([insert("La", "Maria")]))
        assert deltas.to_insert["Unemp"] == {(Constant("Maria"),)}


class TestDownwardProblems:
    def test_translate(self, processor):
        result = processor.translate(want_delete("Unemp", "Dolors"))
        assert result.is_satisfiable

    def test_translate_with_maintenance(self, processor):
        result = processor.translate(want_insert("Unemp", "Maria"),
                                     maintain_ic=True)
        # ιUnemp(Maria) requires ιLa(Maria) and, to keep Ic1 satisfied,
        # ιU_benefit(Maria).
        assert result.is_satisfiable
        for transaction in result.transactions():
            assert insert("U_benefit", "Maria") in transaction

    def test_validate_view(self, processor):
        processor.db.add_fact("Works", "Maria")
        processor.db.add_fact("La", "Maria")
        processor.refresh()
        assert processor.validate_view("Unemp").is_valid

    def test_prevent_side_effects(self, processor):
        result = processor.prevent_side_effects(
            Transaction([insert("La", "Maria")]), "Unemp")
        assert result.is_satisfiable

    def test_repair_and_satisfiability(self, employment_db):
        employment_db.remove_fact("U_benefit", "Dolors")
        p = UpdateProcessor(employment_db)
        assert p.repair().is_repairable
        assert p.constraints_satisfiable().satisfiable

    def test_can_reach_inconsistency(self, processor):
        assert processor.can_reach_inconsistency().satisfiable

    def test_maintain(self, processor):
        result = processor.maintain(
            parse_transaction("{delete U_benefit(Dolors)}"))
        assert result.is_satisfiable

    def test_enforce_and_prevent_condition(self, processor):
        enforced = processor.enforce_condition("Unemp", args=("Maria",))
        assert enforced.is_satisfiable
        prevented = processor.prevent_condition_activation(
            Transaction([insert("La", "Maria")]), "Unemp")
        assert prevented.is_satisfiable

    def test_validate_condition(self, processor):
        processor.db.add_fact("Works", "Maria")
        processor.db.add_fact("La", "Maria")
        processor.refresh()
        assert processor.validate_condition("Unemp",
                                            EventKind.INSERTION).is_valid


class TestExecute:
    def test_reject_policy(self, processor):
        result = processor.execute(
            parse_transaction("{delete U_benefit(Dolors)}"))
        assert not result.applied
        assert result.check is not None and not result.check.ok
        # database untouched
        assert processor.db.has_fact("U_benefit", "Dolors")

    def test_maintain_policy(self, processor):
        result = processor.execute(
            parse_transaction("{delete U_benefit(Dolors)}"),
            on_violation="maintain")
        assert result.applied
        assert result.repairs is not None and len(result.repairs) >= 1
        assert processor.is_consistent()
        assert not processor.db.has_fact("U_benefit", "Dolors")

    def test_ignore_policy(self, processor):
        result = processor.execute(
            parse_transaction("{delete U_benefit(Dolors)}"),
            on_violation="ignore")
        assert result.applied
        assert not processor.is_consistent()

    def test_benign_applies(self, processor):
        result = processor.execute(Transaction([insert("Works", "Maria")]))
        assert result.applied
        assert processor.db.has_fact("Works", "Maria")

    def test_unknown_policy(self, processor):
        with pytest.raises(ValueError):
            processor.execute(Transaction(), on_violation="what")

    def test_bool_protocol(self, processor):
        assert processor.execute(Transaction([insert("Works", "X")]))

    def test_interpreters_refresh_after_execute(self, processor):
        processor.execute(Transaction([insert("La", "Maria")]),
                          on_violation="ignore")
        # Maria is now unemployed in the *current* state.
        result = processor.downward(want_delete("Unemp", "Maria"))
        assert result.is_satisfiable
