"""Tests for durable storage (snapshot + event log + recovery)."""

import pytest

from repro.datalog.errors import TransactionError
from repro.events.events import Transaction, delete, insert
from repro.core.durable import DurableDatabase


@pytest.fixture
def seed_db(employment_db):
    return employment_db


class TestOpenAndRecover:
    def test_fresh_directory_snapshots_initial(self, tmp_path, seed_db):
        store = DurableDatabase.open(tmp_path / "d", initial=seed_db)
        assert store.db.has_fact("La", "Dolors")
        assert (tmp_path / "d" / "snapshot.dl").exists()

    def test_recovery_replays_log(self, tmp_path, seed_db):
        directory = tmp_path / "d"
        store = DurableDatabase.open(directory, initial=seed_db)
        store.commit(Transaction([insert("Works", "Maria"),
                                  insert("La", "Maria")]))
        store.commit(Transaction([delete("U_benefit", "Dolors"),
                                  insert("Works", "Dolors")]))
        # Simulate a crash: reopen from disk only.
        recovered = DurableDatabase.open(directory)
        assert set(recovered.db.iter_facts()) == set(store.db.iter_facts())
        assert recovered.db.query("Unemp(x)") == []

    def test_rules_survive_via_snapshot(self, tmp_path, seed_db):
        directory = tmp_path / "d"
        DurableDatabase.open(directory, initial=seed_db)
        recovered = DurableDatabase.open(directory)
        assert len(recovered.db.rules) == len(seed_db.rules)
        assert len(recovered.db.constraints) == len(seed_db.constraints)

    def test_existing_directory_rejects_initial(self, tmp_path, seed_db):
        directory = tmp_path / "d"
        DurableDatabase.open(directory, initial=seed_db)
        with pytest.raises(TransactionError):
            DurableDatabase.open(directory, initial=seed_db)

    def test_fresh_without_initial_is_empty(self, tmp_path):
        store = DurableDatabase.open(tmp_path / "d")
        assert store.db.fact_count() == 0


class TestCommitAndCheckpoint:
    def test_commit_returns_effective(self, tmp_path, seed_db):
        store = DurableDatabase.open(tmp_path / "d", initial=seed_db)
        effective = store.commit(Transaction([
            insert("La", "Dolors"),      # no-op: already present
            insert("Works", "Maria"),
        ]))
        assert effective == Transaction([insert("Works", "Maria")])
        assert store.log_length() == 1

    def test_noop_transaction_not_logged(self, tmp_path, seed_db):
        store = DurableDatabase.open(tmp_path / "d", initial=seed_db)
        store.commit(Transaction([insert("La", "Dolors")]))
        assert store.log_length() == 0

    def test_checkpoint_truncates_log(self, tmp_path, seed_db):
        directory = tmp_path / "d"
        store = DurableDatabase.open(directory, initial=seed_db)
        for index in range(5):
            store.commit(Transaction([insert("Works", f"P{index}")]))
        assert store.log_length() == 5
        store.checkpoint()
        assert store.log_length() == 0
        recovered = DurableDatabase.open(directory)
        assert set(recovered.db.iter_facts()) == set(store.db.iter_facts())

    def test_many_cycles_round_trip(self, tmp_path, seed_db):
        from repro.workloads import random_transaction

        from repro.workloads import employment_database

        directory = tmp_path / "d"
        store = DurableDatabase.open(directory,
                                     initial=employment_database(25, seed=3))
        for seed in range(12):
            store.commit(random_transaction(store.db, n_events=2, seed=seed))
            if seed % 4 == 3:
                store.checkpoint()
        recovered = DurableDatabase.open(directory)
        assert set(recovered.db.iter_facts()) == set(store.db.iter_facts())

    def test_derived_event_rejected(self, tmp_path, seed_db):
        store = DurableDatabase.open(tmp_path / "d", initial=seed_db)
        with pytest.raises(TransactionError):
            store.commit(Transaction([insert("Unemp", "Zoe")]))

    def test_unsynced_commits_plus_sync_log(self, tmp_path, seed_db):
        directory = tmp_path / "d"
        store = DurableDatabase.open(directory, initial=seed_db)
        for index in range(3):
            store.commit(Transaction([insert("Works", f"P{index}")]),
                         sync=False)
        store.sync_log()  # the group-commit pattern: one fsync per batch
        recovered = DurableDatabase.open(directory)
        assert set(recovered.db.iter_facts()) == set(store.db.iter_facts())
        assert recovered.log_length() == 3


class TestTornLogRecovery:
    """Crash-recovery of a torn/partial final WAL line."""

    def _store_with_commits(self, directory, seed_db, n=3):
        store = DurableDatabase.open(directory, initial=seed_db)
        for index in range(n):
            store.commit(Transaction([insert("Works", f"P{index}")]))
        return store

    def test_torn_unparsable_tail_is_dropped(self, tmp_path, seed_db):
        directory = tmp_path / "d"
        self._store_with_commits(directory, seed_db)
        log = directory / "events.log"
        with log.open("a") as fh:
            fh.write("insert Works(P9")  # crash mid-append: no ')'/newline
        recovered = DurableDatabase.open(directory)
        assert recovered.log_length() == 3
        assert recovered.db.has_fact("Works", "P2")
        assert not recovered.db.has_fact("Works", "P9")
        # The log was truncated to the durable prefix and stays replayable.
        again = DurableDatabase.open(directory)
        assert set(again.db.iter_facts()) == set(recovered.db.iter_facts())

    def test_missing_final_newline_drops_last_line(self, tmp_path, seed_db):
        # Appends always end with '\n'; a file that does not lost the tail
        # of its final write even if the fragment parses.
        directory = tmp_path / "d"
        self._store_with_commits(directory, seed_db)
        log = directory / "events.log"
        with log.open("a") as fh:
            fh.write("insert Works")  # parses as a 0-ary atom, but torn
        recovered = DurableDatabase.open(directory)
        assert recovered.log_length() == 3
        assert not recovered.db.has_fact("Works")

    def test_complete_garbage_tail_with_newline_dropped(self, tmp_path,
                                                        seed_db):
        directory = tmp_path / "d"
        self._store_with_commits(directory, seed_db)
        log = directory / "events.log"
        with log.open("a") as fh:
            fh.write("@@ not a transaction @@\n")
        recovered = DurableDatabase.open(directory)
        assert recovered.log_length() == 3

    def test_mid_log_corruption_still_raises(self, tmp_path, seed_db):
        from repro.datalog.errors import ParseError

        directory = tmp_path / "d"
        self._store_with_commits(directory, seed_db)
        log = directory / "events.log"
        lines = log.read_text().splitlines()
        lines[1] = "@@ corrupted @@"  # not the last line: refuse to guess
        log.write_text("\n".join(lines) + "\n")
        with pytest.raises(ParseError):
            DurableDatabase.open(directory)

    def test_torn_rewrite_is_atomic(self, tmp_path, seed_db):
        # The rewrite of the truncated log goes through a temp file +
        # atomic rename (never truncate-in-place), so a stale temp file
        # from a crash during a previous recovery is harmless and none is
        # left behind afterwards.
        directory = tmp_path / "d"
        self._store_with_commits(directory, seed_db)
        log = directory / "events.log"
        (directory / "events.tmp").write_text("insert Works(Stale)\n")
        with log.open("a") as fh:
            fh.write("insert Works(P9")  # torn tail
        recovered = DurableDatabase.open(directory)
        assert recovered.log_length() == 3
        assert not recovered.db.has_fact("Works", "Stale")
        assert not (directory / "events.tmp").exists()
        # The rewritten log is a well-formed replayable prefix.
        assert log.read_text().endswith("\n")
        again = DurableDatabase.open(directory)
        assert set(again.db.iter_facts()) == set(recovered.db.iter_facts())

    def test_torn_only_line_recovers_to_snapshot(self, tmp_path, seed_db):
        directory = tmp_path / "d"
        store = DurableDatabase.open(directory, initial=seed_db)
        log = directory / "events.log"
        with log.open("a") as fh:
            fh.write("insert Works(P0")
        recovered = DurableDatabase.open(directory)
        assert recovered.log_length() == 0
        assert set(recovered.db.iter_facts()) == set(store.db.iter_facts())
