"""Unit tests for the downward interpretation."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import (
    DepthLimitExceeded,
    TransactionError,
)
from repro.datalog.rules import Atom, Literal
from repro.datalog.terms import Constant, Variable
from repro.events.events import Transaction, delete, insert
from repro.interpretations import (
    DownwardInterpreter,
    DownwardOptions,
    forbid_delete,
    forbid_insert,
    naive_changes,
    want_delete,
    want_insert,
)


class TestBaseEventRequests:
    def test_effective_base_insert_is_itself(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(want_insert("Q", "Z"))
        assert result.transactions() == (Transaction([insert("Q", "Z")]),)

    def test_noop_base_insert_already_satisfied(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(want_insert("Q", "A"))
        assert result.dnf.is_true
        assert result.already_satisfied

    def test_base_delete(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(want_delete("R", "B"))
        assert result.transactions() == (Transaction([delete("R", "B")]),)

    def test_impossible_delete_already_satisfied(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(want_delete("R", "Z"))
        assert result.dnf.is_true

    def test_non_event_request_rejected(self, pqr_db):
        with pytest.raises(TransactionError):
            DownwardInterpreter(pqr_db).interpret(
                Literal(Atom("Q", (Constant("A"),)), True))


class TestDerivedInsertion:
    def test_multiple_alternatives(self):
        db = DeductiveDatabase.from_source("""
            Q(A).
            P(x) <- Q(x).
            P(x) <- R(x).
        """)
        db.declare_base("R", 1)
        result = DownwardInterpreter(db).interpret(want_insert("P", "B"))
        assert set(result.transactions()) == {
            Transaction([insert("Q", "B")]),
            Transaction([insert("R", "B")]),
        }

    def test_conjunction_requires_both(self):
        db = DeductiveDatabase.from_source("W(x) <- Q(x) & S(x). Q(A). S(B).")
        result = DownwardInterpreter(db).interpret(want_insert("W", "C"))
        assert set(result.transactions()) == {
            Transaction([insert("Q", "C"), insert("S", "C")]),
        }

    def test_partial_support_used(self):
        db = DeductiveDatabase.from_source("W(x) <- Q(x) & S(x). Q(A). S(B).")
        result = DownwardInterpreter(db).interpret(want_insert("W", "A"))
        # Q(A) already holds: only S(A) needs inserting.
        assert Transaction([insert("S", "A")]) in result.transactions()

    def test_two_level_descent(self):
        db = DeductiveDatabase.from_source("""
            Q(A).
            P(x) <- Q(x).
            W(x) <- P(x) & S(x).
        """)
        db.declare_base("S", 1)
        result = DownwardInterpreter(db).interpret(want_insert("W", "B"))
        assert Transaction([insert("Q", "B"), insert("S", "B")]) in \
            result.transactions()

    def test_already_satisfied_derived(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(want_insert("P", "A"))
        assert result.dnf.is_true
        assert result.already_satisfied


class TestDerivedDeletion:
    def test_deletion_choices(self, pqr_db):
        # δP(A): delete Q(A) or insert R(A).
        result = DownwardInterpreter(pqr_db).interpret(want_delete("P", "A"))
        assert set(result.transactions()) == {
            Transaction([delete("Q", "A")]),
            Transaction([insert("R", "A")]),
        }

    def test_multi_rule_deletion_needs_all_supports_cut(self):
        db = DeductiveDatabase.from_source("""
            Q(A). R(A).
            P(x) <- Q(x).
            P(x) <- R(x).
        """)
        result = DownwardInterpreter(db).interpret(want_delete("P", "A"))
        assert set(result.transactions()) == {
            Transaction([delete("Q", "A"), delete("R", "A")]),
        }


class TestNegativeRequests:
    def test_forbid_insert_vacuous_when_impossible(self, pqr_db):
        # P(A) already holds, so ιP(A) cannot occur: constraint vacuous.
        result = DownwardInterpreter(pqr_db).interpret(forbid_insert("P", "A"))
        assert result.dnf.is_true

    def test_forbid_insert_produces_requirements(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(forbid_insert("P", "B"))
        # ¬ιP(B) = ¬δR(B) (keeping R(B)) -- possibly with alternatives.
        assert result.is_satisfiable
        for translation in result.translations:
            assert delete("R", "B") in translation.constraints or \
                translation.transaction.events

    def test_forbid_delete(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(forbid_delete("P", "A"))
        assert result.is_satisfiable

    def test_universal_prevention(self, employment_db):
        x = Variable("x")
        request = Literal(Atom("ins$Unemp", (x,)), False)
        result = DownwardInterpreter(employment_db).interpret(
            [insert("La", "Maria"), request])
        assert len(result.translations) == 1
        assert insert("Works", "Maria") in result.translations[0].transaction


class TestRequestSets:
    def test_conjunction_of_requests(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(
            [want_insert("P", "B"), want_insert("Q", "Z")])
        (translation,) = result.translations
        assert translation.transaction == Transaction(
            [delete("R", "B"), insert("Q", "Z")])

    def test_unsatisfiable_conjunction(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(
            [want_insert("P", "B"), forbid_insert("P", "B")])
        assert not result.is_satisfiable

    def test_event_objects_accepted(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(delete("R", "B"))
        assert result.transactions() == (Transaction([delete("R", "B")]),)


class TestNonGroundRequests:
    def test_existential_insert(self, pqr_db):
        # ιP(x): any x with a translation; A is already satisfied... but
        # non-ground positives are existential, each witness an alternative.
        x = Variable("x")
        request = Literal(Atom("ins$P", (x,)), True)
        result = DownwardInterpreter(pqr_db).interpret(request)
        assert result.is_satisfiable
        assert Transaction([delete("R", "B")]) in result.transactions()

    def test_existential_delete_enumerates_stored_rows(self):
        db = DeductiveDatabase.from_source("Q(A). Q(B). P(x) <- Q(x).")
        x = Variable("x")
        request = Literal(Atom("del$P", (x,)), True)
        result = DownwardInterpreter(db).interpret(request)
        assert set(result.transactions()) >= {
            Transaction([delete("Q", "A")]),
            Transaction([delete("Q", "B")]),
        }


class TestSoundness:
    """Every translation, upward-interpreted, satisfies the request."""

    @pytest.mark.parametrize("view,kind,args", [
        ("Unemp", "ins", ("Maria",)),
        ("Unemp", "del", ("Dolors",)),
        ("Ic1", "ins", ()),
    ])
    def test_translations_achieve_request(self, employment_db, view, kind, args):
        request = want_insert(view, *args) if kind == "ins" \
            else want_delete(view, *args)
        result = DownwardInterpreter(employment_db).interpret(request)
        assert result.translations
        row = tuple(Constant(a) for a in args)
        for translation in result.translations:
            induced = naive_changes(employment_db, translation.transaction)
            target = induced.insertions_of(view) if kind == "ins" \
                else induced.deletions_of(view)
            assert row in target


class TestLimits:
    def test_depth_limit_raises(self):
        db = DeductiveDatabase.from_source("""
            Edge(A,B).
            Path(x,y) <- Edge(x,y).
            Path(x,y) <- Edge(x,z) & Path(z,y).
        """)
        interpreter = DownwardInterpreter(
            db, options=DownwardOptions(max_depth=3))
        with pytest.raises(DepthLimitExceeded):
            interpreter.interpret(want_insert("Path", "A", "Z"))

    def test_depth_limit_prune(self):
        db = DeductiveDatabase.from_source("""
            Edge(A,B).
            Path(x,y) <- Edge(x,y).
            Path(x,y) <- Edge(x,z) & Path(z,y).
        """)
        interpreter = DownwardInterpreter(
            db, options=DownwardOptions(max_depth=6, on_depth_limit="prune"))
        result = interpreter.interpret(want_insert("Path", "A", "Z"))
        # Direct edge insertion survives within the bound.
        assert Transaction([insert("Edge", "A", "Z")]) in result.transactions()

    def test_extra_domain(self):
        db = DeductiveDatabase()
        db.declare_base("Q", 1)
        db.add_rule_source = None
        from repro.datalog.parser import parse_rule

        db.add_rule(parse_rule("P(x) <- Q(x)."))
        interpreter = DownwardInterpreter(
            db, options=DownwardOptions(extra_domain=frozenset({Constant("Z")})))
        x = Variable("x")
        result = interpreter.interpret(Literal(Atom("ins$P", (x,)), True))
        assert Transaction([insert("Q", "Z")]) in result.transactions()

    def test_stats_populated(self, employment_db):
        interpreter = DownwardInterpreter(employment_db)
        result = interpreter.interpret(want_delete("Unemp", "Dolors"))
        assert result.stats.descents >= 1
        assert result.stats.old_queries >= 1


class TestResultApi:
    def test_str_translations(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(want_insert("P", "B"))
        assert "δR(B)" in str(result)

    def test_str_no_translation(self):
        db = DeductiveDatabase.from_source("Q(A). P(x) <- Q(x) & R(x).")
        # R is underivable and has no facts; inserting P(Z) needs both.
        db.declare_base("R", 1)
        result = DownwardInterpreter(db).interpret(
            [want_insert("P", "Z"), forbid_insert("Q", "Z")])
        assert not result.is_satisfiable
        assert str(result) == "no translation"

    def test_respects_constraints(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(want_insert("P", "B"))
        (translation,) = result.translations
        assert translation.respects_constraints(Transaction([delete("R", "B")]))
        assert not translation.respects_constraints(
            Transaction([delete("Q", "B")]))
