"""Unit tests for the DNF algebra."""

import pytest

from repro.datalog.errors import ComplexityLimitExceeded
from repro.datalog.rules import Atom, Literal
from repro.datalog.terms import Constant, Variable
from repro.events.dnf import Dnf, FALSE_DNF, TRUE_DNF


def lit(name, positive=True, *args):
    return Literal(Atom(name, tuple(Constant(a) for a in args)), positive)


IA = lit("ins$Q", True, "A")
DA = lit("del$Q", True, "A")
IB = lit("ins$Q", True, "B")
NIA = lit("ins$Q", False, "A")
DR = lit("del$R", True, "B")


class TestConstants:
    def test_true_false(self):
        assert TRUE_DNF.is_true and not TRUE_DNF.is_false
        assert FALSE_DNF.is_false and not FALSE_DNF.is_true

    def test_constructors(self):
        assert Dnf.of_literal(IA) == Dnf.of_disjuncts([[IA]])
        assert len(Dnf.of_conjunct([IA, DR])) == 1


class TestConjunction:
    def test_identity(self):
        d = Dnf.of_literal(IA)
        assert d.and_(TRUE_DNF) == d
        assert d.and_(FALSE_DNF).is_false

    def test_distribution(self):
        left = Dnf.of_disjuncts([[IA], [IB]])
        right = Dnf.of_literal(DR)
        combined = left.and_(right)
        assert len(combined) == 2
        assert frozenset({IA, DR}) in combined.disjuncts

    def test_complementary_pruned(self):
        left = Dnf.of_literal(IA)
        right = Dnf.of_literal(NIA)
        assert left.and_(right).is_false

    def test_contradictory_events_pruned(self):
        # ιQ(A) ∧ δQ(A) is unsatisfiable by definitions (1)/(2).
        assert Dnf.of_literal(IA).and_(Dnf.of_literal(DA)).is_false

    def test_different_args_not_contradictory(self):
        db_lit = lit("del$Q", True, "B")
        assert not Dnf.of_literal(IA).and_(Dnf.of_literal(db_lit)).is_false


class TestDisjunction:
    def test_union(self):
        combined = Dnf.of_literal(IA).or_(Dnf.of_literal(IB))
        assert len(combined) == 2

    def test_subsumption(self):
        small = Dnf.of_conjunct([IA])
        large = Dnf.of_conjunct([IA, DR])
        assert small.or_(large) == small

    def test_false_identity(self):
        d = Dnf.of_literal(IA)
        assert d.or_(FALSE_DNF) == d


class TestNegation:
    def test_de_morgan_single_conjunct(self):
        negated = Dnf.of_conjunct([IA, DR]).negated()
        assert len(negated) == 2
        assert frozenset({IA.negate()}) in negated.disjuncts
        assert frozenset({DR.negate()}) in negated.disjuncts

    def test_negate_disjunction(self):
        negated = Dnf.of_disjuncts([[IA], [DR]]).negated()
        # ¬(a ∨ b) = ¬a ∧ ¬b -- a single two-literal conjunct.
        assert negated == Dnf.of_conjunct([IA.negate(), DR.negate()])

    def test_constants(self):
        assert TRUE_DNF.negated().is_false
        assert FALSE_DNF.negated().is_true

    def test_double_negation_of_literal(self):
        d = Dnf.of_literal(IA)
        assert d.negated().negated() == d

    def test_size_bound(self):
        disjuncts = [[lit("ins$Q", True, f"C{i}"), lit("del$R", True, f"C{i}")]
                     for i in range(20)]
        big = Dnf.of_disjuncts(disjuncts)
        with pytest.raises(ComplexityLimitExceeded):
            big.negated(max_size=50)


class TestSimplified:
    def test_contradiction_removed(self):
        d = Dnf.of_disjuncts([[IA, NIA], [DR]])
        assert d.simplified() == Dnf.of_literal(DR)

    def test_subsumption_keeps_smaller(self):
        d = Dnf.of_disjuncts([[IA, DR], [IA]])
        assert d.simplified() == Dnf.of_literal(IA)

    def test_subsumption_skipped_above_limit(self):
        disjuncts = [[lit("ins$Q", True, f"C{i}")] for i in range(10)]
        disjuncts.append([lit("ins$Q", True, "C0"), DR])  # subsumed
        d = Dnf.of_disjuncts(disjuncts)
        assert len(d.simplified(subsume=False)) == 11
        assert len(d.simplified(subsume=True)) == 10


class TestSubstitutionAndInspection:
    def test_substitute(self):
        x = Variable("x")
        open_lit = Literal(Atom("ins$Q", (x,)), True)
        d = Dnf.of_literal(open_lit).substitute({x: Constant("A")})
        assert d == Dnf.of_literal(IA)

    def test_literals(self):
        d = Dnf.of_disjuncts([[IA], [DR]])
        assert d.literals() == {IA, DR}

    def test_is_ground(self):
        assert Dnf.of_literal(IA).is_ground()
        x = Variable("x")
        assert not Dnf.of_literal(Literal(Atom("ins$Q", (x,)), True)).is_ground()

    def test_str_rendering(self):
        assert str(TRUE_DNF) == "true"
        assert str(FALSE_DNF) == "false"
        assert "ιQ(A)" in str(Dnf.of_literal(IA))
