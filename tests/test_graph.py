"""Unit tests for the digraph toolkit."""

import pytest

from repro.datalog.graph import Digraph


def graph_of(edges, labels=None):
    g: Digraph = Digraph()
    for source, target in edges:
        g.add_edge(source, target)
    for (source, target), label in (labels or {}).items():
        g.add_edge(source, target, label)
    return g


class TestBasics:
    def test_nodes_and_edges(self):
        g = graph_of([("a", "b"), ("b", "c")])
        assert set(g.nodes()) == {"a", "b", "c"}
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_add_node_idempotent(self):
        g: Digraph = Digraph()
        g.add_node("a")
        g.add_node("a")
        assert len(g) == 1

    def test_labels_merge(self):
        g: Digraph = Digraph()
        g.add_edge("a", "b", "+")
        g.add_edge("a", "b", "-")
        assert g.labels("a", "b") == {"+", "-"}

    def test_successors(self):
        g = graph_of([("a", "b"), ("a", "c")])
        assert g.successors("a") == {"b", "c"}
        assert g.successors("missing") == frozenset()

    def test_contains(self):
        g = graph_of([("a", "b")])
        assert "a" in g and "z" not in g


class TestScc:
    def test_acyclic_gives_singletons(self):
        g = graph_of([("a", "b"), ("b", "c")])
        components = g.strongly_connected_components()
        assert sorted(map(sorted, components)) == [["a"], ["b"], ["c"]]

    def test_cycle_detected(self):
        g = graph_of([("a", "b"), ("b", "a"), ("b", "c")])
        components = g.strongly_connected_components()
        assert frozenset({"a", "b"}) in components

    def test_emission_order_dependents_first(self):
        # a -> b: the component of b must be emitted before the one of a.
        g = graph_of([("a", "b")])
        components = g.strongly_connected_components()
        assert components.index(frozenset({"b"})) < components.index(frozenset({"a"}))

    def test_self_loop_is_singleton_component(self):
        g = graph_of([("a", "a")])
        assert g.strongly_connected_components() == [frozenset({"a"})]

    def test_large_chain_no_recursion_error(self):
        edges = [(i, i + 1) for i in range(5000)]
        g = graph_of(edges)
        assert len(g.strongly_connected_components()) == 5001


class TestReachability:
    def test_reachable_from(self):
        g = graph_of([("a", "b"), ("b", "c"), ("d", "e")])
        assert g.reachable_from(["a"]) == {"a", "b", "c"}

    def test_reachable_ignores_unknown_sources(self):
        g = graph_of([("a", "b")])
        assert g.reachable_from(["zzz"]) == set()

    def test_reversed(self):
        g = graph_of([("a", "b")])
        assert g.reversed().has_edge("b", "a")
        assert not g.reversed().has_edge("a", "b")

    def test_reversed_keeps_labels(self):
        g: Digraph = Digraph()
        g.add_edge("a", "b", "-")
        assert g.reversed().labels("b", "a") == {"-"}


class TestTopologicalOrder:
    def test_respects_edges(self):
        g = graph_of([("a", "b"), ("b", "c"), ("a", "c")])
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_raises(self):
        g = graph_of([("a", "b"), ("b", "a")])
        with pytest.raises(ValueError):
            g.topological_order()
