"""Unit tests for materialized views, the repair loop and schema updates."""

import pytest

from repro.datalog.errors import UnknownPredicateError
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Constant
from repro.events.events import Transaction, insert
from repro.core import (
    MaterializedViewStore,
    apply_schema_update,
    repair_to_consistency,
)
from repro.core.repair_loop import smallest_repair
from repro.problems.base import StateError
from repro.workloads import employment_database


class TestMaterializedViewStore:
    def test_initial_materialisation(self, employment_db):
        store = MaterializedViewStore(employment_db, ["Unemp"])
        assert store.holds("Unemp", "Dolors")
        assert store.extension("Unemp") == frozenset({(Constant("Dolors"),)})

    def test_apply_maintains(self, employment_db):
        store = MaterializedViewStore(employment_db, ["Unemp"])
        changed = store.apply(Transaction([insert("La", "Maria")]))
        assert store.holds("Unemp", "Maria")
        assert "Unemp" in changed
        assert store.transactions_applied == 1

    def test_apply_writes_through_to_db(self, employment_db):
        store = MaterializedViewStore(employment_db, ["Unemp"])
        store.apply(Transaction([insert("La", "Maria")]))
        assert employment_db.has_fact("La", "Maria")

    def test_deletion_maintained(self, employment_db):
        store = MaterializedViewStore(employment_db, ["Unemp"])
        store.apply(Transaction([insert("Works", "Dolors")]))
        assert not store.holds("Unemp", "Dolors")

    def test_verify_after_many_transactions(self):
        db = employment_database(40, seed=11)
        store = MaterializedViewStore(db, ["Unemp"])
        from repro.workloads import random_transaction

        for seed in range(8):
            store.apply(random_transaction(db, n_events=3, seed=seed))
        report = store.verify()
        assert report.ok, report.mismatches

    def test_unknown_view_rejected(self, employment_db):
        with pytest.raises(UnknownPredicateError):
            MaterializedViewStore(employment_db, ["La"])

    def test_extension_of_unmaterialized_view_rejected(self, employment_db):
        store = MaterializedViewStore(employment_db, ["Unemp"])
        with pytest.raises(UnknownPredicateError):
            store.extension("Ic1")


class TestRepairLoop:
    def test_single_violation(self):
        db = employment_database(10, benefit_ratio=0.0, employed_ratio=0.99,
                                 seed=2)
        # Force exactly one violation.
        db.remove_fact("Works", sorted(db.facts_of("Works"), key=str)[0][0].value) \
            if db.facts_of("Works") else None
        if not any(True for _ in db.facts_of("Works")):
            pytest.skip("seed produced no employment")
        result = repair_to_consistency(db)
        assert result.consistent
        assert result.db is not None
        from repro.problems import is_consistent

        assert is_consistent(result.db)

    def test_many_violations_violation_granularity(self):
        db = employment_database(30, benefit_ratio=0.0, employed_ratio=0.4,
                                 seed=9)
        result = repair_to_consistency(db)
        assert result.consistent
        assert result.rounds >= 1
        assert result.total_events() == result.rounds  # one event per round

    def test_global_granularity_small_instance(self):
        db = employment_database(8, benefit_ratio=0.0, employed_ratio=0.5,
                                 seed=13)
        result = repair_to_consistency(db, granularity="global")
        assert result.consistent
        assert result.rounds == 1  # a global repair fixes everything at once

    def test_input_untouched(self):
        db = employment_database(10, benefit_ratio=0.0, employed_ratio=0.2,
                                 seed=4)
        before = db.fact_count()
        repair_to_consistency(db)
        assert db.fact_count() == before

    def test_consistent_input_rejected(self, employment_db):
        with pytest.raises(StateError):
            repair_to_consistency(employment_db)

    def test_unknown_granularity(self):
        db = employment_database(10, benefit_ratio=0.0, employed_ratio=0.2,
                                 seed=4)
        with pytest.raises(ValueError):
            repair_to_consistency(db, granularity="chaotic")

    def test_smallest_repair_strategy(self):
        from repro.interpretations.downward import Translation

        small = Translation(Transaction([insert("A", "X")]))
        large = Translation(Transaction([insert("A", "X"), insert("B", "Y")]))
        assert smallest_repair([large, small]) is small
        assert smallest_repair([]) is None


class TestSchemaUpdates:
    def test_adding_rule_induces_insertions(self, pqr_db):
        result = apply_schema_update(
            pqr_db, add_rules=[parse_rule("P(x) <- R(x).")])
        assert result.induced.insertions_of("P") == \
            frozenset({(Constant("B"),)})
        assert result.keeps_consistency

    def test_removing_rule_induces_deletions(self, pqr_db):
        (rule_,) = pqr_db.rules
        result = apply_schema_update(pqr_db, remove_rules=[rule_])
        assert result.induced.deletions_of("P") == \
            frozenset({(Constant("A"),)})

    def test_adding_constraint_reports_new_violations(self, employment_db):
        result = apply_schema_update(
            employment_db,
            add_constraints=[parse_rule("Ic2(x) <- La(x) & not Works(x).")])
        assert not result.keeps_consistency
        assert "Ic2" in result.new_violations

    def test_removing_constraint_resolves_violations(self, employment_db):
        employment_db.remove_fact("U_benefit", "Dolors")
        (constraint,) = employment_db.constraints
        result = apply_schema_update(employment_db,
                                     remove_constraints=[constraint])
        assert result.resolved_violations

    def test_original_db_untouched(self, pqr_db):
        apply_schema_update(pqr_db, add_rules=[parse_rule("P(x) <- R(x).")])
        assert len(pqr_db.rules) == 1

    def test_updated_db_usable(self, pqr_db):
        result = apply_schema_update(
            pqr_db, add_rules=[parse_rule("P(x) <- R(x).")])
        from repro.datalog.evaluation import BottomUpEvaluator

        ev = BottomUpEvaluator(result.db, result.db.all_rules())
        assert (Constant("B"),) in ev.extension("P")


class TestCountingStrategyStore:
    def test_counting_store_stays_in_sync(self):
        from repro.workloads import random_transaction

        db = employment_database(30, seed=61)
        store = MaterializedViewStore(db, ["Unemp"], strategy="counting")
        for seed in range(8):
            store.apply(random_transaction(db, n_events=2, seed=seed))
        assert store.verify().ok
        assert store.transactions_applied == 8

    def test_strategies_agree(self):
        from repro.workloads import random_transaction

        db_a = employment_database(20, seed=62)
        db_b = employment_database(20, seed=62)
        hybrid = MaterializedViewStore(db_a, ["Unemp"])
        counting = MaterializedViewStore(db_b, ["Unemp"], strategy="counting")
        for seed in range(6):
            transaction = random_transaction(db_a, n_events=2, seed=seed)
            hybrid.apply(transaction)
            counting.apply(transaction)
            assert hybrid.extension("Unemp") == counting.extension("Unemp")

    def test_unknown_strategy_rejected(self, employment_db):
        with pytest.raises(ValueError):
            MaterializedViewStore(employment_db, ["Unemp"], strategy="psychic")
