"""Tests for the active-rule layer and the transaction journal."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import TransactionError, UnknownPredicateError
from repro.events.events import Transaction, delete, insert
from repro.core.history import Journal, inverse_of
from repro.core.triggers import ActiveDatabase, TriggerLoopError


@pytest.fixture
def shop_db():
    return DeductiveDatabase.from_source("""
        Stock(Widget, 3). Threshold(Widget, 5).
        LowStock(p) <- Stock(p, n) & Threshold(p, m) & Lt(n, m).
    """)


class TestTriggers:
    def test_activation_trigger_fires(self, shop_db):
        active = ActiveDatabase(shop_db)
        active.on_activate("LowStock", name="reorder")
        trace = active.execute(Transaction([
            insert("Stock", "Gadget", 1),
            insert("Threshold", "Gadget", 10),
        ]))
        assert trace.fired("LowStock")
        assert any("Gadget" in str(f) for f in trace.firings)

    def test_deactivation_trigger(self, shop_db):
        active = ActiveDatabase(shop_db)
        active.on_deactivate("LowStock")
        trace = active.execute(Transaction([
            delete("Stock", "Widget", 3),
            insert("Stock", "Widget", 9),
        ]))
        assert trace.fired("LowStock")

    def test_action_cascade(self, shop_db):
        """A reorder action replenishes stock, deactivating the condition."""
        active = ActiveDatabase(shop_db)

        def reorder(row, _transaction):
            product = row[0].value
            return Transaction([delete("Stock", product, 1),
                                insert("Stock", product, 100)])

        active.on_activate("LowStock", action=reorder, name="auto-reorder")
        trace = active.execute(Transaction([
            insert("Stock", "Gadget", 1),
            insert("Threshold", "Gadget", 10),
        ]))
        assert trace.rounds == 2
        assert shop_db.has_fact("Stock", "Gadget", 100)
        assert shop_db.query("LowStock(Gadget)") == []

    def test_cyclic_triggers_bounded(self):
        db = DeductiveDatabase.from_source("Flag(x) <- Raw(x).")
        db.declare_base("Raw", 1)
        active = ActiveDatabase(db, max_rounds=3)
        counter = {"n": 0}

        def flip(row, _transaction):
            # Perpetually toggles the fact: an intentional cycle.
            counter["n"] += 1
            value = row[0].value
            if db.has_fact("Raw", value):
                return Transaction([delete("Raw", value)])
            return Transaction([insert("Raw", value)])

        active.on_activate("Flag", action=flip)
        active.on_deactivate("Flag", action=flip)
        with pytest.raises(TriggerLoopError):
            active.execute(Transaction([insert("Raw", "X")]))
        assert counter["n"] >= 2

    def test_no_trigger_no_cascade(self, shop_db):
        active = ActiveDatabase(shop_db)
        trace = active.execute(Transaction([insert("Stock", "Bolt", 50)]))
        assert trace.rounds == 1
        assert not trace.firings

    def test_unknown_condition_rejected(self, shop_db):
        active = ActiveDatabase(shop_db)
        with pytest.raises(UnknownPredicateError):
            active.on_activate("Stock")  # base, not derived

    def test_invalid_on_value(self):
        from repro.core.triggers import Trigger

        with pytest.raises(ValueError):
            Trigger("LowStock", on="sometimes")


class TestJournal:
    def test_commit_and_undo_round_trip(self, shop_db):
        journal = Journal(shop_db)
        before = set(shop_db.iter_facts())
        journal.commit(Transaction([insert("Stock", "Bolt", 7)]))
        journal.commit(Transaction([delete("Stock", "Widget", 3)]))
        assert len(journal) == 2
        journal.undo(2)
        assert set(shop_db.iter_facts()) == before
        assert len(journal) == 0

    def test_partial_undo(self, shop_db):
        journal = Journal(shop_db)
        journal.commit(Transaction([insert("Stock", "Bolt", 7)]))
        journal.commit(Transaction([insert("Stock", "Nut", 9)]))
        (undone,) = journal.undo()
        assert insert("Stock", "Nut", 9) in undone.transaction
        assert shop_db.has_fact("Stock", "Bolt", 7)
        assert not shop_db.has_fact("Stock", "Nut", 9)

    def test_noops_normalised_before_recording(self, shop_db):
        journal = Journal(shop_db)
        entry = journal.commit(Transaction([
            insert("Stock", "Widget", 3),   # already present: no-op
            insert("Stock", "Bolt", 7),
        ]))
        assert entry.transaction == Transaction([insert("Stock", "Bolt", 7)])

    def test_undo_too_many(self, shop_db):
        journal = Journal(shop_db)
        with pytest.raises(TransactionError):
            journal.undo()

    def test_undo_requires_positive_steps(self, shop_db):
        journal = Journal(shop_db)
        with pytest.raises(ValueError):
            journal.undo(0)

    def test_inverse_of(self):
        transaction = Transaction([insert("A", "X"), delete("B", "Y")])
        assert inverse_of(transaction) == Transaction([
            delete("A", "X"), insert("B", "Y")])

    def test_replay_onto_backup(self, shop_db):
        backup = shop_db.copy()
        journal = Journal(shop_db)
        journal.commit(Transaction([insert("Stock", "Bolt", 7)]))
        journal.commit(Transaction([delete("Stock", "Widget", 3)]))
        journal.replay_onto(backup)
        assert set(backup.iter_facts()) == set(shop_db.iter_facts())
