"""Tests for the concurrent serving engine (group commit, locking)."""

import threading

import pytest

from repro.core.durable import DurableDatabase
from repro.datalog.errors import TransactionError
from repro.events.events import Transaction, delete, insert, parse_transaction
from repro.server.engine import (
    CommitOutcome,
    DatabaseEngine,
    EngineClosedError,
    RWLock,
    checked_commit,
)
from repro.workloads import employment_database


@pytest.fixture
def engine(tmp_path, employment_db):
    engine = DatabaseEngine.open(tmp_path / "d", initial=employment_db)
    yield engine
    engine.close(checkpoint=False)


@pytest.fixture
def big_engine(tmp_path):
    engine = DatabaseEngine.open(tmp_path / "d",
                                 initial=employment_database(40, seed=7))
    yield engine
    engine.close(checkpoint=False)


class TestCheckedCommit:
    def test_applies_and_invalidates(self, employment_db):
        from repro.core import UpdateProcessor

        processor = UpdateProcessor(employment_db)
        applied = []
        outcome = checked_commit(
            processor, Transaction([insert("Works", "Maria")]), applied.append)
        assert outcome.applied
        assert applied == [Transaction([insert("Works", "Maria")])]

    def test_rejects_violation_without_applying(self, employment_db):
        from repro.core import UpdateProcessor

        processor = UpdateProcessor(employment_db)
        applied = []
        outcome = checked_commit(
            processor, Transaction([delete("U_benefit", "Dolors")]),
            applied.append)
        assert not outcome.applied
        assert outcome.check is not None and not outcome.check.ok
        assert applied == []

    def test_maintain_extends_with_repairs(self, employment_db):
        from repro.core import UpdateProcessor

        processor = UpdateProcessor(employment_db)
        applied = []
        outcome = checked_commit(
            processor, Transaction([delete("U_benefit", "Dolors")]),
            applied.append, on_violation="maintain")
        assert outcome.applied
        assert outcome.repairs is not None and outcome.repairs.events

    def test_bad_policy_rejected(self, employment_db):
        from repro.core import UpdateProcessor

        with pytest.raises(ValueError):
            checked_commit(UpdateProcessor(employment_db), Transaction(),
                           lambda t: None, on_violation="explode")


class TestEngineBasics:
    def test_commit_applies_and_persists(self, engine, tmp_path):
        outcome = engine.commit(parse_transaction("insert Works(Maria)"))
        assert outcome.applied
        assert engine.query("Works(x)") == [("Maria",)]
        recovered = DurableDatabase.open(tmp_path / "d")
        assert recovered.db.has_fact("Works", "Maria")

    def test_rejected_commit_leaves_no_wal_entry(self, engine):
        outcome = engine.commit(
            parse_transaction("delete U_benefit(Dolors)"))
        assert not outcome.applied
        assert engine.store.log_length() == 0
        assert engine.db.has_fact("U_benefit", "Dolors")

    def test_maintain_policy_through_engine(self, engine):
        outcome = engine.commit(parse_transaction("delete U_benefit(Dolors)"),
                                on_violation="maintain")
        assert outcome.applied
        assert outcome.repairs is not None

    def test_derived_event_raises(self, engine):
        with pytest.raises(TransactionError):
            engine.commit(parse_transaction("insert Unemp(Zoe)"))

    def test_check_monitor_upward_downward(self, engine):
        verdict = engine.check(parse_transaction("delete U_benefit(Dolors)"))
        assert not verdict.ok
        changes = engine.monitor(parse_transaction("insert Works(Dolors)"),
                                 ["Unemp"])
        assert not changes.is_unaffected("Unemp")
        result = engine.upward(parse_transaction("insert Works(Dolors)"))
        assert result.deletions_of("Unemp")
        from repro.events.requests import parse_request

        translations = engine.downward([parse_request("del Unemp(Dolors)")])
        assert translations.is_satisfiable

    def test_close_checkpoints_and_refuses(self, tmp_path, employment_db):
        engine = DatabaseEngine.open(tmp_path / "d", initial=employment_db)
        engine.commit(parse_transaction("insert Works(Maria)"))
        assert engine.store.log_length() == 1
        engine.close()
        assert engine.store.log_length() == 0  # checkpointed
        with pytest.raises(EngineClosedError):
            engine.query("Works(x)")
        with pytest.raises(EngineClosedError):
            engine.commit(parse_transaction("insert Works(Zoe)"))
        engine.close()  # idempotent

    def test_stats_shape(self, engine):
        engine.commit(parse_transaction("insert Works(Maria)"))
        engine.query("Works(x)")
        stats = engine.stats()
        assert stats["engine"]["log_length"] == 1
        assert stats["requests"]["commit"]["count"] == 1
        assert stats["requests"]["query"]["count"] == 1
        assert stats["counters"]["commit.batches"] == 1


class TestGroupCommit:
    def test_batchable_commits_share_one_batch(self, big_engine):
        transactions = [parse_transaction(f"insert Works(N{i})")
                        for i in range(10)]
        outcomes = big_engine.commit_many(transactions)
        assert all(o.applied for o in outcomes)
        assert big_engine.metrics.counter("commit.batches") == 1
        assert big_engine.metrics.counter("commit.wal_syncs") == 1
        assert big_engine.store.log_length() == 10

    def test_max_batch_splits(self, tmp_path):
        engine = DatabaseEngine.open(
            tmp_path / "d", initial=employment_database(10, seed=1),
            max_batch=4)
        try:
            engine.commit_many([parse_transaction(f"insert Works(N{i})")
                                for i in range(10)])
            assert engine.metrics.counter("commit.batches") == 3  # 4+4+2
        finally:
            engine.close(checkpoint=False)

    def test_conflicting_commits_defer_and_serialize(self, big_engine):
        # Same fact in both transactions: they must not share a batch, and
        # the result must equal the serial order insert-then-delete.
        outcomes = big_engine.commit_many([
            parse_transaction("insert Works(Zed)"),
            parse_transaction("delete Works(Zed)"),
        ])
        assert all(o.applied for o in outcomes)
        assert big_engine.metrics.counter("commit.batches") == 2
        assert big_engine.metrics.counter("commit.conflicts_deferred") == 1
        assert not big_engine.db.has_fact("Works", "Zed")
        assert big_engine.store.log_length() == 2

    def test_duplicate_insert_becomes_noop(self, big_engine):
        outcomes = big_engine.commit_many([
            parse_transaction("insert Works(Zed)"),
            parse_transaction("insert Works(Zed)"),
        ])
        assert all(o.applied for o in outcomes)
        # The second normalises to a no-op against the post-batch state and
        # is not logged.
        assert not outcomes[1].effective.events
        assert big_engine.store.log_length() == 1

    def test_violating_member_rejected_others_commit(self, big_engine):
        victim = big_engine.query("Unemp(x)")[0][0]
        outcomes = big_engine.commit_many([
            parse_transaction("insert Works(N1)"),
            parse_transaction(f"delete U_benefit({victim})"),  # violates Ic1
            parse_transaction("insert Works(N3)"),
        ], raise_errors=False)
        applied = [o.applied for o in outcomes]
        assert applied == [True, False, True]
        assert big_engine.store.log_length() == 2

    def test_batch_cannot_mask_individually_violating_members(self, tmp_path):
        # Coupled constraints: P(x) requires Q(x) and vice versa.  Each
        # transaction alone violates, their union does not -- every serial
        # order rejects both, so the batch must too (a merged-only check
        # would wrongly commit both).
        from repro.datalog import DeductiveDatabase, parse_rule

        db = DeductiveDatabase()
        db.declare_base("P", 1)
        db.declare_base("Q", 1)
        db.add_constraint(parse_rule("Ic1(x) <- P(x) & not Q(x)."))
        db.add_constraint(parse_rule("Ic2(x) <- Q(x) & not P(x)."))
        engine = DatabaseEngine.open(tmp_path / "coupled", initial=db)
        try:
            outcomes = engine.commit_many(
                [parse_transaction("insert P(A)"),
                 parse_transaction("insert Q(A)")],
                raise_errors=False)
            assert [o.applied for o in outcomes] == [False, False]
            assert engine.store.log_length() == 0
            assert not engine.db.has_fact("P", "A")
            assert not engine.db.has_fact("Q", "A")
        finally:
            engine.close(checkpoint=False)

    def test_group_commit_outcomes_carry_individual_verdicts(self, big_engine):
        outcomes = big_engine.commit_many([
            parse_transaction("insert Works(V1)"),
            parse_transaction("insert Works(V2)"),
        ])
        assert big_engine.metrics.counter("commit.group_committed") == 2
        assert all(o.check is not None and o.check.ok for o in outcomes)

    def test_mixed_batch_bad_member_fails_alone(self, big_engine):
        entries = [
            parse_transaction("insert Works(N1)"),
            parse_transaction("insert Unemp(Zoe)"),  # derived: invalid
        ]
        with pytest.raises(TransactionError):
            big_engine.commit_many(entries)
        assert big_engine.db.has_fact("Works", "N1")


class TestDurableAcknowledgement:
    """Commits must be acknowledged only after the batch fsync."""

    def _spy_sync(self, engine, entries, observed):
        real_sync = engine.store.sync_log

        def spy():
            observed.extend(entry.done.is_set() for entry in entries)
            real_sync()

        return spy

    def test_fast_path_acks_after_fsync(self, big_engine, monkeypatch):
        from repro.server.engine import _Pending

        entries = [_Pending(parse_transaction("insert Works(A1)"), "reject"),
                   _Pending(parse_transaction("insert Works(A2)"), "reject")]
        observed: list[bool] = []
        monkeypatch.setattr(big_engine.store, "sync_log",
                            self._spy_sync(big_engine, entries, observed))
        big_engine._commit_batch(entries)
        # No waiter was woken before sync_log ran...
        assert observed == [False, False]
        # ... and every waiter was woken (successfully) afterwards.
        assert all(e.done.is_set() and e.outcome and e.outcome.applied
                   for e in entries)

    def test_slow_path_acks_after_fsync(self, big_engine, monkeypatch):
        from repro.server.engine import _Pending

        # 'maintain' forces the per-entry slow path.
        entries = [_Pending(parse_transaction("insert Works(B1)"), "maintain")]
        observed: list[bool] = []
        monkeypatch.setattr(big_engine.store, "sync_log",
                            self._spy_sync(big_engine, entries, observed))
        big_engine._commit_batch(entries)
        assert observed == [False]
        assert entries[0].outcome is not None and entries[0].outcome.applied

    def test_fsync_failure_fails_the_batch(self, big_engine, monkeypatch):
        def broken_sync():
            raise OSError("disk gone")

        monkeypatch.setattr(big_engine.store, "sync_log", broken_sync)
        with pytest.raises(OSError):
            big_engine.commit_many([parse_transaction("insert Works(C1)"),
                                    parse_transaction("insert Works(C2)")])

    def test_fsync_failure_fails_every_waiter(self, big_engine, monkeypatch):
        from repro.server.engine import _Pending

        def broken_sync():
            raise OSError("disk gone")

        monkeypatch.setattr(big_engine.store, "sync_log", broken_sync)
        entries = [_Pending(parse_transaction("insert Works(D1)"), "reject"),
                   _Pending(parse_transaction("insert Works(D2)"), "reject")]
        with big_engine._pending_lock:
            big_engine._pending.extend(entries)
        with pytest.raises(OSError):
            with big_engine._batch_lock:
                big_engine._drain()
        # Nobody is left blocked and nobody saw a success.
        assert all(e.done.is_set() for e in entries)
        assert all(isinstance(e.error, OSError) for e in entries)
        assert all(e.outcome is None for e in entries)


class TestConcurrency:
    N_THREADS = 8
    PER_THREAD = 10

    def test_serializable_commits_from_many_threads(self, tmp_path):
        engine = DatabaseEngine.open(
            tmp_path / "d", initial=employment_database(20, seed=3),
            max_batch=16)
        errors: list[BaseException] = []

        def writer(thread_index: int) -> None:
            try:
                for j in range(self.PER_THREAD):
                    outcome = engine.commit(Transaction(
                        [insert("Works", f"T{thread_index}_{j}")]))
                    assert outcome.applied
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        total = self.N_THREADS * self.PER_THREAD
        # No lost updates: every fact present...
        for i in range(self.N_THREADS):
            for j in range(self.PER_THREAD):
                assert engine.db.has_fact("Works", f"T{i}_{j}")
        # ... and the WAL holds exactly one line per effective transaction,
        # while group commit needed at most as many fsyncs as batches.
        assert engine.store.log_length() == total
        batches = engine.metrics.counter("commit.batches")
        assert 1 <= batches <= total
        assert engine.metrics.counter("commit.wal_syncs") == batches
        # Crash-recovery equivalence.
        engine.close(checkpoint=False)
        recovered = DurableDatabase.open(tmp_path / "d")
        assert recovered.db.fact_count() == engine.db.fact_count()

    def test_readers_run_during_writes(self, tmp_path):
        engine = DatabaseEngine.open(
            tmp_path / "d", initial=employment_database(20, seed=4))
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    engine.query("Works(x)")
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        try:
            for i in range(20):
                engine.commit(Transaction([insert("Works", f"W{i}")]))
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=30)
        assert not errors
        assert engine.store.log_length() == 20
        engine.close(checkpoint=False)

    def test_rwlock_excludes_writer_from_readers(self):
        lock = RWLock()
        state = {"writer_active": False}
        seen_overlap = []
        barrier = threading.Barrier(3)

        def reader() -> None:
            barrier.wait()
            for _ in range(200):
                with lock.read():
                    if state["writer_active"]:
                        seen_overlap.append(True)

        def writer() -> None:
            barrier.wait()
            for _ in range(100):
                with lock.write():
                    state["writer_active"] = True
                    state["writer_active"] = False

        threads = [threading.Thread(target=reader),
                   threading.Thread(target=reader),
                   threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not seen_overlap


class TestOutcome:
    def test_truthiness(self):
        assert CommitOutcome(True, Transaction())
        assert not CommitOutcome(False, Transaction())
