"""Tests for the typed UpdateRequest hierarchy and result serde symmetry."""

from __future__ import annotations

import pytest

from repro.core import UpdateProcessor
from repro.events.events import Transaction, parse_transaction
from repro.events.requests import parse_request
from repro.requests import (
    REQUEST_TYPES,
    CheckRequest,
    CommitRequest,
    DownwardRequest,
    MonitorRequest,
    QueryRequest,
    RepairRequest,
    UpdateRequest,
    UpwardRequest,
    WireFormatError,
)
from repro.server.engine import DatabaseEngine


@pytest.fixture
def engine(tmp_path, employment_db):
    engine = DatabaseEngine.open(tmp_path / "d", initial=employment_db)
    yield engine
    engine.close(checkpoint=False)


class TestRegistry:
    def test_every_protocol_op_is_registered(self):
        assert set(REQUEST_TYPES) == {
            "hello", "ping", "query", "upward", "check", "monitor",
            "downward", "repair", "commit", "stats", "checkpoint", "health",
            "prepare", "decide", "subscribe", "unsubscribe"}

    def test_unknown_op_raises(self):
        with pytest.raises(WireFormatError, match="unknown op"):
            UpdateRequest.of("nonsense", {})

    def test_from_wire_validates_shape(self):
        with pytest.raises(WireFormatError):
            UpdateRequest.from_wire({"params": {}})
        with pytest.raises(WireFormatError):
            UpdateRequest.from_wire({"op": "query", "params": [1]})


class TestWireRoundTrips:
    @pytest.mark.parametrize("request_", [
        QueryRequest(goal="Unemp(x)"),
        UpwardRequest(transaction="delete Works(Pere)"),
        UpwardRequest(transaction="insert La(Anna)", predicates=("Unemp",)),
        CheckRequest(transaction="insert La(Anna), insert U_benefit(Anna)"),
        MonitorRequest(transaction="insert Works(Dolors)",
                       conditions=("Unemp",)),
        DownwardRequest(requests="ins Unemp(Anna)"),
        DownwardRequest(requests=["ins Unemp(Anna)", "not del La(Dolors)"]),
        RepairRequest(verify=True),
        CommitRequest(transaction="insert Works(Maria)",
                      on_violation="maintain", timeout=2.5),
    ])
    def test_to_wire_from_wire_round_trip(self, request_):
        rebuilt = UpdateRequest.from_wire(request_.to_wire())
        assert type(rebuilt) is type(request_)
        assert rebuilt.to_wire() == request_.to_wire()

    def test_strings_are_coerced_on_construction(self):
        request = UpwardRequest(transaction="delete Works(Pere)")
        assert isinstance(request.transaction, Transaction)
        downward = DownwardRequest(requests="ins P(A); del Q(B)")
        assert len(downward.requests) == 2

    def test_paramless_ops_omit_params(self):
        assert UpdateRequest.of("ping").to_wire() == {"op": "ping"}
        assert RepairRequest().to_wire() == {"op": "repair"}

    def test_legacy_downward_string_payload_accepted(self):
        request = UpdateRequest.of(
            "downward", {"requests": "ins Unemp(Anna); not del La(Dolors)"})
        assert isinstance(request, DownwardRequest)
        assert len(request.requests) == 2
        # ...but it re-serialises in the canonical list form.
        assert request.to_wire()["params"]["requests"] == [
            "ins Unemp(Anna)", "not del La(Dolors)"]

    @pytest.mark.parametrize("op,params", [
        ("query", {}),
        ("query", {"goal": "   "}),
        ("upward", {"transaction": "insert P(A)", "predicates": "P"}),
        ("monitor", {"transaction": "insert P(A)", "conditions": []}),
        ("downward", {"requests": []}),
        ("commit", {"transaction": "insert P(A)", "on_violation": "explode"}),
        ("commit", {"transaction": "insert P(A)", "timeout": 0}),
        ("commit", {"transaction": "insert P(A)", "timeout": "soon"}),
    ])
    def test_bad_params_raise_wire_format_error(self, op, params):
        with pytest.raises(WireFormatError):
            UpdateRequest.of(op, params)


class TestExecuteAndRun:
    def test_execute_matches_legacy_handler_shapes(self, engine):
        assert UpdateRequest.of("ping").execute(engine) == {"pong": True}
        hello = UpdateRequest.of("hello").execute(engine)
        assert hello["server"] == "repro" and "shutdown" in hello["ops"]
        answers = UpdateRequest.of(
            "query", {"goal": "Unemp(x)"}).execute(engine)
        assert answers == {"answers": [["Dolors"]]}
        checked = UpdateRequest.of(
            "check", {"transaction": "delete U_benefit(Dolors)"}
        ).execute(engine)
        assert checked["ok"] is False and "Ic1" in checked["violations"]

    def test_commit_timeout_param_reaches_the_engine(self, engine):
        # Deterministic conflict: hold the batch lock so the request's
        # bounded wait expires while the entry is still queued.
        assert engine._batch_lock.acquire(timeout=5)
        try:
            request = UpdateRequest.of("commit", {
                "transaction": "insert Works(Maria)", "timeout": 0.05})
            from repro.server.engine import ConflictDeferralTimeout

            with pytest.raises(ConflictDeferralTimeout, match="NOT applied"):
                request.execute(engine)
        finally:
            engine._batch_lock.release()

    def test_run_executes_locally(self, employment_db):
        processor = UpdateProcessor(employment_db)
        answers = processor.handle(QueryRequest(goal="Unemp(x)"))
        assert [tuple(str(v) for v in row) for row in answers] == [("Dolors",)]
        result = processor.handle(
            UpwardRequest(transaction="insert Works(Dolors)"))
        assert result.deletions_of("Unemp")
        outcome = processor.handle(
            CommitRequest(transaction="insert La(Anna), "
                                      "insert U_benefit(Anna)"))
        assert outcome.applied

    def test_server_only_ops_refuse_to_run_locally(self, employment_db):
        processor = UpdateProcessor(employment_db)
        from repro.datalog.errors import DatalogError

        with pytest.raises(DatalogError, match="server"):
            processor.handle(UpdateRequest.of("stats"))


class TestClientSend(object):
    def test_send_equals_call(self, engine):
        from repro.server.client import DatabaseClient
        from repro.server.server import ServerThread

        with ServerThread(engine) as port:
            with DatabaseClient(port=port) as client:
                typed = client.send(QueryRequest(goal="Unemp(x)"))
                classic = client.call("query", goal="Unemp(x)")
                assert typed == classic == {"answers": [["Dolors"]]}
                outcome = client.send(CommitRequest(
                    transaction="insert Works(Maria)"))
                assert outcome["applied"]


class TestResultSerdeSymmetry:
    def test_transaction_round_trip(self):
        transaction = parse_transaction("insert P(A), delete Q(B, C)")
        rebuilt = Transaction.from_dict(transaction.to_dict())
        assert rebuilt == transaction
        assert parse_transaction(transaction.to_text()) == transaction

    def test_upward_result_round_trip(self, employment_db):
        from repro.interpretations.upward import UpwardResult

        processor = UpdateProcessor(employment_db)
        result = processor.upward(parse_transaction("insert Works(Dolors)"))
        rebuilt = UpwardResult.from_dict(result.to_dict())
        assert rebuilt.insertions == result.insertions
        assert rebuilt.deletions == result.deletions
        assert rebuilt.transaction == result.transaction
        assert rebuilt.to_dict() == result.to_dict()

    def test_downward_result_round_trip(self, employment_db):
        from repro.interpretations.downward import DownwardResult

        processor = UpdateProcessor(employment_db)
        result = processor.downward([parse_request("ins Unemp(Anna)")])
        payload = result.to_dict()
        rebuilt = DownwardResult.from_dict(payload)
        assert rebuilt.is_satisfiable == result.is_satisfiable
        assert {str(t) for t in rebuilt.translations} == \
            {str(t) for t in result.translations}
        assert rebuilt.to_dict() == payload

    def test_check_result_round_trip(self, employment_db):
        from repro.problems import ICCheckResult

        processor = UpdateProcessor(employment_db)
        result = processor.check(
            parse_transaction("delete U_benefit(Dolors)"))
        rebuilt = ICCheckResult.from_dict(result.to_dict())
        assert rebuilt.ok == result.ok
        assert rebuilt.violations == result.violations
        assert rebuilt.to_dict() == result.to_dict()

    def test_monitor_result_round_trip(self, employment_db):
        from repro.problems import ConditionChanges

        processor = UpdateProcessor(employment_db)
        result = processor.monitor(
            parse_transaction("insert Works(Dolors)"), ["Unemp"])
        rebuilt = ConditionChanges.from_dict(result.to_dict())
        assert rebuilt.activated == result.activated
        assert rebuilt.deactivated == result.deactivated
        assert rebuilt.to_dict() == result.to_dict()

    def test_commit_outcome_round_trip(self, engine):
        from repro.server.engine import CommitOutcome

        outcome = engine.commit(parse_transaction("insert Works(Maria)"))
        rebuilt = CommitOutcome.from_dict(outcome.to_dict())
        assert rebuilt.applied == outcome.applied
        assert rebuilt.effective == outcome.effective
        assert rebuilt.to_dict() == outcome.to_dict()

    def test_repair_result_round_trip(self):
        from repro.datalog.database import DeductiveDatabase
        from repro.problems import RepairResult, repair_database

        db = DeductiveDatabase.from_source("""
            P(A).
            Ic1 <- P(x) & not Q(x).
        """)
        db.declare_base("Q", 1)
        result = repair_database(db)
        payload = result.to_dict()
        rebuilt = RepairResult.from_dict(payload)
        assert rebuilt.is_repairable == result.is_repairable
        assert {str(t) for t in rebuilt.repairs} == \
            {str(t) for t in result.repairs}
        assert rebuilt.to_dict() == payload
