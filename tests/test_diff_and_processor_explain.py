"""Tests for transaction_between and UpdateProcessor.explain."""


from repro.core import UpdateProcessor
from repro.events import Transaction, transaction_between
from repro.events.events import delete, insert, parse_transaction


class TestTransactionBetween:
    def test_diff_round_trip(self, pqr_db):
        new_db = Transaction([delete("R", "B"), insert("Q", "C")]).apply_to(pqr_db)
        diff = transaction_between(pqr_db, new_db)
        assert diff == Transaction([delete("R", "B"), insert("Q", "C")])
        # Applying the diff reproduces the new state exactly.
        assert set(diff.apply_to(pqr_db).iter_facts()) == \
            set(new_db.iter_facts())

    def test_identical_states_empty_diff(self, pqr_db):
        assert transaction_between(pqr_db, pqr_db.copy()) == Transaction()

    def test_diff_is_effective(self, pqr_db):
        new_db = pqr_db.copy()
        new_db.add_fact("Q", "Z")
        diff = transaction_between(pqr_db, new_db)
        assert diff.normalized(pqr_db) == diff

    def test_inverse_direction(self, pqr_db):
        new_db = Transaction([delete("R", "B")]).apply_to(pqr_db)
        forward = transaction_between(pqr_db, new_db)
        backward = transaction_between(new_db, pqr_db)
        from repro.core.history import inverse_of

        assert backward == inverse_of(forward)


class TestProcessorExplain:
    def test_explains_induced_event(self, pqr_db):
        processor = UpdateProcessor(pqr_db)
        trees = processor.explain(parse_transaction("{delete R(B)}"),
                                  insert("P", "B"))
        assert trees
        assert "new$P(B)" in str(trees[0])

    def test_no_explanation_for_uninduced(self, pqr_db):
        processor = UpdateProcessor(pqr_db)
        assert processor.explain(parse_transaction("{delete R(B)}"),
                                 insert("P", "A")) == ()
