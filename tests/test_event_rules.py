"""Unit tests for event-rule compilation and the transition program."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import StratificationError
from repro.events.event_rules import EventCompiler, make_event_rules
from repro.events.naming import EventKind, del_name, ins_name


@pytest.fixture
def pqr_program(pqr_db):
    return EventCompiler().compile(pqr_db)


class TestEventRuleShape:
    def test_insertion_rule(self):
        insertion, _ = make_event_rules("P", 1)
        assert str(insertion) == "ιP(x1) <-> Pn(x1) ∧ ¬P(x1)"

    def test_deletion_rule(self):
        _, deletion = make_event_rules("P", 1)
        assert str(deletion) == "δP(x1) <-> P(x1) ∧ ¬Pn(x1)"

    def test_propositional(self):
        insertion, deletion = make_event_rules("Ic1", 0)
        assert str(insertion) == "ιIc1 <-> Ic1n ∧ ¬Ic1"

    def test_as_datalog_rule(self):
        insertion, _ = make_event_rules("P", 2)
        r = insertion.as_datalog_rule()
        assert r.head.predicate == "ins$P"
        assert len(r.body) == 2


class TestCompileBasics:
    def test_derived_set(self, pqr_program):
        assert pqr_program.derived == {"P"}

    def test_base_arities(self, pqr_program):
        assert pqr_program.base_arities == {"Q": 1, "R": 1}

    def test_event_rules_per_derived(self, pqr_program):
        insertion = pqr_program.event_rule(EventKind.INSERTION, "P")
        deletion = pqr_program.event_rule(EventKind.DELETION, "P")
        assert insertion.kind is EventKind.INSERTION
        assert deletion.kind is EventKind.DELETION

    def test_transition_rules_of(self, pqr_program):
        (transition,) = pqr_program.transition_rules_of("P")
        assert len(transition.disjuncts) == 4
        assert pqr_program.transition_rules_of("Q") == ()

    def test_flat_program_stratified(self, pqr_program):
        stratification = pqr_program.require_flat_program()
        assert stratification.stratum("ins$P") > stratification.stratum("new$P")

    def test_describe_mentions_everything(self, pqr_program):
        text = pqr_program.describe()
        assert "ιP(x1)" in text and "δP(x1)" in text and "Pn(x)" in text


class TestGlobalIc:
    def test_global_ic_compiled(self, employment_db):
        program = EventCompiler().compile(employment_db)
        assert "Ic" in program.derived
        assert "Ic1" in program.derived

    def test_global_ic_optional(self, employment_db):
        program = EventCompiler(include_global_ic=False).compile(employment_db)
        assert "Ic" not in program.derived
        assert "Ic1" in program.derived


class TestSimplification:
    def test_simplified_insertion_rules_inlined(self, pqr_db):
        program = EventCompiler(simplify=True).compile(pqr_db)
        ins_rules = [r for r in program.upward_rules
                     if r.head.predicate == ins_name("P")]
        # 3 event-bearing disjuncts, each inlined with ¬P(x).
        assert len(ins_rules) == 3
        assert all(any(not lit.positive and lit.predicate == "P"
                       for lit in r.body) for r in ins_rules)

    def test_unsimplified_uses_new_state(self, pqr_db):
        program = EventCompiler(simplify=False).compile(pqr_db)
        ins_rules = [r for r in program.upward_rules
                     if r.head.predicate == ins_name("P")]
        assert len(ins_rules) == 1
        assert ins_rules[0].body[0].predicate == "new$P"

    def test_deletion_rule_always_via_new_state(self, pqr_db):
        for simplify in (True, False):
            program = EventCompiler(simplify=simplify).compile(pqr_db)
            del_rules = [r for r in program.upward_rules
                         if r.head.predicate == del_name("P")]
            assert len(del_rules) == 1

    def test_contradictory_disjuncts_pruned(self):
        # P(x) <- Q(x) & not Q(x) expands to disjuncts containing ιQ ∧ δQ
        # and Q ∧ ¬Q, all contradictory.
        db = DeductiveDatabase.from_source("Q(A). P(x) <- Q(x) & not Q(x).")
        literal = EventCompiler(simplify=False).compile(db)
        simplified = EventCompiler(simplify=True).compile(db)
        (lit_t,) = literal.transition_rules_of("P")
        (simp_t,) = simplified.transition_rules_of("P")
        assert len(lit_t.disjuncts) == 4
        assert len(simp_t.disjuncts) < 4


class TestRecursion:
    def test_recursive_program_compiles_without_flat_stratification(self):
        db = DeductiveDatabase.from_source("""
            Edge(A,B).
            Path(x,y) <- Edge(x,y).
            Path(x,y) <- Edge(x,z) & Path(z,y).
        """)
        program = EventCompiler().compile(db)
        assert program.stratification is None
        with pytest.raises(StratificationError):
            program.require_flat_program()

    def test_unstratifiable_source_rejected_outright(self):
        db = DeductiveDatabase()
        from repro.datalog.parser import parse_rule

        db.declare_base("Q", 1)
        db.add_rule(parse_rule("P(x) <- Q(x) & not P(x)."))
        with pytest.raises(StratificationError):
            EventCompiler().compile(db)


class TestUpwardProgramContents:
    def test_contains_base_transition_rules(self, pqr_program):
        heads = {r.head.predicate for r in pqr_program.upward_rules}
        assert "new$Q" in heads and "new$R" in heads

    def test_contains_source_rules(self, pqr_program):
        assert any(r.head.predicate == "P" and not r.label
                   for r in pqr_program.upward_rules)

    def test_source_rules_recorded(self, pqr_program):
        assert any(r.head.predicate == "P" for r in pqr_program.source_rules)
