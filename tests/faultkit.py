"""The crash-recovery test kit: run a workload, crash it, check invariants.

The harness drives a :class:`DatabaseEngine` through a generated workload
with a failpoint schedule armed (:mod:`repro.faults`), catches the
:class:`~repro.faults.SimulatedCrash` that unwinds the engine, **abandons**
the in-memory state -- no ``close()``, no checkpoint, exactly what a dead
process leaves behind -- and re-opens the directory through recovery.
Three invariants are then checked (``check_invariants``):

1. **Acked commits survive.**  Replaying the acknowledged effective
   transactions over the initial facts gives the expected base state; every
   acked change must be present in the recovered state.
2. **No partial batch.**  The recovered state must be the expected state
   plus an *order-preserving subsequence* of the in-flight (submitted,
   never acked) transactions: each WAL line is atomic, so an in-flight
   transaction is wholly present or wholly absent, and a member may be
   legally absent mid-batch because its own integrity check rejected it
   on the serial path.  Half-applied transactions, reordered effects and
   phantom events all land outside the allowed set.  (Unacked lines may
   survive at all: an in-process "crash" cannot lose flushed bytes,
   mirroring a machine that loses power after the page cache drained.)
3. **Derived state is exactly the naive rebuild.**  Every derived
   predicate queried through the recovered engine must equal a fresh
   bottom-up materialisation over the recovered base facts -- the
   differential oracle that catches stale caches and half-applied batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.datalog.database import DeductiveDatabase
from repro.events.events import Transaction
from repro.server.engine import DatabaseEngine
from repro.workloads.generators import random_transaction

FactSet = frozenset  # of (predicate, args) pairs


def base_facts(db: DeductiveDatabase) -> FactSet:
    """The extensional state as a comparable set of (predicate, args)."""
    return frozenset((predicate, row) for predicate, row in db.iter_facts())


def apply_transaction(facts: set, transaction: Transaction) -> None:
    """Apply *transaction* to a fact set under set semantics (in place)."""
    for event in transaction:
        key = (event.predicate, event.args)
        if event.is_insertion:
            facts.add(key)
        else:
            facts.discard(key)


@dataclass
class CrashReport:
    """What a :func:`run_workload` observed before the crash."""

    initial: FactSet
    #: Effective transactions in acknowledgement order.
    acked: list[Transaction] = field(default_factory=list)
    #: Submitted-but-unacked transactions, in submission order.
    inflight: list[Transaction] = field(default_factory=list)
    crash: faults.SimulatedCrash | None = None
    #: How many workload steps ran (committed or crashed) before stopping.
    steps: int = 0

    @property
    def crashed(self) -> bool:
        return self.crash is not None

    def expected_facts(self) -> FactSet:
        """The base state every acked commit promises to reconstruct."""
        facts = set(self.initial)
        for transaction in self.acked:
            apply_transaction(facts, transaction)
        return frozenset(facts)

    def allowed_facts(self) -> set[FactSet]:
        """Every legal post-recovery base state.

        Acked state plus any order-preserving subsequence of the in-flight
        transactions (2^n states; in-flight batches are small).
        """
        states = {self.expected_facts()}
        for transaction in self.inflight:
            extended = set()
            for state in states:
                facts = set(state)
                apply_transaction(facts, transaction)
                extended.add(frozenset(facts))
            states |= extended
        return states


def run_workload(engine: DatabaseEngine, *, steps: int = 20,
                 n_events: int = 3, seed: int = 0,
                 batch: int = 1,
                 checkpoint_every: int | None = None) -> CrashReport:
    """Drive *engine* through a generated workload until done or crashed.

    Each step builds ``batch`` random transactions against the engine's
    *current* state (seeded deterministically from *seed* and the step
    number) and commits them -- through :meth:`DatabaseEngine.commit` when
    ``batch == 1``, through :meth:`DatabaseEngine.commit_many` otherwise,
    which exercises the group-commit fast path.  ``checkpoint_every``
    interleaves checkpoints, putting the checkpoint failpoints in reach.

    The armed failpoint schedule decides where (and whether) the crash
    happens; the report captures everything the invariants need.
    """
    report = CrashReport(initial=base_facts(engine.db))
    for step in range(steps):
        # Pairwise-disjoint fact sets, so a chunk is one group-commit
        # batch (conflict deferral would reorder it across batches and
        # muddy the in-flight accounting).
        transactions: list[Transaction] = []
        touched: set = set()
        bump = 0
        while len(transactions) < batch and bump < batch * 20:
            candidate = random_transaction(
                engine.db, n_events=n_events,
                seed=seed * 100003 + step * 31 + len(transactions) + bump)
            bump += 1
            keys = {(e.predicate, e.args) for e in candidate}
            if keys and touched.isdisjoint(keys):
                transactions.append(candidate)
                touched |= keys
        report.steps = step + 1
        try:
            if batch == 1:
                outcome = engine.commit(transactions[0])
                outcomes = [outcome]
            else:
                outcomes = engine.commit_many(transactions,
                                              raise_errors=False)
        except faults.SimulatedCrash as crash:
            report.inflight.extend(transactions)
            report.crash = crash
            return report
        for outcome in outcomes:
            if outcome.applied:
                report.acked.append(outcome.effective)
        if checkpoint_every and (step + 1) % checkpoint_every == 0:
            try:
                engine.checkpoint()
            except faults.SimulatedCrash as crash:
                report.crash = crash
                return report
    return report


def recover(directory: Path | str, **engine_kwargs) -> DatabaseEngine:
    """Open a fresh engine over the (possibly crash-scarred) directory."""
    return DatabaseEngine.open(directory, **engine_kwargs)


@dataclass
class RetryReport:
    """What :func:`run_workload_with_retries` observed across crashes.

    Unlike :class:`CrashReport` there is no in-flight ambiguity left to
    allow for: every step was retried with the same ``txn_id`` until an
    outcome came back, so the recovered state must be *exactly* the acked
    replay -- that is the exactly-once claim under test.
    """

    initial: FactSet
    #: Applied effective transactions in acknowledgement order.
    acked: list[Transaction] = field(default_factory=list)
    #: ``txn_id -> transaction`` for every step, in commit order.
    transactions: dict[str, Transaction] = field(default_factory=dict)
    #: ``txn_id -> outcome.to_dict()`` as the workload observed it.
    outcomes: dict[str, dict] = field(default_factory=dict)
    crashes: int = 0
    retries: int = 0
    steps: int = 0

    def expected_facts(self) -> FactSet:
        """The one legal final base state: initial + every acked commit."""
        facts = set(self.initial)
        for transaction in self.acked:
            apply_transaction(facts, transaction)
        return frozenset(facts)


def run_workload_with_retries(
        engine: DatabaseEngine, directory: Path | str, *,
        steps: int = 20, n_events: int = 3, seed: int = 0,
        max_attempts: int = 5,
        rearm=None,
        **engine_kwargs) -> tuple[RetryReport, DatabaseEngine]:
    """Drive a txn-stamped workload, retrying each commit *through* crashes.

    Every step stamps its transaction with a deterministic ``txn_id`` and
    commits it.  On :class:`~repro.faults.SimulatedCrash` the engine is
    abandoned mid-call -- the ambiguous-ack window: the attempt may or may
    not have reached the WAL -- the failpoint schedule is cleared, the
    directory re-opened through recovery, and the *same* transaction
    retried with the *same* ``txn_id``.  The durable dedup table makes the
    retry safe: a first attempt that did apply short-circuits to its
    recorded outcome, one that did not applies exactly once now.

    ``rearm(crash_count)``, when given, runs after each recovery so a test
    can schedule the next crash.  Returns ``(report, engine)`` -- the
    final engine (post the last recovery, if any); the caller closes it.
    """
    report = RetryReport(initial=base_facts(engine.db))
    for step in range(steps):
        transaction = random_transaction(
            engine.db, n_events=n_events, seed=seed * 100003 + step * 31)
        txn_id = f"w{seed}-{step}"
        outcome = None
        for attempt in range(max_attempts):
            if attempt:
                report.retries += 1
            try:
                outcome = engine.commit(transaction, txn_id=txn_id)
                break
            except faults.SimulatedCrash:
                report.crashes += 1
                faults.reset()  # recovery must run clean
                engine = recover(directory, **engine_kwargs)
                if rearm is not None:
                    rearm(report.crashes)
        else:
            raise AssertionError(
                f"step {step} got no outcome after {max_attempts} attempts")
        report.steps = step + 1
        report.transactions[txn_id] = transaction
        report.outcomes[txn_id] = outcome.to_dict()
        if outcome.applied:
            report.acked.append(outcome.effective)
    return report, engine


def check_exactly_once(report: RetryReport,
                       recovered: DatabaseEngine) -> None:
    """Assert the exactly-once invariants after a retried workload.

    1. The base state is *exactly* initial + acked effectives -- retries
       resolved every ambiguous ack, so no subsequence slack is allowed.
    2. Derived state equals the naive bottom-up oracle rebuild.
    3. Replaying every stamped commit is a pure dedup hit: the original
       ``applied``/``effective`` comes back, the ``dedup.hit`` counter
       grows by exactly one per replay, and the state does not move.
    """
    observed = base_facts(recovered.db)
    expected = report.expected_facts()
    assert observed == expected, (
        "exactly-once violated: recovered base state diverges from the "
        "acked replay:\n"
        f"  missing: {sorted(map(str, expected - observed))}\n"
        f"  extra:   {sorted(map(str, observed - expected))}")
    check_derived_oracle(recovered)

    hits_before = recovered.metrics.counter("dedup.hit")
    for txn_id, transaction in report.transactions.items():
        replay = recovered.commit(transaction, txn_id=txn_id)
        original = report.outcomes[txn_id]
        assert replay.applied == original["applied"], (
            f"replay of {txn_id} flipped applied="
            f"{original['applied']} to {replay.applied}")
        assert replay.effective.to_dict() == original["effective"], (
            f"replay of {txn_id} returned a different effective "
            f"transaction")
    hits = recovered.metrics.counter("dedup.hit") - hits_before
    assert hits == len(report.transactions), (
        f"{len(report.transactions) - hits} replayed commit(s) were not "
        "dedup hits -- they re-applied")
    assert base_facts(recovered.db) == expected, (
        "replaying recorded commits moved the base state")


def check_invariants(report: CrashReport, recovered: DatabaseEngine) -> None:
    """Assert the three crash-recovery invariants (see module docstring)."""
    observed = base_facts(recovered.db)
    expected = report.expected_facts()
    allowed = report.allowed_facts()

    # 1 + 2. Every acked commit survives, and nothing beyond an in-flight
    # prefix is visible: both reduce to membership in the allowed states.
    missing = expected - observed
    extra = observed - expected
    assert observed in allowed, (
        "recovered base state is not acked-state + an in-flight prefix:\n"
        f"  missing vs acked state: {sorted(map(str, missing))}\n"
        f"  extra vs acked state:   {sorted(map(str, extra))}\n"
        f"  in-flight transactions: {len(report.inflight)}")

    # 3. Derived state is exactly the naive oracle rebuild.
    check_derived_oracle(recovered)


def check_derived_oracle(recovered: DatabaseEngine) -> None:
    """Every derived predicate must equal a fresh bottom-up rebuild.

    When the engine runs a *stateful* maintainer (counting mode), its
    maintained extensions are checked against the oracle too: crash
    recovery must rebuild counts that agree with the naive semantics,
    not just answer queries correctly through fresh evaluators.
    """
    oracle = DeductiveDatabase.from_source(str(recovered.db))
    schema = recovered.db.schema
    maintainer = getattr(recovered, "maintainer", None)
    maintained = (maintainer is not None
                  and getattr(maintainer, "active", False))
    for predicate in sorted(schema.derived):
        arity = schema.arity(predicate)
        variables = ", ".join(f"x{i}" for i in range(arity))
        goal = f"{predicate}({variables})" if arity else predicate
        answers = oracle.query(goal)
        assert recovered.query(goal) == answers, (
            f"derived predicate {predicate} diverges from the naive "
            f"rebuild after recovery")
        if maintained:
            extension = {tuple(constant.value for constant in row)
                         for row in maintainer.extension(predicate)}
            assert extension == set(map(tuple, answers)), (
                f"maintained extension of {predicate} diverges from the "
                f"naive rebuild after recovery")


def derived_arities(host) -> dict[str, int]:
    """Every derived predicate of an engine-shaped host, with arity."""
    db = getattr(host, "db", None)
    if db is None:  # an EngineGroup: all shards share the schema
        db = host.engines[0].db
    schema = db.schema
    return {predicate: schema.arity(predicate)
            for predicate in sorted(schema.derived)}


class SubscriptionOracle:
    """Differential subscription oracle: the feed must rebuild the state.

    Maintains a *shadow* extension of the watched derived predicates by
    applying delta frames as they arrive; a ``resync`` frame re-pulls the
    materialised state instead, exactly as a real subscriber must.
    :meth:`check` then asserts the shadow equals a fresh materialisation
    pull -- i.e. the feed's frames compose to precisely the before/after
    diff of every commit, with no duplicate, missing or phantom rows
    (duplicate inserts and phantom deletes fail eagerly in
    :meth:`drain`).  Call it at quiescence (no in-flight commits).

    Pass ``subscribe=False`` to drive the oracle from an external frame
    source (a wire stream) via :meth:`observe`; *host* is then only used
    to pull materialised state through ``host.query``.
    """

    def __init__(self, host, predicates: dict[str, int] | None = None, *,
                 subscribe: bool = True):
        self.host = host
        self.arities = (dict(predicates) if predicates is not None
                        else derived_arities(host))
        self.frames: list[dict] = []
        self.deltas = 0
        self.resyncs = 0
        self.info: dict | None = None
        if subscribe:
            self.info = host.feed_subscribe(
                sorted(self.arities), self.observe)
        self.shadow = self.pull()

    def observe(self, frame: dict) -> None:
        """Receive one frame (the subscription callback)."""
        self.frames.append(frame)

    def goal(self, predicate: str) -> str:
        arity = self.arities[predicate]
        if not arity:
            return predicate
        return f"{predicate}({', '.join(f'x{i}' for i in range(arity))})"

    def pull(self) -> dict[str, set[tuple]]:
        """The host's materialised extensions of the watched predicates."""
        return {predicate: {tuple(row)
                            for row in self.host.query(self.goal(predicate))}
                for predicate in self.arities}

    def drain(self) -> None:
        """Fold every buffered frame into the shadow state."""
        while self.frames:
            frame = self.frames.pop(0)
            kind = frame.get("kind")
            if kind == "delta":
                self.deltas += 1
                self._apply(frame)
            elif kind == "resync":
                # Coverage was lost; buffered successors are already
                # reflected in the state a re-pull sees, so drop them.
                self.resyncs += 1
                self.frames.clear()
                self.shadow = self.pull()
            elif kind == "closed":
                raise AssertionError(f"feed unexpectedly closed: {frame}")
            else:
                raise AssertionError(f"unknown frame kind: {frame}")

    def _apply(self, frame: dict) -> None:
        for predicate, rows in (frame.get("inserted") or {}).items():
            target = self.shadow.setdefault(predicate, set())
            for row in rows:
                row = tuple(row)
                assert row not in target, (
                    f"feed delivered a duplicate insert of "
                    f"{predicate}{row}")
                target.add(row)
        for predicate, rows in (frame.get("deleted") or {}).items():
            target = self.shadow.setdefault(predicate, set())
            for row in rows:
                row = tuple(row)
                assert row in target, (
                    f"feed delivered a phantom delete of {predicate}{row}")
                target.discard(row)

    def check(self) -> None:
        """Drain and assert shadow == a fresh materialisation pull."""
        self.drain()
        actual = self.pull()
        assert self.shadow == actual, (
            "subscription feed diverges from the materialised state:\n"
            + "\n".join(
                f"  {predicate}: feed-only="
                f"{sorted(self.shadow.get(predicate, set()) - rows)} "
                f"state-only="
                f"{sorted(rows - self.shadow.get(predicate, set()))}"
                for predicate, rows in sorted(actual.items())
                if self.shadow.get(predicate, set()) != rows))


def crash_and_recover(engine: DatabaseEngine, directory: Path | str,
                      engine_kwargs: dict | None = None,
                      **workload_kwargs) -> tuple[CrashReport, DatabaseEngine]:
    """Run a workload, then recover and check invariants.  Returns both.

    The caller arms the failpoint schedule first; this drives the engine,
    abandons it (crashed or not), re-opens the directory and asserts the
    invariants.  The recovered engine is returned for further probing --
    the caller closes it.  ``engine_kwargs`` are forwarded to the
    recovery :meth:`DatabaseEngine.open` (e.g. ``cache_mode``), so the
    matrix can recover into the same maintainer it crashed with.
    """
    report = run_workload(engine, **workload_kwargs)
    faults.reset()  # the recovery path itself must run clean
    recovered = recover(directory, **(engine_kwargs or {}))
    check_invariants(report, recovered)
    return report, recovered
