"""The crash-recovery test kit: run a workload, crash it, check invariants.

The harness drives a :class:`DatabaseEngine` through a generated workload
with a failpoint schedule armed (:mod:`repro.faults`), catches the
:class:`~repro.faults.SimulatedCrash` that unwinds the engine, **abandons**
the in-memory state -- no ``close()``, no checkpoint, exactly what a dead
process leaves behind -- and re-opens the directory through recovery.
Three invariants are then checked (``check_invariants``):

1. **Acked commits survive.**  Replaying the acknowledged effective
   transactions over the initial facts gives the expected base state; every
   acked change must be present in the recovered state.
2. **No partial batch.**  The recovered state must be the expected state
   plus an *order-preserving subsequence* of the in-flight (submitted,
   never acked) transactions: each WAL line is atomic, so an in-flight
   transaction is wholly present or wholly absent, and a member may be
   legally absent mid-batch because its own integrity check rejected it
   on the serial path.  Half-applied transactions, reordered effects and
   phantom events all land outside the allowed set.  (Unacked lines may
   survive at all: an in-process "crash" cannot lose flushed bytes,
   mirroring a machine that loses power after the page cache drained.)
3. **Derived state is exactly the naive rebuild.**  Every derived
   predicate queried through the recovered engine must equal a fresh
   bottom-up materialisation over the recovered base facts -- the
   differential oracle that catches stale caches and half-applied batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.datalog.database import DeductiveDatabase
from repro.events.events import Transaction
from repro.server.engine import DatabaseEngine
from repro.workloads.generators import random_transaction

FactSet = frozenset  # of (predicate, args) pairs


def base_facts(db: DeductiveDatabase) -> FactSet:
    """The extensional state as a comparable set of (predicate, args)."""
    return frozenset((predicate, row) for predicate, row in db.iter_facts())


def apply_transaction(facts: set, transaction: Transaction) -> None:
    """Apply *transaction* to a fact set under set semantics (in place)."""
    for event in transaction:
        key = (event.predicate, event.args)
        if event.is_insertion:
            facts.add(key)
        else:
            facts.discard(key)


@dataclass
class CrashReport:
    """What a :func:`run_workload` observed before the crash."""

    initial: FactSet
    #: Effective transactions in acknowledgement order.
    acked: list[Transaction] = field(default_factory=list)
    #: Submitted-but-unacked transactions, in submission order.
    inflight: list[Transaction] = field(default_factory=list)
    crash: faults.SimulatedCrash | None = None
    #: How many workload steps ran (committed or crashed) before stopping.
    steps: int = 0

    @property
    def crashed(self) -> bool:
        return self.crash is not None

    def expected_facts(self) -> FactSet:
        """The base state every acked commit promises to reconstruct."""
        facts = set(self.initial)
        for transaction in self.acked:
            apply_transaction(facts, transaction)
        return frozenset(facts)

    def allowed_facts(self) -> set[FactSet]:
        """Every legal post-recovery base state.

        Acked state plus any order-preserving subsequence of the in-flight
        transactions (2^n states; in-flight batches are small).
        """
        states = {self.expected_facts()}
        for transaction in self.inflight:
            extended = set()
            for state in states:
                facts = set(state)
                apply_transaction(facts, transaction)
                extended.add(frozenset(facts))
            states |= extended
        return states


def run_workload(engine: DatabaseEngine, *, steps: int = 20,
                 n_events: int = 3, seed: int = 0,
                 batch: int = 1,
                 checkpoint_every: int | None = None) -> CrashReport:
    """Drive *engine* through a generated workload until done or crashed.

    Each step builds ``batch`` random transactions against the engine's
    *current* state (seeded deterministically from *seed* and the step
    number) and commits them -- through :meth:`DatabaseEngine.commit` when
    ``batch == 1``, through :meth:`DatabaseEngine.commit_many` otherwise,
    which exercises the group-commit fast path.  ``checkpoint_every``
    interleaves checkpoints, putting the checkpoint failpoints in reach.

    The armed failpoint schedule decides where (and whether) the crash
    happens; the report captures everything the invariants need.
    """
    report = CrashReport(initial=base_facts(engine.db))
    for step in range(steps):
        # Pairwise-disjoint fact sets, so a chunk is one group-commit
        # batch (conflict deferral would reorder it across batches and
        # muddy the in-flight accounting).
        transactions: list[Transaction] = []
        touched: set = set()
        bump = 0
        while len(transactions) < batch and bump < batch * 20:
            candidate = random_transaction(
                engine.db, n_events=n_events,
                seed=seed * 100003 + step * 31 + len(transactions) + bump)
            bump += 1
            keys = {(e.predicate, e.args) for e in candidate}
            if keys and touched.isdisjoint(keys):
                transactions.append(candidate)
                touched |= keys
        report.steps = step + 1
        try:
            if batch == 1:
                outcome = engine.commit(transactions[0])
                outcomes = [outcome]
            else:
                outcomes = engine.commit_many(transactions,
                                              raise_errors=False)
        except faults.SimulatedCrash as crash:
            report.inflight.extend(transactions)
            report.crash = crash
            return report
        for outcome in outcomes:
            if outcome.applied:
                report.acked.append(outcome.effective)
        if checkpoint_every and (step + 1) % checkpoint_every == 0:
            try:
                engine.checkpoint()
            except faults.SimulatedCrash as crash:
                report.crash = crash
                return report
    return report


def recover(directory: Path | str, **engine_kwargs) -> DatabaseEngine:
    """Open a fresh engine over the (possibly crash-scarred) directory."""
    return DatabaseEngine.open(directory, **engine_kwargs)


def check_invariants(report: CrashReport, recovered: DatabaseEngine) -> None:
    """Assert the three crash-recovery invariants (see module docstring)."""
    observed = base_facts(recovered.db)
    expected = report.expected_facts()
    allowed = report.allowed_facts()

    # 1 + 2. Every acked commit survives, and nothing beyond an in-flight
    # prefix is visible: both reduce to membership in the allowed states.
    missing = expected - observed
    extra = observed - expected
    assert observed in allowed, (
        "recovered base state is not acked-state + an in-flight prefix:\n"
        f"  missing vs acked state: {sorted(map(str, missing))}\n"
        f"  extra vs acked state:   {sorted(map(str, extra))}\n"
        f"  in-flight transactions: {len(report.inflight)}")

    # 3. Derived state is exactly the naive oracle rebuild.
    oracle = DeductiveDatabase.from_source(str(recovered.db))
    schema = recovered.db.schema
    for predicate in sorted(schema.derived):
        arity = schema.arity(predicate)
        variables = ", ".join(f"x{i}" for i in range(arity))
        goal = f"{predicate}({variables})" if arity else predicate
        assert recovered.query(goal) == oracle.query(goal), (
            f"derived predicate {predicate} diverges from the naive "
            f"rebuild after recovery")


def crash_and_recover(engine: DatabaseEngine, directory: Path | str,
                      **workload_kwargs) -> tuple[CrashReport, DatabaseEngine]:
    """Run a workload, then recover and check invariants.  Returns both.

    The caller arms the failpoint schedule first; this drives the engine,
    abandons it (crashed or not), re-opens the directory and asserts the
    invariants.  The recovered engine is returned for further probing --
    the caller closes it.
    """
    report = run_workload(engine, **workload_kwargs)
    faults.reset()  # the recovery path itself must run clean
    recovered = recover(directory)
    check_invariants(report, recovered)
    return report, recovered
