"""Unit tests for integrity checking (5.1.1) and the full-check baseline."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.events.events import Transaction, delete, insert, parse_transaction
from repro.problems import (
    StateError,
    check_restores_consistency,
    check_transaction,
    is_consistent,
)
from repro.problems.ic_checking import full_check


@pytest.fixture
def inconsistent_db(employment_db):
    db = employment_db.copy()
    db.remove_fact("U_benefit", "Dolors")
    return db


class TestIsConsistent:
    def test_consistent(self, employment_db):
        assert is_consistent(employment_db)

    def test_inconsistent(self, inconsistent_db):
        assert not is_consistent(inconsistent_db)

    def test_no_constraints_always_consistent(self, pqr_db):
        assert is_consistent(pqr_db)


class TestCheckTransaction:
    def test_violation_detected(self, employment_db):
        result = check_transaction(
            employment_db, parse_transaction("{delete U_benefit(Dolors)}"))
        assert not result.ok
        assert result.violated_constraints() == ("Ic1",)

    def test_benign_transaction_passes(self, employment_db):
        result = check_transaction(
            employment_db, parse_transaction("{insert Works(Maria)}"))
        assert result.ok
        assert not result.violations

    def test_compensated_transaction_passes(self, employment_db):
        result = check_transaction(employment_db, Transaction([
            delete("U_benefit", "Dolors"), insert("Works", "Dolors"),
        ]))
        assert result.ok

    def test_violation_with_witness(self):
        db = DeductiveDatabase.from_source("""
            Emp(A). Dept(A, Sales).
            Ic1(x) <- Emp(x) & not Dept(x, Sales).
        """)
        result = check_transaction(db, Transaction([insert("Emp", "B")]))
        assert not result.ok
        from repro.datalog.terms import Constant

        assert result.violations["Ic1"] == frozenset({(Constant("B"),)})

    def test_requires_consistent_state(self, inconsistent_db):
        with pytest.raises(StateError):
            check_transaction(inconsistent_db,
                              Transaction([insert("Works", "Maria")]))

    def test_str(self, employment_db):
        ok = check_transaction(employment_db, Transaction())
        assert str(ok) == "consistent"
        bad = check_transaction(
            employment_db, parse_transaction("{delete U_benefit(Dolors)}"))
        assert "Ic1" in str(bad)


class TestRestorationChecking:
    def test_restoring_transaction(self, inconsistent_db):
        result = check_restores_consistency(
            inconsistent_db, Transaction([insert("U_benefit", "Dolors")]))
        assert result.ok

    def test_non_restoring_transaction(self, inconsistent_db):
        result = check_restores_consistency(
            inconsistent_db, Transaction([insert("La", "Maria"),
                                          insert("Works", "Maria")]))
        assert not result.ok

    def test_requires_inconsistent_state(self, employment_db):
        with pytest.raises(StateError):
            check_restores_consistency(employment_db, Transaction())


class TestFullCheck:
    def test_consistent_empty(self, employment_db):
        assert full_check(employment_db) == {}

    def test_violations_listed(self, inconsistent_db):
        violations = full_check(inconsistent_db)
        assert set(violations) == {"Ic1"}
