"""Shared fixtures: the running example databases, plus fault hygiene."""

from __future__ import annotations

import pytest

from repro import faults
from repro.datalog import DeductiveDatabase


@pytest.fixture(autouse=True)
def _disarm_failpoints():
    """No test may leak armed failpoints (or an installed fault clock)."""
    yield
    faults.reset()
    faults.clock.install(faults.clock.Clock())


@pytest.fixture
def pqr_db() -> DeductiveDatabase:
    """The database of Examples 4.1 / 4.2: Q(A), Q(B), R(B), P = Q ∧ ¬R."""
    return DeductiveDatabase.from_source("""
        Q(A). Q(B). R(B).
        P(x) <- Q(x) & not R(x).
    """)


@pytest.fixture
def employment_db() -> DeductiveDatabase:
    """The database of Examples 5.1 / 5.2 / 5.3 (employment office)."""
    db = DeductiveDatabase.from_source("""
        La(Dolors). U_benefit(Dolors).
        Unemp(x) <- La(x) & not Works(x).
        Ic1 <- Unemp(x) & not U_benefit(x).
    """)
    db.declare_base("Works", 1)
    return db
