"""Tests for the execution-tracing subsystem (repro.obs)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import LATENCY_BUCKETS, LatencyHistogram
from repro.obs import tracer as obs
from repro.server.client import DatabaseClient
from repro.server.engine import DatabaseEngine
from repro.server.server import ServerThread


@pytest.fixture(autouse=True)
def _tracing_disabled():
    """Every test starts (and, via use(), ends) with tracing off."""
    previous = obs.disable()
    yield
    if previous is not None:
        obs.enable(previous)
    else:
        obs.disable()


class TestDisabledFastPath:
    def test_span_returns_the_shared_null_span(self):
        assert obs.span("eval.stratum") is obs.NULL_SPAN
        assert obs.span("anything.else") is obs.NULL_SPAN

    def test_current_span_is_null(self):
        assert obs.current_span() is obs.NULL_SPAN

    def test_null_span_absorbs_everything(self):
        with obs.span("x") as span:
            span.set(mode="ignored")
            span.add("rows", 7)
            obs.add("rows", 3)
        assert span is obs.NULL_SPAN
        assert span.to_dict() == {}

    def test_disabled_path_does_not_allocate_spans(self):
        # The whole point of NULL_SPAN: no Span/_SpanScope objects are
        # created while tracing is off, so hot loops can call span()
        # unconditionally.  Identity (is) proves no allocation happened.
        seen = {obs.span(f"s{i}") for i in range(100)}
        assert seen == {obs.NULL_SPAN}
        assert not obs.enabled()


class TestSpans:
    def test_nesting_attaches_children(self):
        with obs.use() as tracer:
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    inner.add("rows", 2)
                with obs.span("inner") as again:
                    again.add("rows", 3)
        assert [child.name for child in outer.children] == ["inner", "inner"]
        assert tracer.last_root is outer
        assert tracer.count("inner") == 2
        assert tracer.counter("inner", "rows") == 5

    def test_elapsed_is_measured(self):
        with obs.use():
            with obs.span("timed") as span:
                pass
        assert span.elapsed >= 0.0

    def test_add_reaches_the_innermost_open_span(self):
        with obs.use():
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    obs.add("hits")
        assert inner.counters == {"hits": 1}
        assert "hits" not in outer.counters

    def test_to_dict_shape(self):
        with obs.use():
            with obs.span("outer") as outer:
                outer.set(mode="hybrid")
                with obs.span("inner") as inner:
                    inner.add("rows", 4)
        payload = outer.to_dict()
        assert payload["name"] == "outer"
        assert payload["attributes"] == {"mode": "hybrid"}
        assert payload["children"][0]["counters"] == {"rows": 4}

    def test_format_span_renders_the_tree(self):
        with obs.use() as tracer:
            with obs.span("outer"):
                with obs.span("inner") as inner:
                    inner.add("rows", 4)
        rendered = obs.format_span(tracer.last_root)
        assert "outer" in rendered and "inner" in rendered
        assert "rows=4" in rendered

    def test_use_restores_the_previous_tracer(self):
        installed = obs.enable()
        with obs.use() as scoped:
            assert obs.get_tracer() is scoped
        assert obs.get_tracer() is installed
        obs.disable()


class TestConcurrentWriters:
    def test_threads_nest_independently(self):
        """Two threads' span stacks never interleave (context isolation)."""
        barrier = threading.Barrier(2)
        roots: dict[str, obs.Span] = {}
        errors: list[BaseException] = []

        def worker(name: str) -> None:
            try:
                with obs.span(f"root.{name}") as root:
                    barrier.wait(timeout=5)  # both roots open at once
                    with obs.span(f"child.{name}") as child:
                        child.add("rows", 1)
                    barrier.wait(timeout=5)
                roots[name] = root
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        with obs.use() as tracer:
            threads = [threading.Thread(target=worker, args=(n,))
                       for n in ("a", "b")]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
        assert not errors
        assert [c.name for c in roots["a"].children] == ["child.a"]
        assert [c.name for c in roots["b"].children] == ["child.b"]
        assert tracer.count("root.a") == tracer.count("root.b") == 1

    def test_aggregates_sum_across_threads(self):
        def worker() -> None:
            for _ in range(10):
                with obs.span("work") as span:
                    span.add("rows", 2)

        with obs.use() as tracer:
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
        assert tracer.count("work") == 40
        assert tracer.counter("work", "rows") == 80


class TestAggregates:
    def test_aggregates_payload_shape(self):
        with obs.use() as tracer:
            with obs.span("stage") as span:
                span.add("rows", 3)
        payload = tracer.aggregates()
        assert payload["bucket_bounds"] == list(LATENCY_BUCKETS)
        stage = payload["spans"]["stage"]
        assert stage["count"] == 1
        assert stage["counters"] == {"rows": 3}
        assert len(stage["buckets"]) == len(LATENCY_BUCKETS) + 1
        assert sum(stage["buckets"]) == 1

    def test_reset_clears_everything(self):
        with obs.use() as tracer:
            with obs.span("stage"):
                pass
            tracer.reset()
            assert tracer.aggregates()["spans"] == {}
            assert tracer.last_root is None


class TestHistogramRoundTrip:
    def test_histogram_buckets_round_trip(self):
        original = LatencyHistogram()
        for seconds in (0.0002, 0.0002, 0.003, 0.08, 2.0, 42.0):
            original.observe(seconds)
        rebuilt = LatencyHistogram.from_dict(original.to_dict(buckets=True))
        assert rebuilt.bucket_counts() == original.bucket_counts()
        assert rebuilt.count == original.count
        assert rebuilt.max_seconds == original.max_seconds
        for q in (0.5, 0.95, 0.99):
            assert rebuilt.quantile(q) == original.quantile(q)

    def test_bucket_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict({"buckets": [1, 2, 3]})

    def test_bucketless_round_trip_preserves_quantiles(self):
        """The compact (bucket-less) wire shape must not collapse quantiles.

        Regression: rebuilding from a payload without ``buckets`` left the
        counts empty, so every quantile fell through to ``max_seconds`` --
        p50 of 0.001/0.01/0.1 came back as 0.1 instead of 0.01.
        """
        original = LatencyHistogram()
        for seconds in (0.001, 0.01, 0.1):
            original.observe(seconds)
        assert original.quantile(0.5) == 0.01
        rebuilt = LatencyHistogram.from_dict(original.to_dict())
        assert rebuilt.count == original.count
        assert rebuilt.max_seconds == original.max_seconds
        for q in (0.5, 0.95, 0.99):
            assert rebuilt.quantile(q) == original.quantile(q)
        assert rebuilt.to_dict() == original.to_dict()

    def test_fresh_observation_drops_carried_quantiles(self):
        original = LatencyHistogram()
        for seconds in (0.001, 0.01, 0.1):
            original.observe(seconds)
        rebuilt = LatencyHistogram.from_dict(original.to_dict())
        rebuilt.observe(5.0)
        # Carried quantiles describe only the pre-wire observations; after
        # a fresh observe() the buckets (holding just that one sample) win.
        assert rebuilt.quantile(0.5) == 5.0

    def test_metrics_snapshot_ships_buckets(self):
        from repro.server.metrics import MetricsRegistry

        registry = MetricsRegistry()
        for seconds in (0.001, 0.01, 0.1):
            registry.observe("query", seconds)
        payload = registry.snapshot()["requests"]["query"]
        assert sum(payload["buckets"]) == 3
        rebuilt = LatencyHistogram.from_dict(payload)
        assert rebuilt.quantile(0.5) == 0.01

    def test_stats_histograms_round_trip_through_client(self, tmp_path,
                                                        employment_db):
        """Server-side span histograms survive the wire bucket-for-bucket."""
        engine = DatabaseEngine.open(tmp_path / "d", initial=employment_db)
        try:
            with obs.use() as tracer:
                with ServerThread(engine) as port:
                    with DatabaseClient(port=port) as client:
                        client.query("Unemp(x)")
                        client.commit("insert Works(Maria)")
                        stats = client.stats()
                tracing = stats["tracing"]
                assert tracing["bucket_bounds"] == list(LATENCY_BUCKETS)
                assert "request.query" in tracing["spans"]
                assert "eval.stratum" in tracing["spans"]
                local = tracer.aggregates()["spans"]
                for name, payload in tracing["spans"].items():
                    rebuilt = LatencyHistogram.from_dict(payload)
                    # stats ran before use() exited, so the local tracer
                    # saw at least as many spans as the wire snapshot.
                    assert rebuilt.count <= local[name]["count"]
                    assert len(rebuilt.bucket_counts()) == \
                        len(LATENCY_BUCKETS) + 1
        finally:
            engine.close(checkpoint=False)
