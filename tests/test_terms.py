"""Unit tests for repro.datalog.terms."""

import pytest

from repro.datalog.terms import (
    Constant,
    Variable,
    const,
    is_constant,
    is_variable,
    term_from_name,
    var,
)


class TestVariable:
    def test_str(self):
        assert str(Variable("x")) == "x"

    def test_equality_is_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_repr_round_trips_name(self):
        assert "x" in repr(Variable("x"))


class TestConstant:
    def test_str_payloads(self):
        assert str(Constant("Dolors")) == "Dolors"
        assert str(Constant(42)) == "42"

    def test_equality_distinguishes_types(self):
        assert Constant(1) != Constant("1")

    def test_hashable(self):
        assert len({Constant("A"), Constant("A"), Constant("B")}) == 2

    def test_constant_not_equal_to_variable(self):
        assert Constant("x") != Variable("x")


class TestNamingConvention:
    def test_capitalised_is_constant(self):
        assert term_from_name("Dolors") == Constant("Dolors")

    def test_lower_case_is_variable(self):
        assert term_from_name("x") == Variable("x")

    def test_underscore_is_variable(self):
        assert is_variable(term_from_name("_tmp"))

    def test_digits_become_int_constant(self):
        assert term_from_name("42") == Constant(42)

    def test_negative_int(self):
        assert term_from_name("-7") == Constant(-7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            term_from_name("")


class TestHelpers:
    def test_var_and_const(self):
        assert var("x") == Variable("x")
        assert const("A") == Constant("A")

    def test_predicates(self):
        assert is_variable(var("x")) and not is_constant(var("x"))
        assert is_constant(const(1)) and not is_variable(const(1))
