"""Unit tests for condition monitoring (5.1.2) and view maintenance (5.1.3)."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import UnknownPredicateError
from repro.datalog.terms import Constant
from repro.events.events import Transaction, delete, insert
from repro.problems import monitor_conditions, view_maintenance_deltas


@pytest.fixture
def watched_db():
    return DeductiveDatabase.from_source("""
        Temp(Room1, High). Temp(Room2, Low).
        Alarm(x) <- Temp(x, High) & not Muted(x).
        Normal(x) <- Temp(x, Low).
    """)


class TestConditionMonitoring:
    def test_activation(self, watched_db):
        changes = monitor_conditions(
            watched_db, Transaction([insert("Temp", "Room2", "High")]),
            ["Alarm"])
        assert changes.activated["Alarm"] == {(Constant("Room2"),)}
        assert not changes.deactivated

    def test_deactivation(self, watched_db):
        watched_db.declare_base("Muted", 1)
        changes = monitor_conditions(
            watched_db, Transaction([insert("Muted", "Room1")]), ["Alarm"])
        assert changes.deactivated["Alarm"] == {(Constant("Room1"),)}

    def test_unaffected(self, watched_db):
        changes = monitor_conditions(
            watched_db, Transaction([insert("Temp", "Room3", "Low")]),
            ["Alarm", "Normal"])
        assert changes.is_unaffected("Alarm")
        assert not changes.is_unaffected()  # Normal changed

    def test_multiple_conditions(self, watched_db):
        changes = monitor_conditions(
            watched_db,
            Transaction([insert("Temp", "Room3", "Low"),
                         insert("Temp", "Room4", "High")]),
            ["Alarm", "Normal"])
        assert set(changes.activated) == {"Alarm", "Normal"}

    def test_unknown_condition_rejected(self, watched_db):
        with pytest.raises(UnknownPredicateError):
            monitor_conditions(watched_db, Transaction(), ["Temp"])

    def test_str(self, watched_db):
        changes = monitor_conditions(
            watched_db, Transaction([insert("Temp", "Room2", "High")]),
            ["Alarm"])
        assert "+Alarm" in str(changes)


class TestViewMaintenance:
    def test_insert_delta(self, watched_db):
        deltas = view_maintenance_deltas(
            watched_db, Transaction([insert("Temp", "Room2", "High")]),
            ["Alarm"])
        assert deltas.to_insert["Alarm"] == {(Constant("Room2"),)}
        assert deltas.delta_size() == 1

    def test_delete_delta(self, watched_db):
        deltas = view_maintenance_deltas(
            watched_db, Transaction([delete("Temp", "Room1", "High")]),
            ["Alarm"])
        assert deltas.to_delete["Alarm"] == {(Constant("Room1"),)}

    def test_unaffected_view(self, watched_db):
        deltas = view_maintenance_deltas(
            watched_db, Transaction([insert("Temp", "Room9", "Mid")]),
            ["Alarm", "Normal"])
        assert deltas.is_unaffected()
        assert deltas.is_unaffected("Alarm")

    def test_unknown_view_rejected(self, watched_db):
        with pytest.raises(UnknownPredicateError):
            view_maintenance_deltas(watched_db, Transaction(), ["Nope"])

    def test_deltas_match_recomputation(self, watched_db):
        from repro.datalog.evaluation import BottomUpEvaluator

        transaction = Transaction([
            insert("Temp", "Room2", "High"),
            delete("Temp", "Room1", "High"),
        ])
        deltas = view_maintenance_deltas(watched_db, transaction, ["Alarm"])
        before = BottomUpEvaluator(
            watched_db, watched_db.all_rules()).extension("Alarm")
        new_db = transaction.apply_to(watched_db)
        after = BottomUpEvaluator(new_db, new_db.all_rules()).extension("Alarm")
        maintained = (before | deltas.to_insert.get("Alarm", frozenset())) \
            - deltas.to_delete.get("Alarm", frozenset())
        assert maintained == after
