"""Property-based tests (hypothesis) for the core invariants.

The headline property is the one the whole framework stands on: the upward
interpretation (both strategies, simplified or not) computes exactly the
events defined by (1)/(2) -- i.e. it agrees with materialise-and-diff -- on
arbitrary databases and transactions.  Alongside it: downward soundness
(every translation achieves its request), the boolean algebra of the DNF
layer, and round-trips of the concrete syntax.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.datalog import DeductiveDatabase
from repro.datalog.parser import parse_rule
from repro.datalog.rules import Atom, Literal
from repro.datalog.terms import Constant
from repro.events.dnf import Dnf, FALSE_DNF, TRUE_DNF
from repro.events.events import Event, Transaction, parse_transaction
from repro.events.naming import EventKind
from repro.interpretations import (
    DownwardInterpreter,
    UpwardInterpreter,
    UpwardOptions,
    naive_changes,
    want_delete,
    want_insert,
)

CONSTANTS = ["C0", "C1", "C2", "C3"]

#: Rule pool: every shape is allowed and stratifiable, over base B1/B2 and
#: derived V1 (first group) and V2 (second group, may use V1).
V1_RULES = [
    "V1(x) <- B1(x).",
    "V1(x) <- B1(x) & not B2(x, x).",
    "V1(x) <- B2(x, y).",
    "V1(x) <- B2(y, x) & B1(y).",
    "V1(x) <- B2(x, y) & not B1(y).",
]
V2_RULES = [
    "V2(x) <- V1(x) & B1(x).",
    "V2(x) <- B1(x) & not V1(x).",
    "V2(x) <- B2(x, y) & V1(y).",
    "V2(x) <- V1(x) & not B2(x, x).",
]
V3_RULES = [
    "V3(x) <- V2(x) & not V1(x).",
    "V3(x) <- V1(x) & V2(x).",
    "V3(x) <- B2(y, x) & not V2(y).",
    "V3(x, y) <- B2(x, y) & V1(x) & x != y.",
]


@st.composite
def databases(draw):
    """A small random database over B1/1, B2/2 with one or two views."""
    db = DeductiveDatabase()
    db.declare_base("B1", 1)
    db.declare_base("B2", 2)
    for constant in draw(st.sets(st.sampled_from(CONSTANTS), max_size=4)):
        db.add_fact("B1", constant)
    pairs = st.tuples(st.sampled_from(CONSTANTS), st.sampled_from(CONSTANTS))
    for pair in draw(st.sets(pairs, max_size=6)):
        db.add_fact("B2", *pair)
    for source in draw(st.sets(st.sampled_from(V1_RULES), min_size=1, max_size=3)):
        db.add_rule(parse_rule(source))
    for source in draw(st.sets(st.sampled_from(V2_RULES), max_size=2)):
        db.add_rule(parse_rule(source))
    v3_pool = [r for r in draw(st.sets(st.sampled_from(V3_RULES), max_size=2))]
    arities = {parse_rule(r).head.arity for r in v3_pool}
    if len(arities) <= 1:  # avoid mixed-arity V3 definitions
        has_v2 = any(r.head.predicate == "V2" for r in db.rules)
        for source in v3_pool:
            if "V2" in source and not has_v2:
                continue
            db.add_rule(parse_rule(source))
    return db


@st.composite
def transactions(draw):
    """A well-formed random transaction over B1/B2."""
    events: dict[tuple, Event] = {}
    n = draw(st.integers(min_value=0, max_value=4))
    for _ in range(n):
        kind = draw(st.sampled_from([EventKind.INSERTION, EventKind.DELETION]))
        if draw(st.booleans()):
            predicate, args = "B1", (draw(st.sampled_from(CONSTANTS)),)
        else:
            predicate = "B2"
            args = (draw(st.sampled_from(CONSTANTS)),
                    draw(st.sampled_from(CONSTANTS)))
        key = (predicate, tuple(args))
        if key not in events:
            events[key] = Event(kind, predicate,
                                tuple(Constant(a) for a in args))
    return Transaction(events.values())


class TestUpwardAgreesWithOracle:
    @given(db=databases(), transaction=transactions(),
           strategy=st.sampled_from(["hybrid", "flat"]),
           simplify=st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_upward_equals_naive_diff(self, db, transaction, strategy, simplify):
        interpreter = UpwardInterpreter(
            db, simplify=simplify, options=UpwardOptions(strategy=strategy))
        result = interpreter.interpret(transaction)
        oracle = naive_changes(db, transaction)
        assert result.insertions == oracle.insertions
        assert result.deletions == oracle.deletions

    @given(db=databases(), transaction=transactions())
    @settings(max_examples=60, deadline=None)
    def test_events_are_disjoint_from_old_state(self, db, transaction):
        """(1)/(2): ιP rows were false before, δP rows were true before."""
        interpreter = UpwardInterpreter(db)
        result = interpreter.interpret(transaction)
        for predicate, rows in result.insertions.items():
            assert rows.isdisjoint(interpreter.old_extension(predicate))
        for predicate, rows in result.deletions.items():
            assert rows <= interpreter.old_extension(predicate)

    @given(db=databases(), transaction=transactions())
    @settings(max_examples=60, deadline=None)
    def test_empty_transaction_induces_nothing(self, db, transaction):
        result = UpwardInterpreter(db).interpret(Transaction())
        assert result.is_empty()


class TestCountingAgreesWithOracle:
    @given(db=databases(), seeds=st.lists(st.integers(0, 10_000),
                                          min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_counting_sequence(self, db, seeds):
        """The counting engine tracks the oracle across whole sequences."""
        from repro.interpretations.counting import CountingEngine
        from repro.workloads import random_transaction

        if not db.base_predicates_with_facts():
            return
        engine = CountingEngine(db)
        for seed in seeds:
            if not db.base_predicates_with_facts():
                break  # earlier transactions may have emptied the database
            transaction = random_transaction(db, n_events=2, seed=seed)
            expected = naive_changes(db, transaction)
            result = engine.apply(transaction)  # also applies to db
            assert result.insertions == expected.insertions
            assert result.deletions == expected.deletions


class TestDownwardSoundness:
    @given(db=databases(),
           kind=st.sampled_from(["ins", "del"]),
           constant=st.sampled_from(CONSTANTS))
    @settings(max_examples=80, deadline=None)
    def test_translations_achieve_request(self, db, kind, constant):
        view = "V1"
        request = want_insert(view, constant) if kind == "ins" \
            else want_delete(view, constant)
        result = DownwardInterpreter(db).interpret(request)
        if result.already_satisfied:
            # Footnote 1: the requested change already holds; the (empty)
            # translation is "do nothing" and induces nothing.
            return
        row = (Constant(constant),)
        for translation in result.translations:
            induced = naive_changes(db, translation.transaction)
            achieved = induced.insertions_of(view) if kind == "ins" \
                else induced.deletions_of(view)
            assert row in achieved

    @given(db=databases(), constant=st.sampled_from(CONSTANTS))
    @settings(max_examples=50, deadline=None)
    def test_already_satisfied_requests_are_true(self, db, constant):
        from repro.datalog.evaluation import BottomUpEvaluator

        evaluator = BottomUpEvaluator(db, db.all_rules())
        row = (Constant(constant),)
        if row in evaluator.extension("V1"):
            result = DownwardInterpreter(db).interpret(
                want_insert("V1", constant))
            assert result.dnf.is_true


#: Positive-only rule pool for the magic-sets property (its fragment).
_POSITIVE_V1 = [
    "V1(x) <- B1(x).",
    "V1(x) <- B2(x, y).",
    "V1(x) <- B2(y, x) & B1(y).",
]
_POSITIVE_V2 = [
    "V2(x) <- V1(x) & B1(x).",
    "V2(x) <- B2(x, y) & V1(y).",
    "V2(x) <- V1(x).",
]


@st.composite
def positive_databases(draw):
    db = DeductiveDatabase()
    db.declare_base("B1", 1)
    db.declare_base("B2", 2)
    for constant in draw(st.sets(st.sampled_from(CONSTANTS), max_size=4)):
        db.add_fact("B1", constant)
    pairs = st.tuples(st.sampled_from(CONSTANTS), st.sampled_from(CONSTANTS))
    for pair in draw(st.sets(pairs, max_size=6)):
        db.add_fact("B2", *pair)
    for source in draw(st.sets(st.sampled_from(_POSITIVE_V1),
                               min_size=1, max_size=3)):
        db.add_rule(parse_rule(source))
    for source in draw(st.sets(st.sampled_from(_POSITIVE_V2), max_size=2)):
        db.add_rule(parse_rule(source))
    return db


class TestMagicEquivalence:
    @given(db=positive_databases(),
           view=st.sampled_from(["V1", "V2"]),
           constant=st.sampled_from(CONSTANTS + [None]))
    @settings(max_examples=80, deadline=None)
    def test_magic_matches_full_evaluation(self, db, view, constant):
        from repro.datalog.evaluation import BottomUpEvaluator
        from repro.datalog.magic import magic_answers
        from repro.datalog.parser import parse_atom

        if view == "V2" and not any(r.head.predicate == "V2"
                                    for r in db.rules):
            return
        goal = parse_atom(f"{view}({constant})" if constant else f"{view}(x)")
        full = BottomUpEvaluator(db, db.all_rules())
        expected = {
            row for row in full.extension(view)
            if constant is None or row[0] == Constant(constant)
        }
        assert magic_answers(db, db.all_rules(), goal) == expected


def _truth_assignments(literal_pool):
    atoms = sorted({l.atom for l in literal_pool}, key=str)
    for bits in itertools.product([False, True], repeat=len(atoms)):
        yield dict(zip(atoms, bits))


def _eval_dnf(dnf, assignment):
    if dnf.is_true:
        return True
    return any(
        all(assignment[l.atom] == l.positive for l in conjunct)
        for conjunct in dnf.disjuncts
    )


_LITERAL_POOL = [
    Literal(Atom("ins$A", (Constant("X"),)), True),
    Literal(Atom("ins$A", (Constant("X"),)), False),
    Literal(Atom("del$B", (Constant("Y"),)), True),
    Literal(Atom("del$B", (Constant("Y"),)), False),
    Literal(Atom("ins$C"), True),
    Literal(Atom("ins$C"), False),
]

_dnfs = st.builds(
    Dnf.of_disjuncts,
    st.lists(st.lists(st.sampled_from(_LITERAL_POOL), min_size=1, max_size=3),
             max_size=4),
)


class TestDnfAlgebra:
    @given(a=_dnfs, b=_dnfs)
    @settings(max_examples=150, deadline=None)
    def test_conjunction_semantics(self, a, b):
        combined = a.and_(b)
        for assignment in _truth_assignments(_LITERAL_POOL):
            expected = _eval_dnf(a, assignment) and _eval_dnf(b, assignment)
            assert _eval_dnf(combined, assignment) == expected

    @given(a=_dnfs, b=_dnfs)
    @settings(max_examples=150, deadline=None)
    def test_disjunction_semantics(self, a, b):
        combined = a.or_(b)
        for assignment in _truth_assignments(_LITERAL_POOL):
            expected = _eval_dnf(a, assignment) or _eval_dnf(b, assignment)
            assert _eval_dnf(combined, assignment) == expected

    @given(a=_dnfs)
    @settings(max_examples=150, deadline=None)
    def test_negation_semantics(self, a):
        negated = a.negated()
        for assignment in _truth_assignments(_LITERAL_POOL):
            assert _eval_dnf(negated, assignment) == (not _eval_dnf(a, assignment))

    @given(a=_dnfs)
    @settings(max_examples=100, deadline=None)
    def test_simplified_preserves_semantics(self, a):
        simplified = a.simplified(subsume=True)
        for assignment in _truth_assignments(_LITERAL_POOL):
            assert _eval_dnf(simplified, assignment) == _eval_dnf(a, assignment)

    @given(a=_dnfs)
    @settings(max_examples=60, deadline=None)
    def test_identities(self, a):
        assert a.and_(TRUE_DNF) == a.simplified()
        assert a.and_(FALSE_DNF).is_false
        assert a.or_(FALSE_DNF) == a.simplified()


class TestRoundTrips:
    @given(db=databases())
    @settings(max_examples=60, deadline=None)
    def test_database_source_round_trip(self, db):
        again = DeductiveDatabase.from_source(str(db))
        assert set(again.iter_facts()) == set(db.iter_facts())
        assert set(map(str, again.rules)) == set(map(str, db.rules))

    @given(transaction=transactions())
    @settings(max_examples=80, deadline=None)
    def test_transaction_string_round_trip(self, transaction):
        assert parse_transaction(str(transaction)) == transaction

    @given(db=databases(), transaction=transactions())
    @settings(max_examples=60, deadline=None)
    def test_normalization_preserves_transition(self, db, transaction):
        """Applying T and applying normalise(T) give the same new state."""
        direct = transaction.apply_to(db)
        normalized = transaction.normalized(db).apply_to(db)
        assert set(direct.iter_facts()) == set(normalized.iter_facts())


class TestUpwardDownwardRoundTrip:
    @given(db=databases(),
           kind=st.sampled_from(["ins", "del"]),
           view=st.sampled_from(["V1", "V2"]),
           constant=st.sampled_from(CONSTANTS))
    @settings(max_examples=80, deadline=None)
    def test_upward_confirms_every_translation(self, db, kind, view, constant):
        """upward ∘ downward: each translation's induced events contain the
        requested one, and applying it really flips the view row."""
        from repro.datalog.evaluation import BottomUpEvaluator

        if not any(r.head.predicate == view for r in db.rules):
            return
        request = want_insert(view, constant) if kind == "ins" \
            else want_delete(view, constant)
        result = DownwardInterpreter(db).interpret(request)
        if result.already_satisfied:
            return
        row = (Constant(constant),)
        interpreter = UpwardInterpreter(db)
        for translation in result.translations:
            induced = interpreter.interpret(translation.transaction)
            achieved = induced.insertions.get(view, frozenset()) \
                if kind == "ins" else induced.deletions.get(view, frozenset())
            assert row in achieved
            new_db = translation.transaction.apply_to(db)
            holds_after = row in BottomUpEvaluator(
                new_db, new_db.all_rules()).extension(view)
            assert holds_after == (kind == "ins")


class TestEngineModeDifferential:
    """Advance ≡ invalidate ≡ counting ≡ interpreted-eval ≡ naive oracle.

    The delta-maintained serving cache must be observationally identical
    to the invalidate-everything baseline and to a from-scratch oracle,
    after every commit of a random workload -- the differential form of
    the cache-advance correctness argument.  The counting engine's
    *maintained extensions* (not just its query answers) are compared
    too: its per-tuple derivation counts must track the set semantics
    commit after commit, including through the negation in V2/V3.
    """

    @staticmethod
    def _derived_goals(db):
        goals = []
        for predicate in sorted(db.schema.derived):
            arity = db.schema.arity(predicate)
            variables = ", ".join(f"x{i}" for i in range(arity))
            goals.append(f"{predicate}({variables})" if arity else predicate)
        return goals

    @given(db=databases(), seeds=st.lists(st.integers(0, 10_000),
                                          min_size=1, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_modes_and_oracle_agree_after_every_commit(self, db, seeds):
        import tempfile

        from repro.server.engine import DatabaseEngine
        from repro.workloads import random_transaction

        if not db.base_predicates_with_facts():
            return
        goals = self._derived_goals(db)
        with tempfile.TemporaryDirectory() as scratch:
            advance = DatabaseEngine.open(
                f"{scratch}/a", initial=db, cache_mode="advance")
            invalidate = DatabaseEngine.open(
                f"{scratch}/i", initial=db, cache_mode="invalidate")
            counting = DatabaseEngine.open(
                f"{scratch}/c", initial=db, cache_mode="counting")
            # Same workload through the tuple-at-a-time evaluator: the
            # compiled engine (the default of the three above) must be
            # observationally identical to it after every commit.
            interpreted = DatabaseEngine.open(
                f"{scratch}/e", initial=db, cache_mode="advance",
                eval_engine="interpreted")
            oracle = db.copy()
            try:
                for seed in seeds:
                    if not advance.db.base_predicates_with_facts():
                        break
                    transaction = random_transaction(
                        advance.db, n_events=2, seed=seed)
                    # The upward probe also warms the interpreters, so the
                    # advance engine really maintains (not just drops) its
                    # derived-state caches across the commit below.
                    up_advance = advance.upward(transaction)
                    up_invalidate = invalidate.upward(transaction)
                    up_interpreted = interpreted.upward(transaction)
                    expected = naive_changes(oracle, transaction)
                    assert up_advance.insertions == expected.insertions
                    assert up_advance.deletions == expected.deletions
                    assert up_invalidate.insertions == expected.insertions
                    assert up_invalidate.deletions == expected.deletions
                    assert up_interpreted.insertions == expected.insertions
                    assert up_interpreted.deletions == expected.deletions

                    assert advance.commit(transaction).applied
                    assert invalidate.commit(transaction).applied
                    assert counting.commit(transaction).applied
                    assert interpreted.commit(transaction).applied
                    oracle = transaction.apply_to(oracle)

                    assert set(advance.db.iter_facts()) \
                        == set(invalidate.db.iter_facts()) \
                        == set(counting.db.iter_facts()) \
                        == set(interpreted.db.iter_facts()) \
                        == set(oracle.iter_facts())
                    for goal, predicate in zip(goals,
                                               sorted(db.schema.derived)):
                        answers = oracle.query(goal)
                        assert advance.query(goal) == answers
                        assert invalidate.query(goal) == answers
                        assert counting.query(goal) == answers
                        assert interpreted.query(goal) == answers
                        # Counting-vs-naive differential: the maintained
                        # extension itself, not a fresh evaluation.
                        extension = {
                            tuple(constant.value for constant in row)
                            for row in counting.maintainer.extension(
                                predicate)}
                        assert extension == set(map(tuple, answers)), (
                            f"counting extension of {predicate} diverged "
                            f"after commit")
            finally:
                advance.close()
                invalidate.close()
                counting.close()
                interpreted.close()


_CONTRADICTION_NOTE = """
The transaction strategy already avoids inserting and deleting the same
fact, matching the paper's well-formedness requirement on T.
"""
