"""Unit tests for the bottom-up evaluator."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import SafetyError
from repro.datalog.evaluation import BottomUpEvaluator, ExtensionalStore
from repro.datalog.parser import parse_atom, parse_literal
from repro.datalog.terms import Constant


def rows(*names):
    return {tuple(Constant(n) for n in (name if isinstance(name, tuple) else (name,)))
            for name in names}


def evaluator_for(source, semi_naive=True):
    db = DeductiveDatabase.from_source(source)
    return BottomUpEvaluator(db, db.all_rules(), semi_naive=semi_naive)


class TestBasicDerivation:
    SOURCE = "Q(A). Q(B). R(B). P(x) <- Q(x) & not R(x)."

    @pytest.mark.parametrize("semi_naive", [True, False])
    def test_negation(self, semi_naive):
        ev = evaluator_for(self.SOURCE, semi_naive)
        assert ev.extension("P") == rows("A")

    def test_base_extension_passthrough(self):
        ev = evaluator_for(self.SOURCE)
        assert ev.extension("Q") == rows("A", "B")

    def test_unknown_predicate_is_empty(self):
        ev = evaluator_for(self.SOURCE)
        assert ev.extension("Nothing") == frozenset()

    def test_propositional_head(self):
        ev = evaluator_for("Q(A). P <- Q(x).")
        assert ev.extension("P") == {()}

    def test_join(self):
        ev = evaluator_for("E(A,B). E(B,C). J(x,z) <- E(x,y) & E(y,z).")
        assert ev.extension("J") == rows(("A", "C"))

    def test_constants_in_rule_body(self):
        ev = evaluator_for("Q(A). Q(B). P(x) <- Q(x) & Q(A).")
        assert ev.extension("P") == rows("A", "B")

    def test_repeated_variable_join(self):
        ev = evaluator_for("E(A,A). E(A,B). D(x) <- E(x,x).")
        assert ev.extension("D") == rows("A")


class TestRecursion:
    PATH = """
        Edge(A,B). Edge(B,C). Edge(C,D). Edge(D,B).
        Path(x,y) <- Edge(x,y).
        Path(x,y) <- Edge(x,z) & Path(z,y).
    """

    @pytest.mark.parametrize("semi_naive", [True, False])
    def test_transitive_closure_with_cycle(self, semi_naive):
        ev = evaluator_for(self.PATH, semi_naive)
        path = ev.extension("Path")
        assert (Constant("A"), Constant("D")) in path
        assert (Constant("B"), Constant("B")) in path  # via the cycle
        assert (Constant("B"), Constant("A")) not in path

    def test_naive_and_semi_naive_agree(self):
        naive = evaluator_for(self.PATH, semi_naive=False).extension("Path")
        semi = evaluator_for(self.PATH, semi_naive=True).extension("Path")
        assert naive == semi

    def test_semi_naive_does_less_work(self):
        chain = " ".join(f"Edge(N{i},N{i + 1})." for i in range(30))
        source = chain + """
            Path(x,y) <- Edge(x,y).
            Path(x,y) <- Edge(x,z) & Path(z,y).
        """
        naive = evaluator_for(source, semi_naive=False)
        semi = evaluator_for(source, semi_naive=True)
        naive.materialize()
        semi.materialize()
        assert naive.extension("Path") == semi.extension("Path")
        assert semi.stats.literals_matched < naive.stats.literals_matched

    def test_mutual_recursion(self):
        ev = evaluator_for("""
            N(Zero).
            Succ(Zero, One). Succ(One, Two). Succ(Two, Three).
            Even(x) <- N(x).
            Even(x) <- Succ(y, x) & Odd(y).
            Odd(x) <- Succ(y, x) & Even(y).
        """)
        assert ev.extension("Even") == rows("Zero", "Two")
        assert ev.extension("Odd") == rows("One", "Three")

    def test_stratified_negation_over_recursion(self):
        ev = evaluator_for(self.PATH + """
            Node(A). Node(B). Node(C). Node(D).
            Unreach(x,y) <- Node(x) & Node(y) & not Path(x,y).
        """)
        unreach = ev.extension("Unreach")
        assert (Constant("B"), Constant("A")) in unreach
        assert (Constant("A"), Constant("D")) not in unreach


class TestSolve:
    def test_solve_binds_variables(self):
        ev = evaluator_for("Q(A). Q(B). R(B). P(x) <- Q(x) & not R(x).")
        answers = ev.answers(parse_atom("P(x)"))
        assert len(answers) == 1

    def test_holds_ground(self):
        ev = evaluator_for("Q(A). P(x) <- Q(x).")
        assert ev.holds(parse_literal("P(A)"))
        assert not ev.holds(parse_literal("P(B)"))
        assert ev.holds(parse_literal("not P(B)"))

    def test_unsafe_negative_query_rejected(self):
        ev = evaluator_for("Q(A).")
        with pytest.raises(SafetyError):
            list(ev.solve([parse_literal("not Q(x)")]))

    def test_negative_delayed_until_ground(self):
        ev = evaluator_for("Q(A). Q(B). R(B).")
        answers = list(ev.solve([parse_literal("not R(x)"),
                                 parse_literal("Q(x)")]))
        assert len(answers) == 1

    def test_answers_deduplicated(self):
        ev = evaluator_for("Q(A). R(A). P(x) <- Q(x). P(x) <- R(x).")
        assert len(ev.answers(parse_atom("P(x)"))) == 1


class TestExtensionalStore:
    def test_add_and_discard(self):
        store = ExtensionalStore()
        row = (Constant("A"),)
        assert store.add("P", row)
        assert not store.add("P", row)
        assert store.facts_of("P") == {row}
        assert store.discard("P", row)
        assert not store.discard("P", row)

    def test_lookup_filters(self):
        store = ExtensionalStore({"P": {(Constant("A"), Constant("B")),
                                        (Constant("A"), Constant("C"))}})
        hits = list(store.lookup("P", (Constant("A"), Constant("C"))))
        assert hits == [(Constant("A"), Constant("C"))]

    def test_predicates(self):
        store = ExtensionalStore({"P": {(Constant("A"),)}, "Q": set()})
        assert store.predicates() == ["P"]


class TestStats:
    def test_counters_populated(self):
        ev = evaluator_for("Q(A). P(x) <- Q(x).")
        ev.materialize()
        assert ev.stats.rule_firings >= 1
        assert ev.stats.facts_derived == 1

    def test_merged_with(self):
        from repro.datalog.evaluation import EvaluationStats

        a = EvaluationStats(1, 2, 3, 4)
        b = EvaluationStats(10, 20, 30, 40)
        merged = a.merged_with(b)
        assert (merged.iterations, merged.rule_firings,
                merged.facts_derived, merged.literals_matched) == (11, 22, 33, 44)
