"""Tests for the asyncio TCP server and the blocking client.

Most tests host the server on a background thread inside this process; the
end-to-end test at the bottom drives the real ``repro serve`` command in a
subprocess and checks the full lifecycle the acceptance criteria describe:
serve, commit, check, monitor, stats, graceful shutdown, recovery.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import faults
from repro.core.durable import DurableDatabase
from repro.server import DatabaseClient, DatabaseEngine, ServerError, ServerThread
from repro.server.server import FP_PRE_DISPATCH, FP_SEND_FRAME
from repro.workloads import employment_database

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def connect_with_deadline(port: int, deadline: float = 10.0,
                          **client_kwargs) -> DatabaseClient:
    """Connect, retrying refusals and capacity errors until *deadline*.

    Slow CI boxes free connection slots (and bind listening sockets) on
    their own schedule; retrying against a deadline instead of sleeping a
    fixed amount is what keeps these tests honest there.  Waiting runs on
    the fault clock, so tests can virtualise it.
    """
    end = faults.clock.monotonic() + deadline
    last: Exception | None = None
    while True:
        try:
            return DatabaseClient(port=port, **client_kwargs)
        except ServerError as error:
            if error.type != "overloaded":
                raise
            last = error
        except (ConnectionError, socket.timeout) as error:
            last = error
        if faults.clock.monotonic() >= end:
            raise AssertionError(
                f"could not connect to port {port} within {deadline}s"
            ) from last
        faults.clock.sleep(0.02)


@pytest.fixture
def engine(tmp_path, employment_db):
    return DatabaseEngine.open(tmp_path / "d", initial=employment_db)


@pytest.fixture
def server(engine):
    thread = ServerThread(engine)
    port = thread.start()
    yield port
    thread.stop()


class TestClientServer:
    def test_handshake_and_ping(self, server):
        with DatabaseClient(port=server) as client:
            assert client.server_info["version"] == 1
            assert client.ping()

    def test_commit_query_roundtrip(self, server):
        with DatabaseClient(port=server) as client:
            result = client.commit("insert Works(Maria), insert La(Maria)")
            assert result["applied"]
            assert client.query("Works(x)") == [["Maria"]]

    def test_transaction_object_accepted(self, server):
        from repro.events.events import Transaction, insert

        with DatabaseClient(port=server) as client:
            result = client.commit(Transaction([insert("Works", "Zoe")]))
            assert result["applied"]

    def test_check_monitor_translate(self, server):
        with DatabaseClient(port=server) as client:
            assert not client.check("delete U_benefit(Dolors)")["ok"]
            changes = client.monitor("insert Works(Dolors)", ["Unemp"])
            assert changes["deactivated"]["Unemp"] == [["Dolors"]]
            result = client.translate("del Unemp(Dolors)")
            assert result["satisfiable"]

    def test_server_error_carries_wire_type(self, server):
        with DatabaseClient(port=server) as client:
            with pytest.raises(ServerError) as excinfo:
                client.call("commit", transaction="insert ((")
            assert excinfo.value.type == "parse"

    def test_session_survives_bad_requests(self, server):
        with DatabaseClient(port=server) as client:
            with pytest.raises(ServerError):
                client.call("no-such-op")
            assert client.ping()  # connection still usable

    def test_stats_count_requests(self, server):
        with DatabaseClient(port=server) as client:
            client.commit("insert Works(Maria)")
            client.query("Works(x)")
            stats = client.stats()
            assert stats["requests"]["commit"]["count"] >= 1
            assert stats["requests"]["query"]["count"] >= 1
            assert stats["counters"]["server.connections"] >= 1
            # Cache lifecycle state rides the same payload.
            assert stats["engine"]["cache_mode"] == "advance"
            assert isinstance(stats["engine"]["cache_epoch"], int)

    def test_two_clients_interleave(self, server):
        with DatabaseClient(port=server) as one, \
                DatabaseClient(port=server) as two:
            one.commit("insert Works(A1)")
            two.commit("insert Works(A2)")
            assert one.query("Works(x)") == [["A1"], ["A2"]]
            assert two.query("Works(x)") == [["A1"], ["A2"]]

    def test_concurrent_clients_no_lost_updates(self, tmp_path):
        import threading

        engine = DatabaseEngine.open(
            tmp_path / "many", initial=employment_database(10, seed=2))
        errors: list[BaseException] = []
        with ServerThread(engine) as port:
            def worker(index: int) -> None:
                try:
                    with DatabaseClient(port=port) as client:
                        for j in range(5):
                            client.commit(f"insert Works(C{index}_{j})")
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            with DatabaseClient(port=port) as client:
                assert client.stats()["engine"]["log_length"] == 30


class TestBackpressureAndTimeouts:
    def test_capacity_refusal(self, tmp_path, employment_db):
        engine = DatabaseEngine.open(tmp_path / "cap", initial=employment_db)
        with ServerThread(engine, max_connections=1) as port:
            with DatabaseClient(port=port) as first:
                assert first.ping()
                with pytest.raises(ServerError) as excinfo:
                    DatabaseClient(port=port)
                assert excinfo.value.type == "overloaded"
                assert excinfo.value.retry_after is not None
                assert excinfo.value.retry_after > 0
                assert engine.metrics.counter("server.shed") >= 1
            # Slot freed: a new connection succeeds (the server releases
            # it asynchronously, so retry against a deadline).
            with connect_with_deadline(port) as again:
                assert again.ping()

    def test_request_timeout(self, tmp_path, employment_db):
        # A one-shot sleep on the dispatch failpoint makes the first
        # request deterministically slower than the server timeout -- no
        # monkeypatching, and the delay is bounded instead of flaky.
        faults.arm(FP_PRE_DISPATCH, "sleep", param=0.5, times=1)
        engine = DatabaseEngine.open(tmp_path / "slow", initial=employment_db)
        with ServerThread(engine, request_timeout=0.05) as port:
            with DatabaseClient(port=port, handshake=False) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.query("Unemp(x)")
                assert excinfo.value.type == "timeout"


class TestSlowOpLog:
    def test_slow_ops_logged_and_counted(self, engine, caplog):
        import logging

        with ServerThread(engine, slow_op_threshold=0.0) as port:
            with caplog.at_level(logging.WARNING, logger="repro.server"):
                with DatabaseClient(port=port) as client:
                    client.query("Unemp(x)")
        assert engine.metrics.counter("server.slow_ops") >= 1
        messages = [r.getMessage() for r in caplog.records]
        assert any("slow op" in m and "query" in m for m in messages)

    def test_slow_op_log_includes_trace_when_enabled(self, engine, caplog):
        import logging

        from repro.obs import tracer as obs

        with obs.use():
            with ServerThread(engine, slow_op_threshold=0.0) as port:
                with caplog.at_level(logging.WARNING, logger="repro.server"):
                    with DatabaseClient(port=port, handshake=False) as client:
                        client.query("Unemp(x)")
        messages = [r.getMessage() for r in caplog.records]
        assert any("request.query" in m and "eval.materialize" in m
                   for m in messages)

    def test_fast_ops_not_logged_without_threshold(self, engine, caplog):
        import logging

        with ServerThread(engine) as port:
            with caplog.at_level(logging.WARNING, logger="repro.server"):
                with DatabaseClient(port=port) as client:
                    client.ping()
        assert engine.metrics.counter("server.slow_ops") == 0
        assert not [r for r in caplog.records if "slow op" in r.getMessage()]


class TestProtocolFaults:
    """The two protocol-layer failpoints: lost and torn response frames."""

    def test_dropped_ack_commit_still_durable(self, tmp_path, employment_db):
        """The classic crash-recovery trap: the commit is durable but the
        ack never reached the client.  Recovery must keep it."""
        directory = tmp_path / "d"
        engine = DatabaseEngine.open(directory, initial=employment_db)
        thread = ServerThread(engine, checkpoint_on_shutdown=False)
        port = thread.start()
        try:
            faults.arm(FP_SEND_FRAME, "drop", times=1)
            with DatabaseClient(port=port, handshake=False,
                                timeout=0.5) as client:
                with pytest.raises((TimeoutError, ConnectionError)):
                    client.commit("insert Works(Maria)")
        finally:
            thread.stop()
        recovered = DurableDatabase.open(directory)
        assert recovered.db.has_fact("Works", "Maria")

    def test_torn_frame_fails_the_client_not_the_server(self, tmp_path,
                                                        employment_db):
        from repro.server import protocol

        engine = DatabaseEngine.open(tmp_path / "d", initial=employment_db)
        with ServerThread(engine) as port:
            faults.arm(FP_SEND_FRAME, "torn", param=0.5, times=1)
            with DatabaseClient(port=port, handshake=False,
                                timeout=5.0) as client:
                with pytest.raises((protocol.ProtocolError, ConnectionError,
                                    ValueError)):
                    client.ping()
            # The server keeps serving fresh connections.
            with connect_with_deadline(port) as again:
                assert again.ping()


class TestShutdown:
    def test_shutdown_request_checkpoints_and_recovers(self, tmp_path,
                                                       employment_db):
        directory = tmp_path / "d"
        engine = DatabaseEngine.open(directory, initial=employment_db)
        thread = ServerThread(engine)
        port = thread.start()
        with DatabaseClient(port=port) as client:
            client.commit("insert Works(Maria)")
            assert client.shutdown()["shutting_down"]
        thread.stop()
        # Engine was closed with a checkpoint: the WAL is folded in.
        recovered = DurableDatabase.open(directory)
        assert recovered.db.has_fact("Works", "Maria")
        assert recovered.log_length() == 0


@pytest.mark.slow
class TestServeCommandEndToEnd:
    """The scripted acceptance run: real process, real sockets."""

    def test_serve_commit_monitor_stats_shutdown_recover(self, tmp_path):
        db_file = tmp_path / "db.dl"
        db_file.write_text("""
            La(Dolors). U_benefit(Dolors). Works(Pere). La(Pere).
            Unemp(x) <- La(x) & not Works(x).
            Ic1 <- Unemp(x) & not U_benefit(x).
        """)
        data_dir = tmp_path / "data"
        port_file = tmp_path / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(data_dir),
             "--init", str(db_file), "--port", "0",
             "--port-file", str(port_file)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if port_file.exists() and port_file.read_text().strip():
                    break
                assert process.poll() is None, (
                    f"server died early:\n"
                    f"{process.stdout.read().decode(errors='replace')}")
                time.sleep(0.05)
            port = int(port_file.read_text().strip())

            # The port file appears when the socket is bound, but a slow
            # box may still be a beat away from accepting: retry.
            with connect_with_deadline(port, deadline=30.0) as client:
                assert client.commit(
                    "insert Works(Maria), insert La(Maria)")["applied"]
                assert client.check("delete U_benefit(Dolors)")["ok"] is False
                monitored = client.monitor("delete Works(Pere)", ["Unemp"])
                assert monitored["activated"]["Unemp"] == [["Pere"]]
                stats = client.stats()
                assert stats["requests"]["commit"]["count"] > 0
                assert stats["requests"]["monitor"]["count"] > 0
                client.shutdown()
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait()

        # Reopening the data directory recovers the committed state.
        recovered = DurableDatabase.open(data_dir)
        assert recovered.db.has_fact("Works", "Maria")
        assert recovered.db.has_fact("La", "Maria")
        # Maria was committed as employed, so only Dolors stays unemployed.
        assert recovered.db.query("Unemp(x)") == [("Dolors",)]
