"""Tests for the command-line driver."""

import pytest

from repro.cli import main, parse_request
from repro.datalog.errors import DatalogError


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.dl"
    path.write_text("""
        La(Dolors). U_benefit(Dolors). Works(Pere). La(Pere).
        Unemp(x) <- La(x) & not Works(x).
        Ic1 <- Unemp(x) & not U_benefit(x).
    """)
    return str(path)


@pytest.fixture
def broken_db_file(tmp_path):
    path = tmp_path / "broken.dl"
    path.write_text("""
        La(Dolors).
        Unemp(x) <- La(x) & not Works(x).
        Ic1 <- Unemp(x) & not U_benefit(x).
    """)
    return str(path)


class TestParseRequest:
    def test_insert(self):
        literal = parse_request("ins P(A)")
        assert literal.predicate == "ins$P" and literal.positive

    def test_delete(self):
        literal = parse_request("del P(A, B)")
        assert literal.predicate == "del$P"

    def test_negative(self):
        literal = parse_request("not ins P(A)")
        assert not literal.positive

    def test_garbage(self):
        with pytest.raises(DatalogError):
            parse_request("upsert P(A)")


class TestCommands:
    def test_table(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        assert "View updating" in out

    def test_describe(self, db_file, capsys):
        assert main(["describe", db_file]) == 0
        out = capsys.readouterr().out
        assert "ιUnemp" in out and "Unempn" in out

    def test_upward(self, db_file, capsys):
        assert main(["upward", db_file, "-t", "delete Works(Pere)"]) == 0
        out = capsys.readouterr().out
        assert "ιUnemp(Pere)" in out

    def test_check_ok(self, db_file, capsys):
        assert main(["check", db_file, "-t", "insert Works(Dolors)"]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_check_violation_exit_code(self, db_file, capsys):
        assert main(["check", db_file,
                     "-t", "delete U_benefit(Dolors)"]) == 1
        assert "Ic1" in capsys.readouterr().out

    def test_translate(self, db_file, capsys):
        assert main(["translate", db_file, "-r", "del Unemp(Dolors)"]) == 0
        out = capsys.readouterr().out
        assert "δLa(Dolors)" in out and "ιWorks(Dolors)" in out

    def test_translate_request_set(self, db_file, capsys):
        code = main(["translate", db_file,
                     "-r", "del Unemp(Dolors)", "-r", "not ins Ic"])
        assert code == 0

    def test_translate_unsatisfiable(self, db_file, capsys):
        code = main(["translate", db_file,
                     "-r", "ins Unemp(Pere)", "-r", "not del Works(Pere)",
                     "-r", "not del La(Pere)"])
        # ιUnemp(Pere) needs δWorks(Pere), which is forbidden.
        assert code == 1
        assert "no translation" in capsys.readouterr().out

    def test_repair(self, broken_db_file, capsys):
        assert main(["repair", broken_db_file]) == 0
        assert "consistent after" in capsys.readouterr().out

    def test_monitor(self, db_file, capsys):
        assert main(["monitor", db_file, "-t", "delete Works(Pere)",
                     "-c", "Unemp"]) == 0
        assert "+Unemp(Pere)" in capsys.readouterr().out

    def test_error_reporting(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.dl")
        assert main(["describe", missing]) == 2
        assert "error:" in capsys.readouterr().err


class TestRepl:
    def _run(self, monkeypatch, capsys, db_file, lines):
        commands = iter(lines)

        def fake_input(prompt=""):
            try:
                return next(commands)
            except StopIteration:
                raise EOFError

        monkeypatch.setattr("builtins.input", fake_input)
        code = main(["repl", db_file])
        return code, capsys.readouterr().out

    def test_query_and_quit(self, monkeypatch, capsys, db_file):
        code, out = self._run(monkeypatch, capsys, db_file,
                              ["? Unemp(x)", "quit"])
        assert code == 0
        assert "Dolors" in out

    def test_apply_and_undo(self, monkeypatch, capsys, db_file):
        code, out = self._run(monkeypatch, capsys, db_file, [
            "+ Works(Maria)", "? Works(x)", "undo", "? Works(x)", "quit",
        ])
        assert code == 0
        assert out.count("Maria") >= 1
        # After undo, Maria is gone from the final query block.
        assert "undid" in out

    def test_rejects_violation(self, monkeypatch, capsys, db_file):
        code, out = self._run(monkeypatch, capsys, db_file, [
            "- U_benefit(Dolors)", "quit",
        ])
        assert "rejected" in out

    def test_translate_and_misc(self, monkeypatch, capsys, db_file):
        code, out = self._run(monkeypatch, capsys, db_file, [
            "help", "rules", "facts", "table",
            "translate del Unemp(Dolors)",
            "check delete U_benefit(Dolors)",
            "bogus-command",
            "quit",
        ])
        assert "commands:" in out
        assert "δLa(Dolors)" in out
        assert "violates Ic1" in out
        assert "unknown command" in out

    def test_parse_error_reported_not_fatal(self, monkeypatch, capsys, db_file):
        code, out = self._run(monkeypatch, capsys, db_file, [
            "? ((", "quit",
        ])
        assert code == 0
        assert "error:" in out


class TestJsonOutput:
    def test_upward_json(self, db_file, capsys):
        import json

        assert main(["upward", db_file, "-t", "delete Works(Pere)",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["insertions"]["Unemp"] == [["Pere"]]

    def test_translate_json(self, db_file, capsys):
        import json

        assert main(["translate", db_file, "-r", "del Unemp(Dolors)",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["satisfiable"] is True
        assert len(payload["translations"]) == 2

    def test_translate_json_unsatisfiable_exit_code(self, db_file, capsys):
        code = main(["translate", db_file,
                     "-r", "ins Unemp(Pere)", "-r", "not del Works(Pere)",
                     "-r", "not del La(Pere)", "--json"])
        assert code == 1


class TestCallCommand:
    """``repro call`` against a server hosted on a background thread."""

    @pytest.fixture
    def served(self, tmp_path, db_file):
        from pathlib import Path

        from repro.datalog import DeductiveDatabase
        from repro.server import DatabaseEngine, ServerThread

        initial = DeductiveDatabase.from_source(Path(db_file).read_text())
        engine = DatabaseEngine.open(tmp_path / "data", initial=initial)
        with ServerThread(engine) as port:
            yield port

    def _call(self, capsys, port, *argv):
        import json

        code = main(["call", "--port", str(port), *argv])
        out = capsys.readouterr().out
        return code, json.loads(out) if out.strip() else None

    def test_ping(self, served, capsys):
        code, payload = self._call(capsys, served, "ping")
        assert code == 0 and payload["pong"] is True

    def test_commit_then_query(self, served, capsys):
        code, payload = self._call(capsys, served, "commit",
                                   "insert Works(Maria)")
        assert code == 0 and payload["applied"] is True
        code, payload = self._call(capsys, served, "query", "Works(x)")
        assert code == 0
        assert ["Maria"] in payload["answers"]

    def test_commit_violation_exit_code(self, served, capsys):
        code, payload = self._call(capsys, served, "commit",
                                   "delete U_benefit(Dolors)")
        assert code == 1
        assert payload["applied"] is False

    def test_check_exit_code_mirrors_consistency(self, served, capsys):
        code, payload = self._call(capsys, served, "check",
                                   "delete U_benefit(Dolors)")
        assert code == 1 and payload["ok"] is False
        code, payload = self._call(capsys, served, "check",
                                   "insert Works(Maria)")
        assert code == 0 and payload["ok"] is True

    def test_monitor_requires_conditions(self, served, capsys):
        code, payload = self._call(capsys, served, "monitor",
                                   "delete Works(Pere)", "-c", "Unemp")
        assert code == 0
        assert payload["activated"]["Unemp"] == [["Pere"]]

    def test_downward_requests(self, served, capsys):
        code, payload = self._call(capsys, served, "downward",
                                   "del Unemp(Dolors)")
        assert code == 0 and payload["satisfiable"] is True

    def test_downward_trailing_semicolon_ignored(self, served, capsys):
        # 'del X;' must not send an empty request to the server.
        code, payload = self._call(capsys, served, "downward",
                                   "del Unemp(Dolors); ")
        assert code == 0 and payload["satisfiable"] is True

    def test_stats(self, served, capsys):
        self._call(capsys, served, "ping")
        code, payload = self._call(capsys, served, "stats")
        assert code == 0
        assert payload["engine"]["facts"] >= 4
        assert payload["requests"]["ping"]["count"] >= 1

    def test_server_error_reported(self, served, capsys):
        code = main(["call", "--port", str(served), "commit", "insert (("])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_connection_refused_reported(self, capsys):
        # Nothing listens on this port (bind-then-close frees it).
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        code = main(["call", "--port", str(free_port), "ping"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestTraceCommand:
    """``repro trace``: local execution with a per-stage span breakdown."""

    def test_trace_upward_shows_stage_timings(self, db_file, capsys):
        assert main(["trace", "upward", db_file,
                     "-t", "delete Works(Pere)"]) == 0
        out = capsys.readouterr().out
        assert "ιUnemp(Pere)" in out
        for stage in ("request.upward", "upward.interpret",
                      "eval.materialize", "eval.stratum", "ms"):
            assert stage in out

    def test_trace_downward(self, db_file, capsys):
        assert main(["trace", "downward", db_file,
                     "-r", "del Unemp(Dolors)"]) == 0
        out = capsys.readouterr().out
        assert "downward.interpret" in out and "downward.request" in out

    def test_trace_query_json(self, db_file, capsys):
        import json

        assert main(["trace", "query", db_file, "Unemp(x)", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"] == [["Dolors"]]
        assert payload["trace"]["name"] == "request.query"
        assert "eval.stratum" in payload["aggregates"]["spans"]

    def test_trace_does_not_leak_a_global_tracer(self, db_file, capsys):
        from repro.obs import tracer as obs

        assert not obs.enabled()
        main(["trace", "check", db_file, "-t", "insert Works(Dolors)"])
        assert not obs.enabled()

    def test_trace_commit_runs_locally(self, db_file, capsys):
        assert main(["trace", "commit", db_file,
                     "-t", "insert Works(Maria)"]) == 0
        assert "request.commit" in capsys.readouterr().out

    def test_trace_missing_argument_reported(self, db_file, capsys):
        assert main(["trace", "query", db_file]) == 2
        assert "error:" in capsys.readouterr().err


class TestCliErrorPaths:
    """Error paths of ``call``/``trace``/``serve`` argument handling."""

    def test_call_rejects_unknown_op(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["call", "--port", "1", "frobnicate"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_trace_rejects_unknown_op(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "frobnicate", "db.dl"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_call_missing_goal_is_a_clean_error(self, capsys):
        # A usage mistake before any socket is opened: no traceback, the
        # flat exit-2 error contract of the driver.
        assert main(["call", "--port", "1", "query"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "goal" in err

    def test_call_monitor_missing_conditions(self, capsys):
        assert main(["call", "--port", "1", "monitor",
                     "insert Works(A)"]) == 2
        assert "-c CONDITIONS" in capsys.readouterr().err

    def test_call_downward_missing_requests(self, capsys):
        assert main(["call", "--port", "1", "downward"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_missing_transaction(self, db_file, capsys):
        assert main(["trace", "commit", db_file]) == 2
        assert "needs a transaction" in capsys.readouterr().err

    def test_trace_nonexistent_database_file(self, tmp_path, capsys):
        assert main(["trace", "query", str(tmp_path / "nope.dl"),
                     "Unemp(x)"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_rejects_bad_cache_mode(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve", "data", "--cache-mode",
                                       "sometimes"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_serve_accepts_both_cache_modes(self):
        from repro.cli import build_parser

        for mode in ("advance", "invalidate"):
            args = build_parser().parse_args(
                ["serve", "data", "--cache-mode", mode])
            assert args.cache_mode == mode
        default = build_parser().parse_args(["serve", "data"])
        assert default.cache_mode == "advance"

    def test_engine_rejects_bad_cache_mode(self, tmp_path):
        from repro.server import DatabaseEngine

        with pytest.raises(ValueError, match="cache_mode"):
            DatabaseEngine.open(tmp_path / "d", cache_mode="sometimes")
