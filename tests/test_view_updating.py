"""Unit tests for view updating (5.2.1) with IC checking/maintenance."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.events.events import Transaction, delete, insert
from repro.interpretations import want_delete, want_insert
from repro.problems import translate_view_update


@pytest.fixture
def guarded_db():
    """A view whose naive translation can violate a constraint."""
    return DeductiveDatabase.from_source("""
        Member(A). Adult(A).
        Voter(x) <- Member(x) & Adult(x).
        Ic1(x) <- Member(x) & not Registered(x).
        Registered(A).
    """)


class TestPlainTranslation:
    def test_insert_request(self, guarded_db):
        result = translate_view_update(guarded_db, want_insert("Voter", "B"))
        assert result.is_satisfiable
        assert Transaction([insert("Member", "B"), insert("Adult", "B")]) in \
            result.transactions()

    def test_delete_request(self, guarded_db):
        result = translate_view_update(guarded_db, want_delete("Voter", "A"))
        assert set(result.transactions()) == {
            Transaction([delete("Member", "A")]),
            Transaction([delete("Adult", "A")]),
        }

    def test_request_set(self, guarded_db):
        result = translate_view_update(
            guarded_db, [want_delete("Voter", "A"), want_insert("Voter", "B")])
        assert result.is_satisfiable
        for transaction in result.transactions():
            assert len(transaction) >= 3


class TestWithChecking:
    def test_violating_translations_rejected(self, guarded_db):
        result = translate_view_update(
            guarded_db, want_insert("Voter", "B"), check_ic=True)
        # Inserting Member(B) without Registered(B) violates Ic1.
        assert result.rejected
        for translation in result.translations:
            induced_member = any(
                e.predicate == "Member" for e in translation.transaction)
            assert not induced_member or any(
                e.predicate == "Registered" for e in translation.transaction)

    def test_non_violating_kept(self, guarded_db):
        result = translate_view_update(
            guarded_db, want_delete("Voter", "A"), check_ic=True)
        # Deleting Adult(A) never violates Ic1; deleting Member(A) is fine too.
        assert len(result.translations) == 2
        assert not result.rejected


class TestWithMaintenance:
    def test_repairing_translations_produced(self, guarded_db):
        result = translate_view_update(
            guarded_db, want_insert("Voter", "B"), maintain_ic=True)
        assert result.is_satisfiable
        for transaction in result.transactions():
            if any(e.predicate == "Member" and e.is_insertion
                   for e in transaction):
                assert insert("Registered", "B") in transaction

    def test_maintained_translations_are_consistent(self, guarded_db):
        from repro.interpretations import naive_changes

        result = translate_view_update(
            guarded_db, want_insert("Voter", "B"), maintain_ic=True)
        for transaction in result.transactions():
            induced = naive_changes(guarded_db, transaction)
            assert not induced.insertions_of("Ic")

    def test_check_and_maintain_mutually_exclusive(self, guarded_db):
        with pytest.raises(ValueError):
            translate_view_update(guarded_db, want_insert("Voter", "B"),
                                  check_ic=True, maintain_ic=True)


class TestResultApi:
    def test_str(self, guarded_db):
        result = translate_view_update(guarded_db, want_delete("Voter", "A"))
        assert "δ" in str(result)
        empty = translate_view_update(
            guarded_db,
            [want_insert("Voter", "B"),
             # Forbid both ways of getting Member(B): unsatisfiable.
             ])
        assert empty.is_satisfiable  # sanity: the plain request works
