"""Unit tests for the DeductiveDatabase container."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.database import GLOBAL_IC, Relation
from repro.datalog.errors import ArityError, SafetyError
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Constant, Variable


class TestRelation:
    def test_add_discard(self):
        relation = Relation("P", 1)
        row = (Constant("A"),)
        assert relation.add(row)
        assert not relation.add(row)
        assert row in relation
        assert relation.discard(row)
        assert not relation.discard(row)

    def test_arity_enforced(self):
        relation = Relation("P", 2)
        with pytest.raises(ArityError):
            relation.add((Constant("A"),))

    def test_lookup_uses_bound_columns(self):
        relation = Relation("P", 2)
        relation.add((Constant("A"), Constant("B")))
        relation.add((Constant("A"), Constant("C")))
        relation.add((Constant("D"), Constant("B")))
        hits = set(relation.lookup((Constant("A"), Variable("y"))))
        assert hits == {(Constant("A"), Constant("B")),
                        (Constant("A"), Constant("C"))}

    def test_lookup_all_variables_scans(self):
        relation = Relation("P", 1)
        relation.add((Constant("A"),))
        assert set(relation.lookup((Variable("x"),))) == {(Constant("A"),)}

    def test_lookup_multi_bound(self):
        relation = Relation("P", 2)
        relation.add((Constant("A"), Constant("B")))
        assert set(relation.lookup((Constant("A"), Constant("B")))) == \
            {(Constant("A"), Constant("B"))}
        assert set(relation.lookup((Constant("A"), Constant("Z")))) == set()

    def test_index_invalidation_on_mutation(self):
        relation = Relation("P", 1)
        relation.add((Constant("A"),))
        list(relation.lookup((Constant("A"),)))  # build the index
        relation.add((Constant("B"),))
        assert set(relation.lookup((Constant("B"),))) == {(Constant("B"),)}


class TestFacts:
    def test_add_and_query(self):
        db = DeductiveDatabase()
        assert db.add_fact("Q", "A")
        assert not db.add_fact("Q", "A")
        assert db.has_fact("Q", "A")
        assert db.facts_of("Q") == {(Constant("A"),)}

    def test_remove(self):
        db = DeductiveDatabase()
        db.add_fact("Q", "A")
        assert db.remove_fact("Q", "A")
        assert not db.remove_fact("Q", "A")
        assert not db.has_fact("Q", "A")

    def test_variable_argument_rejected(self):
        db = DeductiveDatabase()
        with pytest.raises(SafetyError):
            db.add_fact("Q", Variable("x"))

    def test_fact_count_and_iter(self):
        db = DeductiveDatabase()
        db.add_fact("Q", "A")
        db.add_fact("R", "B", "C")
        assert db.fact_count() == 2
        assert set(db.iter_facts()) == {
            ("Q", (Constant("A"),)),
            ("R", (Constant("B"), Constant("C"))),
        }

    def test_fact_on_derived_predicate_rejected(self):
        db = DeductiveDatabase.from_source("P(x) <- Q(x). Q(A).")
        with pytest.raises(SafetyError):
            db.add_fact("P", "B")
            db.schema  # revalidation triggers the check at the latest


class TestRules:
    def test_add_rule_routes_facts(self):
        db = DeductiveDatabase()
        db.add_rule(parse_rule("Q(A)."))
        assert db.has_fact("Q", "A")
        assert not db.rules

    def test_add_rule_routes_constraints(self):
        db = DeductiveDatabase()
        db.add_rule(parse_rule("Ic1(x) <- Q(x)."))
        assert len(db.constraints) == 1

    def test_constraint_head_validated(self):
        db = DeductiveDatabase()
        with pytest.raises(SafetyError):
            db.add_constraint(parse_rule("P(x) <- Q(x)."))

    def test_remove_rule(self):
        db = DeductiveDatabase()
        r = parse_rule("P(x) <- Q(x).")
        db.add_rule(r)
        assert db.remove_rule(r)
        assert not db.remove_rule(r)

    def test_rules_defining(self):
        db = DeductiveDatabase.from_source(
            "P(x) <- Q(x). P(x) <- R(x). S(x) <- Q(x). Q(A)."
        )
        assert len(db.rules_defining("P")) == 2

    def test_global_ic_rules(self):
        db = DeductiveDatabase.from_source(
            "Ic1 <- P(x). Ic2 <- Q(x). P(x) <- Q(x). Q(A)."
        )
        rules = db.rules_with_global_ic()
        global_rules = [r for r in rules if r.head.predicate == GLOBAL_IC]
        assert len(global_rules) == 2


class TestSchema:
    def test_partition(self):
        db = DeductiveDatabase.from_source("P(x) <- Q(x). Q(A).")
        assert db.schema.is_derived("P")
        assert db.schema.is_base("Q")
        assert db.schema.arity("P") == 1

    def test_unknown_predicate(self):
        from repro.datalog.errors import UnknownPredicateError

        db = DeductiveDatabase()
        with pytest.raises(UnknownPredicateError):
            db.schema.arity("Nope")

    def test_declare_base(self):
        db = DeductiveDatabase()
        db.declare_base("Works", 1)
        assert db.schema.is_base("Works")
        assert db.schema.arity("Works") == 1

    def test_declare_base_arity_conflict(self):
        db = DeductiveDatabase()
        db.declare_base("Works", 1)
        with pytest.raises(ArityError):
            db.declare_base("Works", 2)

    def test_schema_recomputed_after_rule_change(self):
        db = DeductiveDatabase()
        db.add_fact("Q", "A")
        assert db.schema.is_base("Q")
        db.add_rule(parse_rule("P(x) <- Q(x)."))
        assert db.schema.is_derived("P")


class TestCopyAndDomain:
    def test_copy_is_independent(self):
        db = DeductiveDatabase.from_source("Q(A).")
        clone = db.copy()
        clone.add_fact("Q", "B")
        assert not db.has_fact("Q", "B")
        assert clone.has_fact("Q", "A")

    def test_active_domain(self):
        db = DeductiveDatabase.from_source("Q(A). P(x) <- Q(x) & not R(B).")
        assert db.active_domain() == {Constant("A"), Constant("B")}

    def test_str_round_trips(self):
        db = DeductiveDatabase.from_source("Q(A). P(x) <- Q(x). Ic1 <- P(x).")
        again = DeductiveDatabase.from_source(str(db))
        assert again.has_fact("Q", "A")
        assert len(again.rules) == 1
        assert len(again.constraints) == 1
