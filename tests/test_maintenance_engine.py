"""Unit tests for the iterative maintenance engine (core.maintenance)."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.events.events import Transaction, delete, insert, parse_transaction
from repro.core import maintain_iteratively, translate_with_maintenance
from repro.interpretations import naive_changes, want_delete, want_insert
from repro.problems import is_consistent
from repro.problems.base import StateError
from repro.workloads import employment_database


class TestMaintainIteratively:
    def test_safe_transaction_returned_as_is(self, employment_db):
        transaction = Transaction([insert("Works", "Maria")])
        result = maintain_iteratively(employment_db, transaction)
        assert result.best() == transaction

    def test_violating_transaction_repaired(self, employment_db):
        transaction = parse_transaction("{delete U_benefit(Dolors)}")
        result = maintain_iteratively(employment_db, transaction)
        assert result.is_satisfiable
        best = result.best()
        assert delete("U_benefit", "Dolors") in best
        assert len(best) == 2

    def test_solutions_preserve_consistency(self, employment_db):
        transaction = parse_transaction("{delete U_benefit(Dolors)}")
        result = maintain_iteratively(employment_db, transaction)
        for solution in result.solutions:
            assert is_consistent(solution.apply_to(employment_db))

    def test_cascading_repairs(self):
        """A repair that itself violates another constraint gets repaired."""
        db = DeductiveDatabase.from_source("""
            A(X). B(X). C(X).
            Ic1(x) <- A(x) & not B(x).
            Ic2(x) <- D(x) & not C(x).
        """)
        db.declare_base("D", 1)
        # Deleting B(X) violates Ic1; repairs are δA(X) or ιB(X)=contradiction.
        result = maintain_iteratively(db, Transaction([delete("B", "X")]))
        assert result.is_satisfiable
        best = result.best()
        assert delete("A", "X") in best

    def test_scales_to_larger_databases(self):
        db = employment_database(200, seed=17)
        transaction = Transaction([insert("La", "Nova1"),
                                   insert("La", "Nova2")])
        result = maintain_iteratively(db, transaction)
        assert result.is_satisfiable
        assert is_consistent(result.best().apply_to(db))

    def test_requires_consistent_state(self):
        db = employment_database(10, benefit_ratio=0.0, employed_ratio=0.1,
                                 seed=1)
        with pytest.raises(StateError):
            maintain_iteratively(db, Transaction())

    def test_no_constraints_trivial(self, pqr_db):
        transaction = Transaction([insert("Q", "Z")])
        result = maintain_iteratively(pqr_db, transaction)
        assert result.solutions == (transaction,)

    def test_agrees_with_faithful_downward_on_small_instance(self, employment_db):
        from repro.problems import maintain_transaction

        transaction = parse_transaction("{delete U_benefit(Dolors)}")
        faithful = {t for t in maintain_transaction(
            employment_db, transaction).transactions()}
        iterative = set(maintain_iteratively(
            employment_db, transaction, max_solutions=10).solutions)
        # Every iterative solution appears among the faithful ones.
        assert iterative <= faithful


class TestTranslateWithMaintenance:
    def test_view_insert_with_repair(self, employment_db):
        candidates = translate_with_maintenance(
            employment_db, [want_insert("Unemp", "Maria")])
        assert candidates
        for transaction in candidates:
            induced = naive_changes(employment_db, transaction)
            assert induced.insertions_of("Unemp")
            assert not induced.insertions_of("Ic")

    def test_view_delete_safe(self, employment_db):
        candidates = translate_with_maintenance(
            employment_db, [want_delete("Unemp", "Dolors")])
        assert len(candidates) == 2

    def test_scales(self):
        db = employment_database(150, seed=23)
        candidates = translate_with_maintenance(
            db, [want_insert("Unemp", "Newcomer")])
        assert candidates
        for transaction in candidates:
            assert is_consistent(transaction.apply_to(db))
