"""Unit tests for the failpoint registry and the fault clock."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import faults
from repro.faults import clock

# Registered here once, exercised by every test below.  Module-level like
# real sites, so REPRO_FAULTS-style pending specs can target them too.
FP_TEST = faults.register("test.unit_point", "registered by tests/test_faults.py")
FP_OTHER = faults.register("test.other_point", "a second point for isolation tests")


class TestRegistry:
    def test_register_returns_name_and_lists(self):
        assert FP_TEST == "test.unit_point"
        assert FP_TEST in faults.names()
        assert faults.catalog()[FP_TEST] == "registered by tests/test_faults.py"

    def test_register_twice_updates_description(self):
        faults.register(FP_TEST, "newer text")
        assert faults.catalog()[FP_TEST] == "newer text"
        faults.register(FP_TEST, "registered by tests/test_faults.py")

    def test_disabled_failpoint_returns_none(self):
        assert faults.failpoint(FP_TEST) is None

    def test_arm_unknown_name_raises(self):
        with pytest.raises(faults.UnknownFailpointError):
            faults.arm("no.such.point", "raise")

    def test_unknown_action_kind_raises(self):
        with pytest.raises(ValueError):
            faults.FaultAction(kind="explode")

    def test_raise_action_includes_context(self):
        faults.arm(FP_TEST, "raise")
        with pytest.raises(faults.FaultError, match="batch_size=3"):
            faults.failpoint(FP_TEST, batch_size=3)

    def test_raise_action_custom_exception_factory(self):
        faults.arm(FP_TEST, "raise", exception=lambda: OSError(28, "No space"))
        with pytest.raises(OSError, match="No space"):
            faults.failpoint(FP_TEST)

    def test_crash_is_not_an_exception(self):
        # The whole point: `except Exception` must not swallow a crash.
        assert not issubclass(faults.SimulatedCrash, Exception)
        faults.arm(FP_TEST, "crash")
        with pytest.raises(faults.SimulatedCrash):
            try:
                faults.failpoint(FP_TEST)
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash was swallowed by `except Exception`")

    def test_sleep_action_uses_fault_clock(self):
        virtual = clock.VirtualClock()
        with clock.use(virtual):
            faults.arm(FP_TEST, "sleep", param=1.5)
            assert faults.failpoint(FP_TEST) is None
        assert virtual.sleeps == [1.5]

    def test_torn_and_drop_are_returned_to_the_site(self):
        faults.arm(FP_TEST, "torn", param=0.25)
        action = faults.failpoint(FP_TEST)
        assert action is not None and action.kind == "torn"
        assert action.param == 0.25
        faults.arm(FP_TEST, "drop")
        assert faults.failpoint(FP_TEST).kind == "drop"

    def test_skip_and_times_triggers(self):
        fired = []
        faults.arm(FP_TEST, "raise", skip=2, times=1)
        for _ in range(5):
            try:
                faults.failpoint(FP_TEST)
                fired.append(False)
            except faults.FaultError:
                fired.append(True)
        # Hits 1-2 skipped, hit 3 fires, hits 4-5 exhausted.
        assert fired == [False, False, True, False, False]
        assert faults.hit_count(FP_TEST) == 5

    def test_unbounded_times_fires_every_hit(self):
        faults.arm(FP_TEST, "drop")
        assert all(faults.failpoint(FP_TEST) is not None for _ in range(4))

    def test_invalid_triggers_rejected(self):
        with pytest.raises(ValueError):
            faults.arm(FP_TEST, "raise", skip=-1)
        with pytest.raises(ValueError):
            faults.arm(FP_TEST, "raise", times=0)

    def test_armed_context_manager_is_one_shot_and_disarms(self):
        with faults.armed(FP_TEST, "raise"):
            assert FP_TEST in faults.armed_names()
            with pytest.raises(faults.FaultError):
                faults.failpoint(FP_TEST)
            assert faults.failpoint(FP_TEST) is None  # one-shot spent
        assert FP_TEST not in faults.armed_names()

    def test_armed_disarms_even_when_body_raises(self):
        with pytest.raises(RuntimeError, match="boom"):
            with faults.armed(FP_TEST, "crash"):
                raise RuntimeError("boom")
        assert faults.failpoint(FP_TEST) is None

    def test_disarm_and_reset(self):
        faults.arm(FP_TEST, "raise")
        faults.arm(FP_OTHER, "raise")
        faults.disarm(FP_TEST)
        faults.disarm("never.armed")  # no-op, no error
        assert faults.armed_names() == (FP_OTHER,)
        faults.reset()
        assert faults.armed_names() == ()

    def test_arming_one_point_leaves_others_disabled(self):
        faults.arm(FP_OTHER, "raise")
        assert faults.failpoint(FP_TEST) is None

    def test_hit_count_unarmed_is_zero(self):
        assert faults.hit_count(FP_TEST) == 0


class TestSpecParsing:
    def test_full_grammar(self):
        name, action, skip, times = faults.parse_spec(
            "wal.pre_fsync=sleep:0.25@3#2")
        assert name == "wal.pre_fsync"
        assert action == faults.FaultAction("sleep", 0.25)
        assert (skip, times) == (3, 2)

    def test_minimal_spec(self):
        name, action, skip, times = faults.parse_spec("x=crash")
        assert (name, action.kind, action.param) == ("x", "crash", None)
        assert (skip, times) == (0, None)

    @pytest.mark.parametrize("bad", [
        "", "justaname", "=crash", "x=", "x=explode", "x=sleep:a lot",
        "x=crash#none", "x=crash@-",
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            faults.parse_spec(bad)

    def test_arm_from_environment_immediate_and_bad(self):
        bad = faults.arm_from_environment(
            f"{FP_TEST}=raise#1; ;broken spec;{FP_OTHER}=drop")
        assert bad == ["broken spec"]
        assert set(faults.armed_names()) == {FP_TEST, FP_OTHER}
        with pytest.raises(faults.FaultError):
            faults.failpoint(FP_TEST)

    def test_arm_from_environment_pends_until_register(self):
        faults.arm_from_environment("test.late_point=drop#1")
        assert "test.late_point" not in faults.armed_names()
        faults.register("test.late_point", "registered after the spec")
        assert "test.late_point" in faults.armed_names()
        assert faults.failpoint("test.late_point").kind == "drop"


class TestEnvironmentEndToEnd:
    def test_repro_faults_variable_arms_a_wal_site(self, tmp_path):
        """REPRO_FAULTS set before interpreter start arms real sites."""
        script = (
            "from pathlib import Path\n"
            "from repro.core.durable import DurableDatabase\n"
            "from repro.datalog.database import DeductiveDatabase\n"
            "from repro.events.events import parse_transaction, Transaction\n"
            "db = DeductiveDatabase(); db.declare_base('P', 1)\n"
            "store = DurableDatabase.open(Path(r'{dir}'), initial=db)\n"
            "store.commit(Transaction(parse_transaction('insert P(A)')))\n"
            "print('no crash')\n"
        ).format(dir=tmp_path / "db")
        env = dict(os.environ,
                   REPRO_FAULTS="wal.pre_fsync=crash#1",
                   PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
        result = subprocess.run([sys.executable, "-c", script],
                                capture_output=True, text=True, env=env,
                                timeout=60)
        assert result.returncode != 0
        assert "SimulatedCrash" in result.stderr
        assert "no crash" not in result.stdout


class TestClock:
    def test_virtual_clock_advances_and_records(self):
        virtual = clock.VirtualClock()
        start = virtual.monotonic()
        virtual.sleep(2.0)
        virtual.advance(0.5)
        assert virtual.monotonic() == pytest.approx(start + 2.5)
        assert virtual.sleeps == [2.0]

    def test_install_returns_previous(self):
        virtual = clock.VirtualClock()
        previous = clock.install(virtual)
        try:
            assert clock.get() is virtual
            clock.sleep(1.0)
            assert virtual.sleeps == [1.0]
        finally:
            clock.install(previous)
        assert clock.get() is previous

    def test_use_defaults_to_fresh_virtual_clock(self):
        with clock.use() as virtual:
            assert isinstance(virtual, clock.VirtualClock)
            assert clock.get() is virtual
            clock.sleep(3.0)
        assert virtual.sleeps == [3.0]
        assert clock.get() is not virtual

    def test_real_clock_sleeps_for_real(self):
        real = clock.Clock()
        before = real.monotonic()
        real.sleep(0.01)
        assert real.monotonic() - before >= 0.005
