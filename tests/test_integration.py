"""End-to-end integration tests across every layer.

These drive the system the way a user would: parse a schema, run an update
workload through the processor, keep materialized views in sync, break and
repair consistency, and evolve the schema -- checking global invariants at
every step.
"""

import pytest

from repro import (
    DeductiveDatabase,
    MaterializedViewStore,
    Transaction,
    UpdateProcessor,
    apply_schema_update,
    delete,
    naive_changes,
    parse_transaction,
    repair_to_consistency,
    want_delete,
    want_insert,
)
from repro.datalog.parser import parse_rule
from repro.problems import is_consistent
from repro.workloads import employment_database, random_transaction


class TestEmploymentOfficeLifecycle:
    """A registry office runs its daily business through the processor."""

    @pytest.fixture
    def office(self):
        db = employment_database(30, seed=42)
        processor = UpdateProcessor(db)
        processor.declare_view("Unemp")
        processor.declare_condition("Unemp")
        return processor

    def test_full_day(self, office):
        # 1. A new person in labour age arrives; plain insert would violate
        #    Ic1 (unemployed without benefit) -- maintenance repairs it.
        result = office.execute(parse_transaction("{insert La(Nova)}"),
                                on_violation="maintain")
        assert result.applied
        assert office.is_consistent()

        # 2. The condition monitor saw nothing yet for a benign change.
        changes = office.monitor(parse_transaction("{insert Works(Nova)}"))
        assert changes.deactivated.get("Unemp")

        # 3. A view update request: make Nova employed via the view,
        #    maintaining constraints through the staged (§5.3) pipeline.
        candidates = office.translate_maintained(want_delete("Unemp", "Nova"))
        assert candidates
        assert office.execute(candidates[0], on_violation="reject").applied

    def test_processor_survives_many_random_transactions(self, office):
        applied = 0
        for seed in range(12):
            transaction = random_transaction(office.db, n_events=2, seed=seed)
            result = office.execute(transaction, on_violation="maintain")
            applied += bool(result.applied)
            assert office.is_consistent()
        assert applied >= 8  # most transactions are maintainable


class TestMaterializedPipeline:
    def test_store_stays_in_sync_with_oracle(self):
        db = employment_database(25, seed=7)
        store = MaterializedViewStore(db, ["Unemp"])
        for seed in range(10):
            transaction = random_transaction(db, n_events=2, seed=100 + seed)
            before = store.extension("Unemp")
            oracle = naive_changes(db, transaction)
            store.apply(transaction)
            expected = (before | oracle.insertions_of("Unemp")) \
                - oracle.deletions_of("Unemp")
            assert store.extension("Unemp") == expected
        assert store.verify().ok


class TestBreakAndRepair:
    def test_break_then_repair_round_trip(self):
        db = employment_database(20, seed=5)
        processor = UpdateProcessor(db)
        # Break it deliberately.
        victims = sorted(
            row[0].value for row in db.facts_of("U_benefit"))[:3]
        if not victims:
            pytest.skip("no benefits to remove in this seed")
        processor.execute(
            Transaction([delete("U_benefit", v) for v in victims]),
            on_violation="ignore")
        assert not processor.is_consistent()
        # Repair it back.
        result = repair_to_consistency(processor.db)
        assert result.consistent
        assert is_consistent(result.db)

    def test_restoration_check_agrees_with_repair(self):
        db = employment_database(6, seed=3)
        if not db.facts_of("U_benefit"):
            pytest.skip("seed produced no benefits")
        victim = sorted(row[0].value for row in db.facts_of("U_benefit"))[0]
        db.remove_fact("U_benefit", victim)
        processor = UpdateProcessor(db)
        repairs = processor.repair(verify=True).repairs
        assert repairs
        check = processor.check_restoration(repairs[0].transaction)
        assert check.ok


class TestSchemaEvolution:
    def test_rule_update_then_queries(self):
        db = DeductiveDatabase.from_source("""
            Emp(A, Sales). Emp(B, Tech).
            SalesPerson(x) <- Emp(x, Sales).
        """)
        update = apply_schema_update(
            db, add_rules=[parse_rule("Staff(x) <- Emp(x, d).")])
        assert update.induced.insertions_of("Staff")
        processor = UpdateProcessor(update.db)
        result = processor.downward(want_insert("Staff", "C"))
        assert result.is_satisfiable

    def test_constraint_tightening_workflow(self):
        db = employment_database(10, seed=1)
        tightened = apply_schema_update(
            db,
            add_constraints=[parse_rule("Ic2(x) <- Works(x) & U_benefit(x).")])
        # If anyone both works and draws a benefit the schema change reports
        # it; either way the updated database is immediately usable.
        processor = UpdateProcessor(tightened.db)
        if tightened.keeps_consistency:
            assert processor.is_consistent()
        else:
            assert not processor.is_consistent()
            repaired = repair_to_consistency(tightened.db)
            assert repaired.consistent


class TestCrossStrategyConsistency:
    def test_three_change_computations_agree_end_to_end(self):
        from repro.interpretations import UpwardInterpreter, UpwardOptions

        db = employment_database(40, seed=21)
        for seed in range(6):
            transaction = random_transaction(db, n_events=3, seed=seed)
            hybrid = UpwardInterpreter(
                db, options=UpwardOptions(strategy="hybrid")).interpret(transaction)
            flat = UpwardInterpreter(
                db, options=UpwardOptions(strategy="flat")).interpret(transaction)
            oracle = naive_changes(db, transaction)
            assert hybrid.insertions == flat.insertions == oracle.insertions
            assert hybrid.deletions == flat.deletions == oracle.deletions
