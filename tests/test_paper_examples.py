"""Verbatim reproduction of every worked example in the paper.

Each test asserts the *exact* symbolic result the paper derives by hand:
Example 3.1 (transition rule), 4.1 (upward), 4.2 (downward), 5.1 (integrity
checking), 5.2 (view updating), 5.3 (preventing side effects).
"""

import pytest

from repro.datalog.parser import parse_rule
from repro.datalog.terms import Constant
from repro.events.events import Transaction, delete, insert, parse_transaction
from repro.events.naming import display_literal
from repro.events.transition import compile_transition_rule
from repro.interpretations import (
    DownwardInterpreter,
    UpwardInterpreter,
    UpwardOptions,
    forbid_insert,
    naive_changes,
    want_delete,
    want_insert,
)

B = (Constant("B"),)
DOLORS = (Constant("Dolors"),)


class TestExample31:
    """The transition rule of P(x) <- Q(x) ∧ ¬R(x)."""

    def test_four_disjuncts_in_paper_order(self):
        transition = compile_transition_rule(parse_rule("P(x) <- Q(x) & not R(x)."))
        rendered = [
            [display_literal(lit) for lit in disjunct]
            for disjunct in transition.disjuncts
        ]
        assert rendered == [
            ["Q(x)", "¬δQ(x)", "¬R(x)", "¬ιR(x)"],
            ["Q(x)", "¬δQ(x)", "δR(x)"],
            ["ιQ(x)", "¬R(x)", "¬ιR(x)"],
            ["ιQ(x)", "δR(x)"],
        ]


class TestExample41:
    """T = {δR(B)} induces exactly {ιP(B)}."""

    @pytest.mark.parametrize("strategy", ["hybrid", "flat"])
    def test_upward_interpretation(self, pqr_db, strategy):
        interpreter = UpwardInterpreter(
            pqr_db, options=UpwardOptions(strategy=strategy))
        result = interpreter.interpret(parse_transaction("{δR(B)}"))
        assert result.insertions == {"P": frozenset({B})}
        assert result.deletions == {}

    def test_oracle_agrees(self, pqr_db):
        result = naive_changes(pqr_db, Transaction([delete("R", "B")]))
        assert result.insertions == {"P": frozenset({B})}
        assert result.deletions == {}


class TestExample42:
    """ιP(B) is satisfied exactly by (δR(B) ∧ ¬δQ(B))."""

    def test_downward_interpretation(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(want_insert("P", "B"))
        assert len(result.translations) == 1
        (translation,) = result.translations
        assert translation.transaction == Transaction([delete("R", "B")])
        assert translation.constraints == frozenset({delete("Q", "B")})

    def test_translation_applies_correctly(self, pqr_db):
        result = DownwardInterpreter(pqr_db).interpret(want_insert("P", "B"))
        transaction = result.translations[0].transaction
        induced = naive_changes(pqr_db, transaction)
        assert B in induced.insertions_of("P")


class TestExample51:
    """T = {δU_benefit(Dolors)} violates Ic1."""

    def test_ic1_insertion_induced(self, employment_db):
        interpreter = UpwardInterpreter(employment_db)
        result = interpreter.interpret(
            parse_transaction("{delete U_benefit(Dolors)}"))
        assert result.insertions_of("Ic1") == frozenset({()})
        assert result.insertions_of("Ic") == frozenset({()})

    def test_relevant_transition_rule_shape(self, employment_db):
        from repro.events.event_rules import EventCompiler

        program = EventCompiler(simplify=False).compile(employment_db)
        (unemp,) = program.transition_rules_of("Unemp")
        assert len(unemp.disjuncts) == 4
        (ic1,) = program.transition_rules_of("Ic1")
        assert len(ic1.disjuncts) == 4


class TestExample52:
    """δUnemp(Dolors) has exactly the translations {δLa(Dolors)} and
    {ιWorks(Dolors)}."""

    def test_two_translations(self, employment_db):
        result = DownwardInterpreter(employment_db).interpret(
            want_delete("Unemp", "Dolors"))
        transactions = set(result.transactions())
        assert transactions == {
            Transaction([delete("La", "Dolors")]),
            Transaction([insert("Works", "Dolors")]),
        }

    def test_both_translations_work(self, employment_db):
        result = DownwardInterpreter(employment_db).interpret(
            want_delete("Unemp", "Dolors"))
        for transaction in result.transactions():
            induced = naive_changes(employment_db, transaction)
            assert DOLORS in induced.deletions_of("Unemp")


class TestExample53:
    """{ιLa(Maria), ¬ιUnemp(Maria)} has exactly the resulting transaction
    {ιLa(Maria), ιWorks(Maria)}."""

    def test_unique_resulting_transaction(self, employment_db):
        result = DownwardInterpreter(employment_db).interpret([
            insert("La", "Maria"),
            forbid_insert("Unemp", "Maria"),
        ])
        assert len(result.translations) == 1
        assert result.translations[0].transaction == Transaction([
            insert("La", "Maria"), insert("Works", "Maria"),
        ])

    def test_side_effect_indeed_prevented(self, employment_db):
        result = DownwardInterpreter(employment_db).interpret([
            insert("La", "Maria"),
            forbid_insert("Unemp", "Maria"),
        ])
        transaction = result.translations[0].transaction
        induced = naive_changes(employment_db, transaction)
        assert (Constant("Maria"),) not in induced.insertions_of("Unemp")

    def test_without_prevention_side_effect_occurs(self, employment_db):
        induced = naive_changes(employment_db,
                                Transaction([insert("La", "Maria")]))
        assert (Constant("Maria"),) in induced.insertions_of("Unemp")
