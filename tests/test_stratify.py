"""Unit tests for dependency analysis and stratification."""

import pytest

from repro.datalog.errors import StratificationError
from repro.datalog.parser import parse_program
from repro.datalog.stratify import NEGATIVE, POSITIVE, dependency_graph, stratify


def rules_of(source):
    return parse_program(source).all_rules()


class TestDependencyGraph:
    def test_edges_and_labels(self):
        graph = dependency_graph(rules_of("P(x) <- Q(x) & not R(x)."))
        assert graph.has_edge("Q", "P")
        assert graph.labels("Q", "P") == {POSITIVE}
        assert graph.labels("R", "P") == {NEGATIVE}

    def test_both_polarities_on_one_edge(self):
        graph = dependency_graph(rules_of(
            "P(x) <- Q(x).  P(x) <- S(x) & not Q(x)."
        ))
        assert graph.labels("Q", "P") == {POSITIVE, NEGATIVE}


class TestStratify:
    def test_base_is_stratum_zero(self):
        strat = stratify(rules_of("P(x) <- Q(x)."))
        assert strat.stratum("Q") == 0
        assert strat.stratum("P") == 1

    def test_negation_increases_stratum(self):
        strat = stratify(rules_of(
            "P(x) <- Q(x).  S(x) <- T(x) & not P(x)."
        ))
        assert strat.stratum("S") == 2

    def test_positive_chain_shares_stratum_requirements(self):
        strat = stratify(rules_of(
            "A(x) <- B(x).  B2(x) <- A(x)."
        ))
        assert strat.stratum("A") >= 1
        assert strat.stratum("B2") >= strat.stratum("A")

    def test_recursion_detected(self):
        strat = stratify(rules_of(
            "Path(x,y) <- Edge(x,y).  Path(x,y) <- Edge(x,z) & Path(z,y)."
        ))
        assert "Path" in strat.recursive
        assert "Edge" not in strat.recursive

    def test_mutual_recursion_detected(self):
        strat = stratify(rules_of(
            "A(x) <- B(x).  B(x) <- A(x).  A(x) <- S(x)."
        ))
        assert {"A", "B"} <= set(strat.recursive)

    def test_negation_in_cycle_rejected(self):
        with pytest.raises(StratificationError):
            stratify(rules_of("P(x) <- Q(x) & not P(x)."))

    def test_negation_across_mutual_recursion_rejected(self):
        with pytest.raises(StratificationError):
            stratify(rules_of("A(x) <- S(x) & not B(x).  B(x) <- A(x)."))

    def test_strata_grouping(self):
        strat = stratify(rules_of(
            "P(x) <- Q(x).  S(x) <- T(x) & not P(x)."
        ))
        assert strat.strata[0] >= {"Q", "T"}
        assert "P" in strat.strata[1]
        assert "S" in strat.strata[2]
        assert strat.depth == 2

    def test_negation_on_base_only_needs_stratum_one(self):
        strat = stratify(rules_of("P(x) <- Q(x) & not R(x)."))
        assert strat.stratum("P") == 1

    def test_unknown_predicate_defaults_to_base(self):
        strat = stratify(rules_of("P(x) <- Q(x)."), base_predicates=["Extra"])
        assert strat.stratum("Extra") == 0
        assert strat.stratum("NeverSeen") == 0

    def test_deep_negation_tower(self):
        # Vl negates Vl-1, so every level needs a fresh stratum.
        source = "V0(A). B(A)."
        for level in range(1, 30):
            source += f" V{level}(x) <- B(x) & not V{level - 1}(x)."
        strat = stratify(rules_of(source))
        assert strat.stratum("V29") == 29

    def test_positive_tower_stays_flat(self):
        source = "V0(A). B(A)."
        for level in range(1, 30):
            source += f" V{level}(x) <- V{level - 1}(x) & B(x)."
        strat = stratify(rules_of(source))
        assert strat.stratum("V29") == 1
