"""Semantic checks of the paper's formal statements.

Definitions (1)/(2), the equivalences (3)/(4) of Section 3.1, the event
rules (6)/(7) of Section 3.3 and the complementary specifications of
Section 5.1.1 are *formulas*; these tests check them as such -- for
concrete and random states, both sides evaluated independently.
"""

from hypothesis import given, settings, strategies as st

from repro.datalog import DeductiveDatabase
from repro.datalog.evaluation import BottomUpEvaluator
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Constant
from repro.events.events import Event, Transaction
from repro.events.naming import EventKind
from repro.interpretations import UpwardInterpreter, naive_changes

CONSTANTS = ["C0", "C1", "C2"]


@st.composite
def states_and_transactions(draw):
    """A database over B1/1 with views, plus a well-formed transaction."""
    db = DeductiveDatabase()
    db.declare_base("B1", 1)
    db.declare_base("B2", 1)
    for constant in draw(st.sets(st.sampled_from(CONSTANTS), max_size=3)):
        db.add_fact("B1", constant)
    for constant in draw(st.sets(st.sampled_from(CONSTANTS), max_size=3)):
        db.add_fact("B2", constant)
    db.add_rule(parse_rule("V(x) <- B1(x) & not B2(x)."))
    events = {}
    for _ in range(draw(st.integers(0, 3))):
        kind = draw(st.sampled_from([EventKind.INSERTION, EventKind.DELETION]))
        predicate = draw(st.sampled_from(["B1", "B2"]))
        constant = draw(st.sampled_from(CONSTANTS))
        events.setdefault((predicate, constant),
                          Event(kind, predicate, (Constant(constant),)))
    return db, Transaction(events.values())


def _holds(db, rules, predicate, row):
    return row in BottomUpEvaluator(db, rules).extension(predicate)


class TestDefinitions1And2:
    """ιP(x) ↔ Pn(x) ∧ ¬Po(x)   and   δP(x) ↔ Po(x) ∧ ¬Pn(x)."""

    @given(data=states_and_transactions())
    @settings(max_examples=100, deadline=None)
    def test_event_definitions(self, data):
        db, transaction = data
        transaction = transaction.normalized(db)
        new_db = transaction.apply_to(db)
        rules = db.all_rules()
        induced = UpwardInterpreter(db).interpret(transaction)
        for constant in CONSTANTS:
            row = (Constant(constant),)
            old = _holds(db, rules, "V", row)
            new = _holds(new_db, rules, "V", row)
            assert (row in induced.insertions_of("V")) == (new and not old)
            assert (row in induced.deletions_of("V")) == (old and not new)


class TestEquivalences3And4:
    """Po(x) ↔ (Po(x) ∧ ¬δP(x)) ∨ ιP(x) ... wait -- the paper's (3) is

        Pn(x) ↔ (Po(x) ∧ ¬δP(x)) ∨ ιP(x)
        ¬Pn(x) ↔ (¬Po(x) ∧ ¬ιP(x)) ∨ δP(x)

    i.e. new-state truth decomposed over old state and events."""

    @given(data=states_and_transactions())
    @settings(max_examples=100, deadline=None)
    def test_new_state_decomposition(self, data):
        db, transaction = data
        transaction = transaction.normalized(db)
        new_db = transaction.apply_to(db)
        rules = db.all_rules()
        induced = naive_changes(db, transaction)
        for predicate in ("B1", "B2", "V"):
            for constant in CONSTANTS:
                row = (Constant(constant),)
                old = _holds(db, rules, predicate, row) \
                    if predicate == "V" else db.has_fact(predicate, constant)
                new = _holds(new_db, rules, predicate, row) \
                    if predicate == "V" else new_db.has_fact(predicate, constant)
                if predicate == "V":
                    inserted = row in induced.insertions_of("V")
                    deleted = row in induced.deletions_of("V")
                else:
                    inserted = Event(EventKind.INSERTION, predicate, row) \
                        in transaction
                    deleted = Event(EventKind.DELETION, predicate, row) \
                        in transaction
                # (3):  Pn ↔ (Po ∧ ¬δP) ∨ ιP
                assert new == ((old and not deleted) or inserted)
                # (4):  ¬Pn ↔ (¬Po ∧ ¬ιP) ∨ δP
                assert (not new) == ((not old and not inserted) or deleted)


class TestComplementarySpecifications:
    """§5.1.1: upward of ¬ιIc checks that NO constraint becomes violated."""

    @given(data=states_and_transactions())
    @settings(max_examples=60, deadline=None)
    def test_not_iota_ic_is_complement(self, data):
        db, transaction = data
        db.add_constraint(parse_rule("Ic1(x) <- V(x)."))
        transaction = transaction.normalized(db)
        from repro.datalog.database import GLOBAL_IC

        interpreter = UpwardInterpreter(db)
        result = interpreter.interpret(transaction, predicates=[GLOBAL_IC])
        ic_inserted = bool(result.insertions_of(GLOBAL_IC))
        # §5.1.1's complementary reading -- upward of ¬ιIc is "the upward
        # interpretation of ιIc contains no event" -- against the semantic
        # statement: ιIc iff Ic holds in the new state but not the old.
        new_db = transaction.apply_to(db)
        old_ic = bool(BottomUpEvaluator(
            db, db.rules_with_global_ic()).extension(GLOBAL_IC))
        new_ic = bool(BottomUpEvaluator(
            new_db, new_db.rules_with_global_ic()).extension(GLOBAL_IC))
        assert ic_inserted == (new_ic and not old_ic)


class TestEventRules6And7:
    """The compiled event rules, evaluated as formulas, match (6)/(7)."""

    def test_flat_program_ins_del_match_definitions(self, pqr_db):
        from repro.workloads import random_transaction

        interpreter = UpwardInterpreter(pqr_db)
        for seed in range(10):
            transaction = random_transaction(pqr_db, n_events=2, seed=seed)
            result = interpreter.interpret(transaction)
            oracle = naive_changes(pqr_db, transaction)
            assert result.insertions == oracle.insertions
            assert result.deletions == oracle.deletions
