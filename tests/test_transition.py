"""Unit tests for transition-rule compilation (Section 3.2)."""

from repro.datalog.parser import parse_rule
from repro.events.naming import display_literal
from repro.events.transition import (
    TransitionCompiler,
    base_transition_rules,
    compile_transition_rule,
    disjunct_has_positive_event,
    expand_negative,
    expand_positive,
)


def disjunct_strings(transition):
    return [
        " ∧ ".join(display_literal(lit) for lit in disjunct)
        for disjunct in transition.disjuncts
    ]


class TestLiteralExpansion:
    def test_positive(self):
        literal = parse_rule("H(x) <- Q(x).").body[0]
        old_case, event_case = expand_positive(literal)
        assert [display_literal(l) for l in old_case] == ["Q(x)", "¬δQ(x)"]
        assert [display_literal(l) for l in event_case] == ["ιQ(x)"]

    def test_negative(self):
        literal = parse_rule("H(x) <- not R(x).").body[0]
        old_case, event_case = expand_negative(literal)
        assert [display_literal(l) for l in old_case] == ["¬R(x)", "¬ιR(x)"]
        assert [display_literal(l) for l in event_case] == ["δR(x)"]


class TestExample31:
    """Example 3.1: P(x) <- Q(x) & not R(x) -- the four disjuncts, in order."""

    def test_disjunct_count(self):
        transition = compile_transition_rule(parse_rule("P(x) <- Q(x) & not R(x)."))
        assert len(transition.disjuncts) == 4

    def test_disjuncts_verbatim(self):
        transition = compile_transition_rule(parse_rule("P(x) <- Q(x) & not R(x)."))
        assert disjunct_strings(transition) == [
            "Q(x) ∧ ¬δQ(x) ∧ ¬R(x) ∧ ¬ιR(x)",
            "Q(x) ∧ ¬δQ(x) ∧ δR(x)",
            "ιQ(x) ∧ ¬R(x) ∧ ¬ιR(x)",
            "ιQ(x) ∧ δR(x)",
        ]

    def test_head_is_new_namespace(self):
        transition = compile_transition_rule(parse_rule("P(x) <- Q(x) & not R(x)."))
        assert transition.head.predicate == "new$P"

    def test_exponential_shape(self):
        rule = parse_rule("P(x) <- A(x) & B(x) & not C(x).")
        assert len(compile_transition_rule(rule).disjuncts) == 8


class TestDatalogFlattening:
    def test_one_rule_per_disjunct(self):
        transition = compile_transition_rule(parse_rule("P(x) <- Q(x) & not R(x)."))
        flat = transition.as_datalog_rules()
        assert len(flat) == 4
        assert all(r.head.predicate == "new$P" for r in flat)

    def test_head_terms_preserved(self):
        transition = compile_transition_rule(parse_rule("P(x, x) <- Q(x)."))
        assert str(transition.head) == "new$P(x, x)"

    def test_constants_in_head(self):
        transition = compile_transition_rule(parse_rule("P(A, y) <- Q(y)."))
        assert str(transition.head) == "new$P(A, y)"


class TestCompiler:
    def test_multiple_rules_indexed(self):
        compiler = TransitionCompiler()
        rules = [parse_rule("P(x) <- Q(x)."), parse_rule("P(x) <- R(x).")]
        grouped = compiler.compile_rules(rules)
        assert [t.index for t in grouped["P"]] == [1, 2]

    def test_datalog_rules_flatten_all(self):
        compiler = TransitionCompiler()
        rules = [parse_rule("P(x) <- Q(x)."), parse_rule("P(x) <- R(x).")]
        grouped = compiler.compile_rules(rules)
        flat = compiler.datalog_rules(grouped["P"])
        assert len(flat) == 4  # 2 rules x 2 disjuncts each


class TestBaseTransitionRules:
    def test_shape(self):
        keep, inserted = base_transition_rules("Q", 1)
        assert str(keep.head) == "new$Q(x1)"
        assert [display_literal(l) for l in keep.body] == ["Q(x1)", "¬δQ(x1)"]
        assert [display_literal(l) for l in inserted.body] == ["ιQ(x1)"]

    def test_propositional(self):
        keep, inserted = base_transition_rules("Flag", 0)
        assert keep.head.arity == 0


class TestEventDetection:
    def test_disjunct_has_positive_event(self):
        transition = compile_transition_rule(parse_rule("P(x) <- Q(x) & not R(x)."))
        flags = [disjunct_has_positive_event(d) for d in transition.disjuncts]
        # Only the first (all-old) disjunct lacks a positive event.
        assert flags == [False, True, True, True]
