"""Protocol fuzzing: malformed frames and payloads never traceback or hang.

Three layers, hostile input at each:

- the pure decoders (``decode_request`` / ``decode_response``) under
  hypothesis-generated garbage -- the only allowed failure is
  :class:`ProtocolError`;
- typed request deserialisation (``UpdateRequest.of``) under junk
  parameter payloads -- the only allowed failure is a
  :class:`~repro.datalog.errors.DatalogError` subclass (so the dispatcher
  maps it to a typed wire error, never ``"internal"``);
- a live server under raw-socket garbage -- every frame gets either a
  typed error response or a clean close, within a deadline, and the
  session (or at least the server) keeps working afterwards.
"""

from __future__ import annotations

import json
import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.errors import DatalogError
from repro.requests import REQUEST_TYPES, UpdateRequest
from repro.server import DatabaseEngine, ServerThread, protocol

#: Wire error types a fuzzed frame may legitimately produce.
TYPED_ERRORS = {name for _, name in protocol._ERROR_TYPES}


# -- the pure decoders ---------------------------------------------------------


class TestDecodeFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_decode_request_garbage_bytes(self, data):
        try:
            request = protocol.decode_request(data)
            assert isinstance(request.op, str) and request.op
        except protocol.ProtocolError:
            pass  # the only exception the server loop handles

    @given(st.text(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_decode_request_garbage_text(self, text):
        try:
            protocol.decode_request(text)
        except protocol.ProtocolError:
            pass

    @given(st.recursive(
        st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False)
        | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=10))
    @settings(max_examples=200, deadline=None)
    def test_decode_request_arbitrary_json(self, payload):
        try:
            protocol.decode_request(json.dumps(payload))
        except protocol.ProtocolError:
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_decode_response_garbage(self, data):
        try:
            protocol.decode_response(data)
        except (protocol.ProtocolError, UnicodeDecodeError):
            pass


# -- typed request deserialisation ---------------------------------------------


JUNK_PARAMS = [
    {},
    {"transaction": 42},
    {"transaction": ""},
    {"transaction": "insert (("},
    {"transaction": ["insert P(A)"]},
    {"goal": []},
    {"goal": ""},
    {"goal": "P(x"},
    {"predicates": "Works", "transaction": "insert Works(A)"},
    {"predicates": [1, 2], "transaction": "insert Works(A)"},
    {"conditions": [], "transaction": "insert Works(A)"},
    {"conditions": "Unemp", "transaction": "insert Works(A)"},
    {"requests": []},
    {"requests": 7},
    {"requests": [{"op": "x"}]},
    {"on_violation": "explode", "transaction": "insert Works(A)"},
    {"timeout": "soon", "transaction": "insert Works(A)"},
    {"timeout": -1, "transaction": "insert Works(A)"},
    {"unexpected": object},
]


class TestTypedRequestFuzz:
    @pytest.mark.parametrize("op", sorted(REQUEST_TYPES))
    @pytest.mark.parametrize("params", JUNK_PARAMS,
                             ids=lambda p: repr(sorted(p))[:40])
    def test_junk_params_raise_typed_errors_only(self, op, params):
        """Either a valid typed request or a DatalogError -- nothing the
        dispatcher would report as 'internal'."""
        try:
            request = UpdateRequest.of(op, params)
        except DatalogError as error:
            assert protocol.error_type_of(error) != "internal"
        else:
            assert isinstance(request, UpdateRequest)

    def test_unknown_op_is_a_protocol_error(self):
        with pytest.raises(DatalogError) as excinfo:
            UpdateRequest.of("no-such-op", {})
        assert protocol.error_type_of(excinfo.value) == "protocol"


# -- the live server -----------------------------------------------------------


@pytest.fixture
def port(tmp_path, employment_db):
    engine = DatabaseEngine.open(tmp_path / "fuzz", initial=employment_db)
    with ServerThread(engine, max_line_bytes=4096) as bound:
        yield bound


def raw_exchange(port: int, frames: bytes, timeout: float = 10.0
                 ) -> list[bytes]:
    """Send raw bytes, return the response lines until the server closes.

    The socket timeout is the no-hang guarantee: a server that neither
    answers nor closes fails the test within *timeout*.
    """
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout) as sock:
        sock.sendall(frames)
        sock.shutdown(socket.SHUT_WR)
        received = b""
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            received += chunk
    return [line for line in received.split(b"\n") if line]


def assert_typed_error(line: bytes, expect: str | None = None) -> dict:
    response = json.loads(line)
    assert response["ok"] is False
    error = response["error"]
    assert error["type"] in TYPED_ERRORS | {"internal"}
    assert error["type"] != "internal", error
    assert "Traceback" not in error["message"]
    if expect is not None:
        assert error["type"] == expect, error
    return response


MALFORMED_FRAMES = [
    (b"{{{not json}}}\n", "protocol"),
    (b"[1, 2, 3]\n", "protocol"),
    (b'"just a string"\n', "protocol"),
    (b'{"v": 99, "op": "ping"}\n', "protocol"),
    (b'{"v": 1}\n', "protocol"),
    (b'{"v": 1, "op": 7}\n', "protocol"),
    (b'{"v": 1, "op": ""}\n', "protocol"),
    (b'{"v": 1, "op": "ping", "params": []}\n', "protocol"),
    (b'{"v": 1, "op": "frobnicate"}\n', "protocol"),
    (b"\xff\xfe\xfd garbage \xff\n", "protocol"),
    (b'{"v": 1, "op": "commit"}\n', "protocol"),
    (b'{"v": 1, "op": "commit", "params": {"transaction": 42}}\n',
     "protocol"),
    (b'{"v": 1, "op": "commit", "params": {"transaction": "insert (("}}\n',
     "parse"),
    (b'{"v": 1, "op": "query", "params": {"goal": "Unemp(x"}}\n',
     "parse"),
    (b'{"v": 1, "op": "commit", "params": {"transaction": "insert Unemp(A)"}}\n',
     "transaction"),
    (b'{"v": 1, "op": "downward", "params": {"requests": [3]}}\n',
     "protocol"),
]


class TestServerFuzz:
    @pytest.mark.parametrize("frame,expected",
                             MALFORMED_FRAMES,
                             ids=[f[:30].decode("latin-1")
                                  for f, _ in MALFORMED_FRAMES])
    def test_malformed_frame_gets_typed_error(self, port, frame, expected):
        lines = raw_exchange(port, frame)
        assert lines, "server closed without answering"
        assert_typed_error(lines[0], expected)

    def test_session_survives_a_burst_of_garbage(self, port):
        burst = b"".join(frame for frame, _ in MALFORMED_FRAMES)
        ping = b'{"v": 1, "op": "ping", "id": 99}\n'
        lines = raw_exchange(port, burst + ping)
        assert len(lines) == len(MALFORMED_FRAMES) + 1
        for line in lines[:-1]:
            assert_typed_error(line)
        final = json.loads(lines[-1])
        assert final["ok"] and final["id"] == 99
        assert final["result"] == {"pong": True}

    def test_oversized_line_is_refused_not_hung(self, port):
        huge = b'{"v": 1, "op": "ping", "padding": "' + b"x" * 8192 + b'"}\n'
        lines = raw_exchange(port, huge)
        assert lines, "server closed without answering"
        response = json.loads(lines[0])
        assert response["ok"] is False
        assert response["error"]["type"] == "protocol"
        assert "too long" in response["error"]["message"]

    def test_truncated_frame_at_eof(self, port):
        # No trailing newline: the client died mid-frame.  The server may
        # answer the fragment with a typed error or just close; both are
        # fine, hanging or dying is not.
        lines = raw_exchange(port, b'{"v": 1, "op": "pi')
        for line in lines:
            assert_typed_error(line)

    def test_empty_and_blank_lines_are_skipped(self, port):
        ping = b'{"v": 1, "op": "ping", "id": 5}\n'
        lines = raw_exchange(port, b"\n   \n\t\n" + ping)
        assert len(lines) == 1
        assert json.loads(lines[0])["ok"] is True

    def test_seeded_random_mutations(self, port):
        """Bit-flipped valid frames: every one answered or cleanly closed."""
        import random

        rng = random.Random(0xFA17)
        base = b'{"v": 1, "op": "query", "params": {"goal": "Unemp(x)"}}'
        for _ in range(30):
            mutated = bytearray(base)
            for _ in range(rng.randrange(1, 4)):
                position = rng.randrange(len(mutated))
                mutated[position] = rng.randrange(9, 127)
            lines = raw_exchange(port, bytes(mutated) + b"\n")
            for line in lines:
                response = json.loads(line)
                if not response["ok"]:
                    assert response["error"]["type"] in TYPED_ERRORS
                    assert "Traceback" not in response["error"]["message"]


# -- the subscription surface --------------------------------------------------


@pytest.fixture
def feed_server(tmp_path, employment_db):
    """A single-engine server plus its engine, for feed-state assertions."""
    engine = DatabaseEngine.open(tmp_path / "feedfuzz", initial=employment_db)
    with ServerThread(engine, max_line_bytes=4096) as bound:
        yield engine, bound


#: (params, expected wire error type; None = any typed error).
SUBSCRIBE_JUNK = [
    ({}, "protocol"),                             # goals missing entirely
    ({"goals": 7}, "protocol"),
    ({"goals": []}, "protocol"),
    ({"goals": [7]}, "protocol"),
    ({"goals": {"Unemp": 1}}, "protocol"),
    ({"goals": ["La"]}, "subscription"),          # base, not derived
    ({"goals": ["Works"]}, "subscription"),       # declared base
    ({"goals": ["Ghost"]}, "subscription"),       # unknown predicate
    ({"goals": ["Unemp("]}, None),                # malformed filter
    ({"goals": ["Unemp(x, y)"]}, "subscription"),  # wrong arity
    ({"goals": ["Unemp(A) & not Works(A)"]}, None),  # a rule, not a goal
    ({"goals": ["Unemp", "Ghost"]}, "subscription"),  # one bad spoils all
    ({"goals": ["\x00\xff"]}, None),
]


class TestSubscriptionFuzz:
    """Hostile subscribe/unsubscribe payloads: always a typed error, the
    session and every other subscriber keep working."""

    @pytest.mark.parametrize("params,expected", SUBSCRIBE_JUNK,
                             ids=lambda v: repr(v)[:40])
    def test_junk_subscribe_is_typed(self, feed_server, params, expected):
        engine, port = feed_server
        frame = (json.dumps({"v": 1, "op": "subscribe", "params": params})
                 + "\n").encode()
        lines = raw_exchange(port, frame)
        assert lines, "server closed without answering"
        assert_typed_error(lines[0], expected)
        assert engine.feed.active == 0, "rejected subscribe leaked state"

    @pytest.mark.parametrize("params", [
        {},
        {"subscription_id": ""},
        {"subscription_id": 7},
        {"subscription_id": ["sub-1"]},
        {"subscription_id": "sub-424242"},        # unknown id
        {"subscription_id": "../../etc/passwd"},
    ], ids=lambda p: repr(sorted(p.items()))[:40])
    def test_junk_unsubscribe_is_typed(self, feed_server, params):
        _, port = feed_server
        frame = (json.dumps({"v": 1, "op": "unsubscribe", "params": params})
                 + "\n").encode()
        lines = raw_exchange(port, frame)
        assert lines, "server closed without answering"
        assert_typed_error(lines[0])

    def test_unknown_unsubscribe_is_subscription_error(self, feed_server):
        _, port = feed_server
        frame = frame_of("unsubscribe", subscription_id="sub-424242")
        lines = raw_exchange(port, frame)
        assert_typed_error(lines[0], "subscription")

    def test_subscribe_then_flood_feed_survives(self, feed_server):
        """A subscriber whose session is flooded with garbage afterwards
        keeps its subscription: every junk frame answers typed, and a
        commit still pushes a delta down the same socket."""
        from repro.server.client import DatabaseClient

        engine, port = feed_server
        with DatabaseClient(port=port) as sub:
            info = sub.subscribe("Unemp")
            assert engine.feed.active == 1
            for params, _ in SUBSCRIBE_JUNK:
                with pytest.raises(DatalogError):
                    sub.call("subscribe", **params)
            with pytest.raises(DatalogError):
                sub.call("unsubscribe", subscription_id="sub-424242")
            assert engine.feed.active == 1, "flood killed the subscription"
            with DatabaseClient(port=port) as writer:
                writer.commit("insert La(Fz), insert U_benefit(Fz)")
            pushed = sub.next_frame(timeout=10)
            assert pushed["feed"] == info["subscription_id"]
            assert pushed["frame"]["kind"] == "delta"


# -- the sharded endpoint ------------------------------------------------------


@pytest.fixture
def group_port(tmp_path, employment_db):
    """A 3-shard EngineGroup behind the same wire protocol."""
    from repro.shard import EngineGroup

    group = EngineGroup.open(tmp_path / "fuzzgrp", employment_db, shards=3)
    with ServerThread(group, max_line_bytes=4096) as bound:
        yield bound


def frame_of(op: str, **params) -> bytes:
    return (json.dumps({"v": 1, "op": op, "params": params}) + "\n").encode()


class TestShardedEndpointFuzz:
    """The router surface: hostile routing keys get typed errors, never
    hangs, never 'internal'."""

    @pytest.mark.parametrize("frame,expected",
                             MALFORMED_FRAMES,
                             ids=[f[:30].decode("latin-1")
                                  for f, _ in MALFORMED_FRAMES])
    def test_malformed_frames_still_typed(self, group_port, frame, expected):
        # The sharded endpoint answers the shared malformed corpus with
        # typed errors too; routing-layer rejections may differ in type
        # from the single-engine answer but must never be 'internal'.
        lines = raw_exchange(group_port, frame)
        assert lines, "server closed without answering"
        assert_typed_error(lines[0])

    def test_commit_on_unknown_predicate_is_routing_error(self, group_port):
        lines = raw_exchange(group_port, frame_of(
            "commit", transaction="insert Ghost(A)"))
        assert_typed_error(lines[0], "routing")

    def test_commit_on_derived_predicate_is_routing_error(self, group_port):
        # No home shard for a derived predicate: the split itself refuses.
        lines = raw_exchange(group_port, frame_of(
            "commit", transaction="insert Unemp(A)"))
        assert_typed_error(lines[0], "routing")

    def test_single_state_op_is_routing_error(self, group_port):
        lines = raw_exchange(group_port, frame_of(
            "monitor", transaction="insert Works(A)", conditions=["Unemp"]))
        assert_typed_error(lines[0], "routing")

    @pytest.mark.parametrize("params", [
        {},
        {"transaction": "insert Works(A)"},              # no txn_id
        {"txn_id": "t"},                                  # no transaction
        {"transaction": 42, "txn_id": "t"},
        {"transaction": "insert ((", "txn_id": "t"},
        {"transaction": "insert Works(A)", "txn_id": 7},
    ], ids=lambda p: repr(sorted(p))[:40])
    def test_junk_prepare_params_are_typed(self, group_port, params):
        lines = raw_exchange(group_port, frame_of("prepare", **params))
        assert_typed_error(lines[0])

    @pytest.mark.parametrize("params", [
        {},
        {"txn_id": "t"},                                  # no decision
        {"decision": "commit"},                           # no txn_id
        {"txn_id": "t", "decision": "explode"},
        {"txn_id": "t", "decision": 1},
        {"txn_id": [], "decision": "abort"},
    ], ids=lambda p: repr(sorted(p))[:40])
    def test_junk_decide_params_are_typed(self, group_port, params):
        lines = raw_exchange(group_port, frame_of("decide", **params))
        assert_typed_error(lines[0])

    def test_participant_ops_against_the_group_are_routing_errors(
            self, group_port):
        # A multi-shard group is a coordinator, not a participant: wire
        # prepare/decide get typed routing errors, not a crash.
        lines = raw_exchange(group_port, frame_of(
            "decide", txn_id="never-prepared", decision="commit"))
        assert_typed_error(lines[0], "routing")
        lines = raw_exchange(group_port, frame_of(
            "prepare", transaction="insert Works(A)", txn_id="t-1"))
        assert_typed_error(lines[0], "routing")

    def test_session_survives_garbage_then_serves(self, group_port):
        burst = b"".join(frame for frame, _ in MALFORMED_FRAMES)
        burst += frame_of("commit", transaction="insert Ghost(A)")
        query = b'{"v": 1, "op": "query", "id": 7, ' \
                b'"params": {"goal": "Unemp(x)"}}\n'
        lines = raw_exchange(group_port, burst + query)
        assert len(lines) == len(MALFORMED_FRAMES) + 2
        for line in lines[:-1]:
            assert_typed_error(line)
        final = json.loads(lines[-1])
        assert final["ok"] and final["id"] == 7
        assert final["result"]["answers"] == [["Dolors"]]
