"""Tests for built-in (rigid) comparison predicates across every layer."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.builtins import evaluate_builtin, is_builtin
from repro.datalog.errors import ArityError, SafetyError
from repro.datalog.evaluation import BottomUpEvaluator
from repro.datalog.parser import parse_atom, parse_literal, parse_rule
from repro.datalog.terms import Constant
from repro.datalog.topdown import TopDownProver
from repro.events.events import Transaction, delete, insert
from repro.events.transition import compile_transition_rule
from repro.interpretations import (
    DownwardInterpreter,
    UpwardInterpreter,
    UpwardOptions,
    naive_changes,
    want_delete,
    want_insert,
)


def rows(*names):
    return frozenset(
        tuple(Constant(p) for p in (n if isinstance(n, tuple) else (n,)))
        for n in names
    )


class TestEvaluateBuiltin:
    def test_registry(self):
        assert is_builtin("Neq") and is_builtin("Lt")
        assert not is_builtin("P") and not is_builtin("neq")

    @pytest.mark.parametrize("name,args,expected", [
        ("Eq", ("A", "A"), True),
        ("Eq", ("A", "B"), False),
        ("Neq", ("A", "B"), True),
        ("Neq", ("A", "A"), False),
        ("Lt", (1, 2), True),
        ("Lt", (2, 1), False),
        ("Leq", (2, 2), True),
        ("Gt", ("B", "A"), True),
        ("Geq", ("A", "B"), False),
    ])
    def test_semantics(self, name, args, expected):
        row = tuple(Constant(a) for a in args)
        assert evaluate_builtin(name, row) is expected

    def test_mixed_types_compare_as_strings(self):
        assert evaluate_builtin("Lt", (Constant(10), Constant("A"))) is True

    def test_arity_checked(self):
        with pytest.raises(ArityError):
            evaluate_builtin("Neq", (Constant("A"),))


class TestStaticChecks:
    def test_builtin_head_rejected(self):
        with pytest.raises(SafetyError):
            DeductiveDatabase.from_source("Neq(x, y) <- P(x) & Q(y). P(A). Q(B).")

    def test_builtin_does_not_bind(self):
        with pytest.raises(SafetyError):
            DeductiveDatabase.from_source("P(x) <- Neq(x, A).")

    def test_builtin_arity_enforced(self):
        with pytest.raises(ArityError):
            DeductiveDatabase.from_source("P(x) <- Q(x) & Neq(x). Q(A).")

    def test_builtin_not_in_schema(self):
        db = DeductiveDatabase.from_source("P(x,y) <- Q(x) & Q(y) & Neq(x,y). Q(A).")
        assert not db.schema.is_base("Neq")
        assert not db.schema.is_derived("Neq")


class TestEvaluation:
    SOURCE = """
        Q(A). Q(B). Q(C).
        Pair(x, y) <- Q(x) & Q(y) & Neq(x, y).
    """

    @pytest.mark.parametrize("semi_naive", [True, False])
    def test_bottom_up(self, semi_naive):
        db = DeductiveDatabase.from_source(self.SOURCE)
        ev = BottomUpEvaluator(db, db.all_rules(), semi_naive=semi_naive)
        assert len(ev.extension("Pair")) == 6  # 3x3 minus the diagonal

    def test_negated_builtin(self):
        db = DeductiveDatabase.from_source(
            "Q(A). Q(B). Same(x, y) <- Q(x) & Q(y) & not Neq(x, y).")
        ev = BottomUpEvaluator(db, db.all_rules())
        assert ev.extension("Same") == rows(("A", "A"), ("B", "B"))

    def test_order_comparison(self):
        db = DeductiveDatabase.from_source("""
            Score(Ada, 90). Score(Alan, 70). Score(Grace, 95).
            Beats(x, y) <- Score(x, a) & Score(y, b) & Gt(a, b).
        """)
        ev = BottomUpEvaluator(db, db.all_rules())
        assert (Constant("Grace"), Constant("Alan")) in ev.extension("Beats")
        assert (Constant("Alan"), Constant("Grace")) not in ev.extension("Beats")

    def test_top_down_agrees(self):
        db = DeductiveDatabase.from_source(self.SOURCE)
        prover = TopDownProver(db, db.all_rules())
        assert prover.holds(parse_literal("Pair(A, B)"))
        assert not prover.holds(parse_literal("Pair(A, A)"))
        assert len(prover.answers(parse_atom("Pair(x, y)"))) == 6

    def test_unsafe_builtin_only_query(self):
        db = DeductiveDatabase.from_source(self.SOURCE)
        ev = BottomUpEvaluator(db, db.all_rules())
        with pytest.raises(SafetyError):
            list(ev.solve([parse_literal("Neq(x, y)")]))


class TestTransitionCompilation:
    def test_rigid_literal_not_expanded(self):
        rule = parse_rule("P(x, y) <- Q(x) & Q(y) & Neq(x, y).")
        transition = compile_transition_rule(rule)
        # Two expandable literals -> 4 disjuncts (not 8); Neq in each.
        assert len(transition.disjuncts) == 4
        for disjunct in transition.disjuncts:
            assert sum(1 for l in disjunct if l.predicate == "Neq") == 1

    def test_no_events_for_builtins(self):
        from repro.events import EventCompiler

        db = DeductiveDatabase.from_source(
            "Q(A). P(x, y) <- Q(x) & Q(y) & Neq(x, y).")
        program = EventCompiler().compile(db)
        assert "Neq" not in program.base_arities
        heads = {r.head.predicate for r in program.upward_rules}
        assert "new$Neq" not in heads


class TestUpwardWithBuiltins:
    SOURCE = """
        Q(A). Q(B).
        Pair(x, y) <- Q(x) & Q(y) & Neq(x, y).
    """

    @pytest.mark.parametrize("strategy", ["hybrid", "flat"])
    def test_induced_changes(self, strategy):
        db = DeductiveDatabase.from_source(self.SOURCE)
        interpreter = UpwardInterpreter(
            db, options=UpwardOptions(strategy=strategy))
        result = interpreter.interpret(Transaction([insert("Q", "C")]))
        assert result.insertions_of("Pair") == rows(
            ("A", "C"), ("C", "A"), ("B", "C"), ("C", "B"))

    def test_agrees_with_oracle(self):
        db = DeductiveDatabase.from_source(self.SOURCE)
        transaction = Transaction([delete("Q", "A"), insert("Q", "D")])
        hybrid = UpwardInterpreter(db).interpret(transaction)
        oracle = naive_changes(db, transaction)
        assert hybrid.insertions == oracle.insertions
        assert hybrid.deletions == oracle.deletions


class TestDownwardWithBuiltins:
    def test_insert_with_neq_guard(self):
        db = DeductiveDatabase.from_source(
            "Q(A). Pair(x, y) <- Q(x) & Q(y) & Neq(x, y).")
        result = DownwardInterpreter(db).interpret(
            want_insert("Pair", "A", "B"))
        assert Transaction([insert("Q", "B")]) in result.transactions()

    def test_diagonal_request_unsatisfiable(self):
        db = DeductiveDatabase.from_source(
            "Q(A). Pair(x, y) <- Q(x) & Q(y) & Neq(x, y).")
        result = DownwardInterpreter(db).interpret(
            want_insert("Pair", "A", "A"))
        assert not result.is_satisfiable

    def test_delete_with_guard(self):
        db = DeductiveDatabase.from_source(
            "Q(A). Q(B). Pair(x, y) <- Q(x) & Q(y) & Neq(x, y).")
        result = DownwardInterpreter(db).interpret(
            want_delete("Pair", "A", "B"))
        assert set(result.transactions()) == {
            Transaction([delete("Q", "A")]),
            Transaction([delete("Q", "B")]),
        }

    def test_translations_verified_by_oracle(self):
        db = DeductiveDatabase.from_source("""
            Score(Ada, 90). Score(Alan, 70).
            Leader(x) <- Score(x, a) & not Better(x).
            Better(x) <- Score(x, a) & Score(y, b) & Gt(b, a).
        """)
        result = DownwardInterpreter(db).interpret(
            want_insert("Leader", "Alan"))
        assert result.translations
        for translation in result.translations:
            induced = naive_changes(db, translation.transaction)
            assert (Constant("Alan"),) in induced.insertions_of("Leader")
