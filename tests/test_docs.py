"""Documentation accuracy: the README's Python snippets must run.

Docs that silently rot are worse than no docs; this test executes every
fenced ``python`` block in the README in one shared namespace (they build
on each other) and checks the claimed outputs.
"""

import re
from pathlib import Path


README = Path(__file__).resolve().parent.parent / "README.md"


def _python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, re.S)


class TestReadme:
    def test_python_snippets_execute(self, capsys):
        blocks = _python_blocks(README.read_text())
        assert blocks, "README should contain python examples"
        namespace: dict = {}
        for block in blocks:
            exec(block, namespace)  # noqa: S102 - executing our own docs
        out = capsys.readouterr().out
        # The quickstart's documented outputs.
        assert "{ιP(B)}" in out
        assert "δR(B)" in out

    def test_examples_listed_exist(self):
        text = README.read_text()
        for match in re.findall(r"`(\w+\.py)`", text):
            assert (README.parent / "examples" / match).exists(), match

    def test_docs_files_exist(self):
        for relative in ("docs/TUTORIAL.md", "docs/PAPER_MAP.md",
                         "DESIGN.md", "EXPERIMENTS.md"):
            assert (README.parent / relative).exists(), relative
