"""Tests for UpwardInterpreter.advance and UpdateProcessor.evolve."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import ComplexityLimitExceeded
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Constant
from repro.events.events import Transaction, delete, insert
from repro.core import UpdateProcessor
from repro.interpretations import (
    DownwardInterpreter,
    DownwardOptions,
    UpwardInterpreter,
    naive_changes,
    want_delete,
)


class TestAdvance:
    def test_advance_tracks_state_across_transactions(self, pqr_db):
        interpreter = UpwardInterpreter(pqr_db)
        first = Transaction([delete("R", "B")])
        result = interpreter.interpret(first)
        # Commit and advance.
        for event in result.transaction:
            pqr_db.remove_fact(event.predicate, *event.args)
        interpreter.advance(result)
        assert interpreter.old_extension("P") == {
            (Constant("A"),), (Constant("B"),)}
        # A second transaction is interpreted against the advanced state.
        second = Transaction([insert("R", "A")])
        result2 = interpreter.interpret(second)
        oracle = naive_changes(pqr_db, second)
        assert result2.deletions == oracle.deletions

    def test_long_transaction_chain_matches_fresh_interpreter(self):
        from repro.workloads import employment_database, random_transaction

        db = employment_database(25, seed=77)
        interpreter = UpwardInterpreter(db)
        for seed in range(10):
            if not db.base_predicates_with_facts():
                break
            transaction = random_transaction(db, n_events=2, seed=seed)
            result = interpreter.interpret(transaction)
            for event in result.transaction:
                if event.is_insertion:
                    db.add_fact(event.predicate, *event.args)
                else:
                    db.remove_fact(event.predicate, *event.args)
            interpreter.advance(result)
        fresh = UpwardInterpreter(db)
        assert interpreter.old_extension("Unemp") == \
            fresh.old_extension("Unemp")

    def test_advance_from_filtered_result_raises(self, employment_db):
        """A result restricted to some predicates cannot patch them all."""
        interpreter = UpwardInterpreter(employment_db)
        transaction = Transaction([insert("Works", "Maria")])
        partial = interpreter.interpret(transaction, predicates=["Ic1"])
        employment_db.add_fact("Works", "Maria")
        with pytest.raises(ValueError, match="partial UpwardResult"):
            interpreter.advance(partial)

    def test_advance_from_unknown_coverage_raises(self, employment_db):
        """Hand-built results carry no coverage and must be rejected."""
        from repro.interpretations import UpwardResult

        interpreter = UpwardInterpreter(employment_db)
        interpreter.old_extension("Unemp")  # warm the cache
        with pytest.raises(ValueError, match="unknown coverage"):
            interpreter.advance(UpwardResult({}, {}, Transaction()))

    def test_advance_on_cold_interpreter_stays_cold(self, employment_db):
        """Advancing before any materialisation must not materialise.

        A cold advance used to build the old state from the *already
        updated* database and then apply the deltas on top of it -- i.e.
        apply them twice.
        """
        interpreter = UpwardInterpreter(employment_db)
        transaction = Transaction([insert("Works", "Maria")])
        result = interpreter.interpret(transaction)
        # interpret() warms the cache, so simulate a fresh process instead.
        cold = UpwardInterpreter(employment_db)
        assert not cold.has_cached_state
        employment_db.add_fact("Works", "Maria")
        cold.advance(result)
        assert not cold.has_cached_state
        assert cold.old_extension("Unemp") == \
            UpwardInterpreter(employment_db).old_extension("Unemp")

    def test_advanced_old_state_feeds_transition_rules(self):
        """Regression: the old-state *view* must track advanced extensions.

        With stacked views (V2 reads V1), transition rules for V2 consult
        V1's old extension.  After an advance() the view used to keep
        serving the frozen pre-advance snapshot, so later interpretations
        diverged from a fresh interpreter.
        """
        from repro.workloads import (
            chain_join_views,
            random_database,
            random_transaction,
        )

        db = random_database(n_facts=60, domain_size=8, n_base=3, seed=0)
        chain_join_views(db, n_views=2)
        interpreter = UpwardInterpreter(db)
        for round_ in range(5):
            transaction = random_transaction(db, n_events=3, seed=round_)
            result = interpreter.interpret(transaction)
            for event in result.transaction:
                if event.is_insertion:
                    db.add_fact(event.predicate, *event.args)
                else:
                    db.remove_fact(event.predicate, *event.args)
            interpreter.advance(result)
            probe = random_transaction(db, n_events=3, seed=round_ + 50)
            advanced = interpreter.interpret(probe)
            oracle = naive_changes(db, probe)
            assert advanced.insertions == oracle.insertions, round_
            assert advanced.deletions == oracle.deletions, round_


class TestEvolve:
    def test_evolve_commits_rules(self, pqr_db):
        processor = UpdateProcessor(pqr_db)
        result = processor.evolve(add_rules=[parse_rule("P(x) <- R(x).")])
        assert result.induced.insertions_of("P") == \
            frozenset({(Constant("B"),)})
        # Committed: the live database now derives P(B).
        assert processor.db.query("P(B)") == [()]

    def test_evolve_removes_rules(self, pqr_db):
        processor = UpdateProcessor(pqr_db)
        (rule_,) = pqr_db.rules
        result = processor.evolve(remove_rules=[rule_])
        assert result.induced.deletions_of("P")
        assert processor.db.query("Q(A)") == [()]
        assert not processor.db.rules

    def test_evolve_constraint_then_check(self, employment_db):
        processor = UpdateProcessor(employment_db)
        processor.evolve(add_constraints=[
            parse_rule("Ic2(x) <- Works(x) & U_benefit(x).")])
        # New constraint is live: working + benefit now violates.
        verdict = processor.check(Transaction([
            insert("Works", "Dolors")]))
        assert not verdict.ok
        assert "Ic2" in verdict.violated_constraints()


class TestComplexityGuard:
    def test_max_disjuncts_raises(self):
        # Many independent violations make the global ¬new$Ic negation
        # combinatorial; a tiny bound trips immediately.
        source = ["Ic1(x) <- A(x) & not B(x)."]
        for index in range(12):
            source.append(f"A(C{index}).")
        db = DeductiveDatabase.from_source("\n".join(source))
        db.declare_base("B", 1)
        interpreter = DownwardInterpreter(
            db, options=DownwardOptions(max_disjuncts=10))
        from repro.datalog.database import GLOBAL_IC

        with pytest.raises(ComplexityLimitExceeded):
            interpreter.interpret(want_delete(GLOBAL_IC))
