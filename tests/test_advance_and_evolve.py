"""Tests for UpwardInterpreter.advance and UpdateProcessor.evolve."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import ComplexityLimitExceeded
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Constant
from repro.events.events import Transaction, delete, insert
from repro.core import UpdateProcessor
from repro.interpretations import (
    DownwardInterpreter,
    DownwardOptions,
    UpwardInterpreter,
    naive_changes,
    want_delete,
)


class TestAdvance:
    def test_advance_tracks_state_across_transactions(self, pqr_db):
        interpreter = UpwardInterpreter(pqr_db)
        first = Transaction([delete("R", "B")])
        result = interpreter.interpret(first)
        # Commit and advance.
        for event in result.transaction:
            pqr_db.remove_fact(event.predicate, *event.args)
        interpreter.advance(result)
        assert interpreter.old_extension("P") == {
            (Constant("A"),), (Constant("B"),)}
        # A second transaction is interpreted against the advanced state.
        second = Transaction([insert("R", "A")])
        result2 = interpreter.interpret(second)
        oracle = naive_changes(pqr_db, second)
        assert result2.deletions == oracle.deletions

    def test_long_transaction_chain_matches_fresh_interpreter(self):
        from repro.workloads import employment_database, random_transaction

        db = employment_database(25, seed=77)
        interpreter = UpwardInterpreter(db)
        for seed in range(10):
            if not db.base_predicates_with_facts():
                break
            transaction = random_transaction(db, n_events=2, seed=seed)
            result = interpreter.interpret(transaction)
            for event in result.transaction:
                if event.is_insertion:
                    db.add_fact(event.predicate, *event.args)
                else:
                    db.remove_fact(event.predicate, *event.args)
            interpreter.advance(result)
        fresh = UpwardInterpreter(db)
        assert interpreter.old_extension("Unemp") == \
            fresh.old_extension("Unemp")


class TestEvolve:
    def test_evolve_commits_rules(self, pqr_db):
        processor = UpdateProcessor(pqr_db)
        result = processor.evolve(add_rules=[parse_rule("P(x) <- R(x).")])
        assert result.induced.insertions_of("P") == \
            frozenset({(Constant("B"),)})
        # Committed: the live database now derives P(B).
        assert processor.db.query("P(B)") == [()]

    def test_evolve_removes_rules(self, pqr_db):
        processor = UpdateProcessor(pqr_db)
        (rule_,) = pqr_db.rules
        result = processor.evolve(remove_rules=[rule_])
        assert result.induced.deletions_of("P")
        assert processor.db.query("Q(A)") == [()]
        assert not processor.db.rules

    def test_evolve_constraint_then_check(self, employment_db):
        processor = UpdateProcessor(employment_db)
        processor.evolve(add_constraints=[
            parse_rule("Ic2(x) <- Works(x) & U_benefit(x).")])
        # New constraint is live: working + benefit now violates.
        verdict = processor.check(Transaction([
            insert("Works", "Dolors")]))
        assert not verdict.ok
        assert "Ic2" in verdict.violated_constraints()


class TestComplexityGuard:
    def test_max_disjuncts_raises(self):
        # Many independent violations make the global ¬new$Ic negation
        # combinatorial; a tiny bound trips immediately.
        source = ["Ic1(x) <- A(x) & not B(x)."]
        for index in range(12):
            source.append(f"A(C{index}).")
        db = DeductiveDatabase.from_source("\n".join(source))
        db.declare_base("B", 1)
        interpreter = DownwardInterpreter(
            db, options=DownwardOptions(max_disjuncts=10))
        from repro.datalog.database import GLOBAL_IC

        with pytest.raises(ComplexityLimitExceeded):
            interpreter.interpret(want_delete(GLOBAL_IC))
