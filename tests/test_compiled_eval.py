"""The compiled evaluation engine: differentials and regression tests.

The headline property: on arbitrary stratified programs the compiled
closure-chain engine computes exactly the same perfect model as the
tuple-at-a-time interpreter in both its naive and semi-naive iteration
modes, and the magic rewrite evaluated compiled agrees with full compiled
evaluation.  Alongside it, regression tests for the latent bugs fixed in
the same change:

- ``magic_answers`` ignored repeated variables in the query atom;
- ``Relation.add``/``discard`` dropped every column index per mutation;
- arity-mismatched patterns silently matched by ``zip`` truncation;
- ``materialize()`` returned a ``Materialization`` aliasing live stats.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import DeductiveDatabase
from repro.datalog.compile_plan import (
    ENGINE_COMPILED,
    ENGINE_INTERPRETED,
    ENGINES,
    ENV_ENGINE,
    order_body,
    resolve_engine,
)
from repro.datalog.database import Relation
from repro.datalog.errors import ArityError, SafetyError
from repro.datalog.evaluation import BottomUpEvaluator, ExtensionalStore
from repro.datalog.magic import _SeededSource, magic_answers
from repro.datalog.parser import parse_atom, parse_rule
from repro.datalog.terms import Constant, Variable

from tests.test_properties import CONSTANTS, databases, positive_databases


def _model(db, *, engine, semi_naive=True):
    evaluator = BottomUpEvaluator(db, db.all_rules(),
                                  semi_naive=semi_naive, engine=engine)
    return evaluator, evaluator.materialize()


class TestEngineDifferential:
    """Interpreted-naive ≡ interpreted-semi-naive ≡ compiled."""

    @given(db=databases())
    @settings(max_examples=80, deadline=None)
    def test_three_engines_same_perfect_model(self, db):
        naive, naive_model = _model(db, engine="interpreted",
                                    semi_naive=False)
        semi, semi_model = _model(db, engine="interpreted")
        comp, comp_model = _model(db, engine="compiled")
        assert naive.engine == semi.engine == ENGINE_INTERPRETED
        assert comp.engine == ENGINE_COMPILED
        predicates = (set(naive_model.derived) | set(semi_model.derived)
                      | set(comp_model.derived))
        for predicate in predicates:
            rows = semi_model.extension(predicate)
            assert naive_model.extension(predicate) == rows
            assert comp_model.extension(predicate) == rows
        # facts_derived counts fresh rows -- engine-independent by design.
        assert comp.stats.facts_derived == semi.stats.facts_derived

    @given(db=positive_databases(),
           view=st.sampled_from(["V1", "V2"]),
           constant=st.sampled_from(CONSTANTS + [None]))
    @settings(max_examples=60, deadline=None)
    def test_magic_rewrite_through_compiled_engine(self, db, view, constant):
        if view == "V2" and not any(r.head.predicate == "V2"
                                    for r in db.rules):
            return
        goal = parse_atom(f"{view}({constant})" if constant else f"{view}(x)")
        _, full = _model(db, engine="compiled")
        expected = {
            row for row in full.extension(view)
            if constant is None or row[0] == Constant(constant)
        }
        rules = db.all_rules()
        assert magic_answers(db, rules, goal, engine="compiled") == expected
        assert magic_answers(db, rules, goal, engine="interpreted") == expected

    @given(db=databases())
    @settings(max_examples=40, deadline=None)
    def test_compiled_answers_match_interpreted(self, db):
        """Goal solving over the materialized model is engine-agnostic."""
        comp = BottomUpEvaluator(db, db.all_rules(), engine="compiled")
        interp = BottomUpEvaluator(db, db.all_rules(), engine="interpreted")
        for predicate in sorted(db.schema.derived):
            arity = db.schema.arity(predicate)
            goal = parse_atom(
                f"{predicate}({', '.join(f'x{i}' for i in range(arity))})"
                if arity else predicate)
            normalize = lambda answers: {  # noqa: E731 -- row-set view
                tuple(sorted((str(v), c) for v, c in subst.items()))
                for subst in answers}
            assert normalize(comp.answers(goal)) \
                == normalize(interp.answers(goal))


class TestMagicRepeatedVariables:
    """Regression: ``Self(x, x)`` must only admit rows with equal columns."""

    def test_repeated_variable_query(self):
        db = DeductiveDatabase.from_source("""
            E(A, B). E(C, C).
            Self(x, y) <- E(x, y).
        """)
        goal = parse_atom("Self(x, x)")
        expected = {(Constant("C"), Constant("C"))}
        full = BottomUpEvaluator(db, db.all_rules())
        assert {row for row in full.extension("Self")
                if row[0] == row[1]} == expected
        for engine in ENGINES:
            assert magic_answers(db, db.all_rules(), goal,
                                 engine=engine) == expected

    def test_repeated_variable_with_constant(self):
        """Mixed pattern: constants bind, repeated variables equate."""
        db = DeductiveDatabase.from_source("""
            T(A, A, B). T(A, B, B). T(B, A, A).
            V(x, y, z) <- T(x, y, z).
        """)
        goal = parse_atom("V(x, x, B)")
        # Only rows whose first two columns coincide and third is B.
        assert magic_answers(db, db.all_rules(), goal) == {
            (Constant("A"), Constant("A"), Constant("B"))}

    def test_recursive_repeated_variable_query(self):
        """The fix also holds on recursive programs (cycle detection)."""
        db = DeductiveDatabase.from_source("""
            E(A, B). E(B, A). E(B, C).
            Path(x, y) <- E(x, y).
            Path(x, y) <- E(x, z) & Path(z, y).
        """)
        goal = parse_atom("Path(x, x)")
        answers = magic_answers(db, db.all_rules(), goal)
        assert answers == {(Constant("A"), Constant("A")),
                           (Constant("B"), Constant("B"))}


class TestIncrementalRelationIndexes:
    """Regression: mutations must patch live indexes, not drop them."""

    def test_add_and_discard_keep_indexes(self):
        relation = Relation("B2", 2)
        a, b, c = Constant("A"), Constant("B"), Constant("C")
        relation.add((a, b))
        relation.add((b, c))
        x = Variable("x")
        assert set(relation.lookup((a, x))) == {(a, b)}
        assert relation.index_builds == 1
        # Insertions and deletions after the build must be visible through
        # the same index without a rebuild.
        relation.add((a, c))
        assert set(relation.lookup((a, x))) == {(a, b), (a, c)}
        relation.discard((a, b))
        assert set(relation.lookup((a, x))) == {(a, c)}
        assert set(relation.lookup((x, c))) == {(a, c), (b, c)}
        assert relation.index_builds == 2  # one per probed column, ever

    def test_commits_do_not_rebuild_indexes(self, tmp_path):
        """Engine-level: steady-state commits leave build counters flat."""
        from repro.events.events import parse_transaction
        from repro.server.engine import DatabaseEngine

        initial = DeductiveDatabase.from_source("""
            B1(A). B1(B). B2(A, B). B2(B, C).
            V1(x) <- B2(x, y) & B1(y).
            V2(x) <- B2(x, y) & V1(y).
        """)
        engine = DatabaseEngine.open(tmp_path / "db", initial=initial)
        try:
            engine.query("V2(x)")  # warm evaluators and column indexes
            builds = engine.db.index_build_count()
            for source in ("{insert B2(C, A)}", "{delete B2(A, B)}",
                           "{insert B1(C)}", "{insert B2(A, C)}"):
                assert engine.commit(parse_transaction(source)).applied
                engine.query("V2(x)")
            assert engine.db.index_build_count() == builds, (
                "commits triggered from-scratch index rebuilds")
        finally:
            engine.close()


class TestArityGuards:
    """Regression: length mismatches raise instead of zip-truncating."""

    def test_extensional_store_add(self):
        store = ExtensionalStore()
        store.add("P", (Constant("A"), Constant("B")))
        with pytest.raises(ArityError):
            store.add("P", (Constant("A"),))

    def test_extensional_store_lookup(self):
        store = ExtensionalStore()
        store.add("P", (Constant("A"), Constant("B")))
        with pytest.raises(ArityError):
            list(store.lookup("P", (Constant("A"),)))
        # A short pattern used to zip-truncate and "match" the stored row.
        assert set(store.lookup("P", (Constant("A"), Variable("y")))) \
            == {(Constant("A"), Constant("B"))}

    def test_seeded_source_lookup(self):
        seed = ("magic$V@b", (Constant("A"),))
        source = _SeededSource(ExtensionalStore(), *seed)
        with pytest.raises(ArityError):
            list(source.lookup("magic$V@b", (Variable("x"), Variable("y"))))
        assert list(source.lookup("magic$V@b", (Variable("x"),))) \
            == [(Constant("A"),)]

    def test_magic_answer_filter(self):
        db = DeductiveDatabase.from_source("""
            B1(A).
            V1(x) <- B1(x).
        """)
        with pytest.raises(ArityError):
            magic_answers(db, db.all_rules(), parse_atom("V1(x, y)"))


class TestMaterializationSnapshot:
    """Regression: a held ``Materialization`` must not track live stats."""

    def test_stats_are_a_snapshot(self):
        db = DeductiveDatabase.from_source("""
            B1(A). B1(B). B2(A, B).
            V1(x) <- B2(x, y) & B1(y).
        """)
        evaluator = BottomUpEvaluator(db, db.all_rules())
        held = evaluator.materialize()
        counters = held.stats.to_counters()
        assert held.stats is not evaluator.stats
        # Goal solving keeps counting work on the evaluator's live stats...
        for _ in range(3):
            evaluator.answers(parse_atom("V1(x)"))
        assert evaluator.stats.literals_matched \
            > counters["literals_matched"]
        # ...while the held snapshot stays exactly where it was taken.
        assert held.stats.to_counters() == counters

    def test_extensions_are_frozen(self):
        db = DeductiveDatabase.from_source("""
            B1(A).
            V1(x) <- B1(x).
        """)
        evaluator = BottomUpEvaluator(db, db.all_rules())
        held = evaluator.materialize()
        assert isinstance(held.extension("V1"), frozenset)


class TestOrderBody:
    def test_tests_run_as_soon_as_bound(self):
        body = parse_rule("V(x) <- not B2(x, x) & B1(x).").body
        # The negative literal is unsafe until B1 binds x.
        assert order_body(body) == (1, 0)

    def test_builtin_after_binding_join(self):
        body = parse_rule("V(x, y) <- x != y & B2(x, y).").body
        assert order_body(body) == (1, 0)

    def test_size_estimates_break_ties(self):
        body = parse_rule("V(x) <- B1(x) & B3(x).").body
        sizes = {"B1": 100, "B3": 2}
        assert order_body(body, size_of=sizes.__getitem__) == (1, 0)
        sizes = {"B1": 2, "B3": 100}
        assert order_body(body, size_of=sizes.__getitem__) == (0, 1)

    def test_bound_variables_seed_the_order(self):
        body = parse_rule("V(x, y) <- B1(x) & B2(x, y).").body
        # With x pre-bound (a delta literal bound it), B1(x) is a pure
        # membership test and runs before the widening join.
        assert order_body(body, bound=[Variable("x")]) == (0, 1)

    def test_most_bound_literal_first(self):
        body = parse_rule("V(y, z) <- B2(y, z) & B2(x, y).").body
        order = order_body(body, bound=[Variable("x")])
        # B2(x, y) has one bound position, B2(y, z) none: join it first.
        assert order == (1, 0)

    def test_unsafe_body_raises(self):
        body = parse_rule("V(x) <- B1(x) & not B2(y, y).").body
        with pytest.raises(SafetyError):
            order_body(body)


class TestResolveEngine:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(ENV_ENGINE, raising=False)
        assert resolve_engine(None) == ENGINE_COMPILED
        assert resolve_engine("compiled") == ENGINE_COMPILED
        assert resolve_engine("interpreted") == ENGINE_INTERPRETED

    def test_naive_iteration_pins_the_interpreter(self):
        assert resolve_engine(None, semi_naive=False) == ENGINE_INTERPRETED
        # ...unless an engine is named explicitly.
        assert resolve_engine("compiled", semi_naive=False) == ENGINE_COMPILED

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("vectorized")

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(ENV_ENGINE, "interpreted")
        assert resolve_engine(None) == ENGINE_INTERPRETED
        assert resolve_engine("compiled") == ENGINE_COMPILED
        # The naive-iteration ablation only exists interpreted, so the
        # env var never overrides semi_naive=False either way.
        monkeypatch.setenv(ENV_ENGINE, "compiled")
        assert resolve_engine(None, semi_naive=False) == ENGINE_INTERPRETED

    def test_bad_environment_value_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_ENGINE, "turbo")
        with pytest.raises(ValueError):
            resolve_engine(None)


class TestPlanStats:
    def test_compiled_run_populates_counters(self):
        db = DeductiveDatabase.from_source("""
            B1(A). B1(B). B2(A, B). B2(B, A). B2(A, C).
            V1(x) <- B2(x, y) & B1(y).
            V1(x) <- B1(x).
            V2(x) <- B2(x, y) & V1(y).
            V3(x) <- B2(x, y).
        """)
        evaluator = BottomUpEvaluator(db, db.all_rules(), engine="compiled")
        evaluator.materialize()
        stats = evaluator.plan_stats
        assert stats.rules_compiled >= 4
        assert stats.index_probes > 0
        # V3's projection of B2(A, B) and B2(A, C) collapses to one row
        # through the intern table within a single batch.
        assert stats.rows_interned >= 1
        counters = stats.to_counters()
        assert set(counters) == {"rules_compiled", "index_builds",
                                 "index_probes", "rows_interned"}

    def test_interpreted_run_leaves_counters_zero(self):
        db = DeductiveDatabase.from_source("""
            B1(A).
            V1(x) <- B1(x).
        """)
        evaluator = BottomUpEvaluator(db, db.all_rules(),
                                      engine="interpreted")
        evaluator.materialize()
        assert evaluator.plan_stats.to_counters() == {
            "rules_compiled": 0, "index_builds": 0,
            "index_probes": 0, "rows_interned": 0}

    def test_derived_predicates_are_indexed(self):
        """The planner indexes derived extensions like base ones.

        V2 joins the *derived* V1 on a bound column; the interpreter
        full-scans it, the compiled engine must build (and count) an
        index over it.
        """
        db = DeductiveDatabase.from_source("""
            B1(A). B1(B). B2(A, B). B2(B, A). B2(A, A).
            V1(x) <- B2(x, y) & B1(y).
            V2(x) <- B2(x, y) & V1(y).
        """)
        evaluator = BottomUpEvaluator(db, db.all_rules(), engine="compiled")
        evaluator.materialize()
        assert evaluator.plan_stats.index_builds >= 1
