"""Tests for the magic-sets transformation."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import SafetyError
from repro.datalog.evaluation import BottomUpEvaluator
from repro.datalog.magic import magic_answers, magic_rewrite
from repro.datalog.parser import parse_atom
from repro.datalog.terms import Constant


CHAIN = " ".join(f"Edge(N{i}, N{i + 1})." for i in range(40)) + """
    Path(x, y) <- Edge(x, y).
    Path(x, y) <- Edge(x, z) & Path(z, y).
"""

TWO_ISLANDS = """
    Edge(A1, A2). Edge(A2, A3).
    Edge(B1, B2). Edge(B2, B3). Edge(B3, B1).
    Path(x, y) <- Edge(x, y).
    Path(x, y) <- Edge(x, z) & Path(z, y).
"""


def full_answers(db, query):
    evaluator = BottomUpEvaluator(db, db.all_rules())
    rows = set()
    for row in evaluator.extension(query.predicate):
        if all(not isinstance(t, Constant) or t == v
               for t, v in zip(query.args, row)):
            rows.add(row)
    return rows


class TestRewriteShape:
    def test_adorned_and_magic_rules_generated(self):
        db = DeductiveDatabase.from_source(TWO_ISLANDS)
        program = magic_rewrite(db.all_rules(), parse_atom("Path(A1, y)"))
        assert program.answer_predicate == "Path@bf"
        heads = {r.head.predicate for r in program.rules}
        assert "Path@bf" in heads
        assert "magic$Path@bf" in heads
        assert program.seed_row == (Constant("A1"),)

    def test_derived_negation_rejected(self):
        db = DeductiveDatabase.from_source("""
            Q(A). P(x) <- Q(x). S(x) <- Q(x) & not P(x).
        """)
        with pytest.raises(SafetyError):
            magic_rewrite(db.all_rules(), parse_atom("S(x)"))

    def test_base_negation_allowed(self):
        db = DeductiveDatabase.from_source("""
            Q(A). Q(B). R(B).
            P(x) <- Q(x) & not R(x).
        """)
        answers = magic_answers(db, db.all_rules(), parse_atom("P(A)"))
        assert answers == {(Constant("A"),)}


class TestEquivalence:
    @pytest.mark.parametrize("query", [
        "Path(A1, y)", "Path(x, B2)", "Path(A1, A3)", "Path(B1, A1)",
        "Path(x, y)",
    ])
    def test_matches_full_evaluation(self, query):
        db = DeductiveDatabase.from_source(TWO_ISLANDS)
        goal = parse_atom(query)
        assert magic_answers(db, db.all_rules(), goal) == \
            full_answers(db, goal)

    def test_non_recursive_join(self):
        db = DeductiveDatabase.from_source("""
            Emp(Ada, Tools). Emp(Alan, Tools). Emp(Grace, Compilers).
            Dept(Tools, Building1). Dept(Compilers, Building2).
            Location(e, b) <- Emp(e, d) & Dept(d, b).
        """)
        goal = parse_atom("Location(Ada, b)")
        assert magic_answers(db, db.all_rules(), goal) == \
            full_answers(db, goal)

    def test_multi_level_views(self):
        db = DeductiveDatabase.from_source("""
            Q(A). Q(B). S(A).
            P(x) <- Q(x).
            W(x) <- P(x) & S(x).
        """)
        goal = parse_atom("W(A)")
        assert magic_answers(db, db.all_rules(), goal) == {(Constant("A"),)}

    def test_with_builtins(self):
        db = DeductiveDatabase.from_source("""
            Score(Ada, 90). Score(Alan, 70).
            Beats(x, y) <- Score(x, a) & Score(y, b) & Gt(a, b).
        """)
        goal = parse_atom("Beats(Ada, y)")
        assert magic_answers(db, db.all_rules(), goal) == \
            full_answers(db, goal)


class TestGoalDirection:
    def test_bound_query_does_less_work(self):
        db = DeductiveDatabase.from_source(CHAIN)
        goal = parse_atom("Path(N35, y)")  # near the chain's end

        magic_stats: list = []
        answers = magic_answers(db, db.all_rules(), goal, magic_stats)
        assert len(answers) == 5  # N35 -> N36..N40

        full = BottomUpEvaluator(db, db.all_rules())
        full.materialize()
        assert magic_stats[0].facts_derived < full.stats.facts_derived / 5

    def test_second_island_untouched(self):
        db = DeductiveDatabase.from_source(TWO_ISLANDS)
        goal = parse_atom("Path(A1, y)")
        program = magic_rewrite(db.all_rules(), goal)
        evaluator = BottomUpEvaluator(program.seed_source(db),
                                      list(program.rules))
        reached = evaluator.extension(program.answer_predicate)
        # Only A-island tuples are derived at all.
        assert all(row[0].value.startswith("A") for row in reached)
