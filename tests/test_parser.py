"""Unit tests for the concrete-syntax parser."""

import pytest

from repro.datalog.errors import ParseError
from repro.datalog.parser import (
    parse_atom,
    parse_literal,
    parse_program,
    parse_rule,
    tokenize,
)
from repro.datalog.rules import Atom
from repro.datalog.terms import Constant, Variable


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("P(x) <- Q(x).")]
        assert kinds == ["name", "punct", "name", "punct", "arrow",
                         "name", "punct", "name", "punct", "punct"]

    def test_comments_skipped(self):
        assert [t.text for t in tokenize("% hello\nP.")] == ["P", "."]
        assert [t.text for t in tokenize("# hello\nP.")] == ["P", "."]

    def test_positions(self):
        tokens = list(tokenize("P.\nQ."))
        assert (tokens[2].line, tokens[2].column) == (2, 1)

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            list(tokenize("P(x) @ Q"))


class TestParseAtom:
    def test_simple(self):
        assert parse_atom("P(x, A)") == Atom("P", (Variable("x"), Constant("A")))

    def test_propositional(self):
        assert parse_atom("P") == Atom("P")

    def test_integers(self):
        assert parse_atom("Age(x, 42)").args[1] == Constant(42)

    def test_quoted_strings_are_constants(self):
        assert parse_atom("P('lower case')").args[0] == Constant("lower case")
        assert parse_atom('P("double")').args[0] == Constant("double")

    def test_empty_args_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("P()")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("P(x) extra")


class TestParseLiteral:
    def test_positive(self):
        assert parse_literal("P(x)").positive

    @pytest.mark.parametrize("negation", ["not P(x)", "~P(x)", "¬P(x)"])
    def test_negations(self, negation):
        literal = parse_literal(negation)
        assert not literal.positive
        assert literal.predicate == "P"


class TestParseRule:
    def test_fact(self):
        r = parse_rule("P(A).")
        assert r.is_fact()

    def test_rule_with_ampersand(self):
        r = parse_rule("P(x) <- Q(x) & not R(x).")
        assert len(r.body) == 2

    def test_rule_with_commas(self):
        r = parse_rule("P(x) :- Q(x), not R(x).")
        assert len(r.body) == 2

    def test_trailing_dot_optional(self):
        assert parse_rule("P(x) <- Q(x)") == parse_rule("P(x) <- Q(x).")

    def test_denial_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("<- P(x).")


class TestParseProgram:
    SOURCE = """
        % the running example
        Q(A). Q(B). R(B).
        P(x) <- Q(x) & not R(x).
        <- P(x) & S(x).
        Ic7 <- P(x) & V(x).
    """

    def test_partitioning(self):
        program = parse_program(self.SOURCE)
        assert len(program.facts) == 3
        assert len(program.rules) == 1
        assert len(program.constraints) == 2

    def test_denial_gets_fresh_ic_number(self):
        program = parse_program(self.SOURCE)
        names = {r.head.predicate for r in program.constraints}
        assert names == {"Ic1", "Ic7"}

    def test_denial_head_carries_body_variables(self):
        program = parse_program("<- P(x, y) & not R(y).")
        (constraint,) = program.constraints
        assert constraint.head.args == (Variable("x"), Variable("y"))

    def test_denial_numbers_skip_used(self):
        program = parse_program("Ic1 <- P(x). <- Q(x).")
        names = sorted(r.head.predicate for r in program.constraints)
        assert names == ["Ic1", "Ic2"]

    def test_non_ground_fact_rejected(self):
        with pytest.raises(ParseError):
            parse_program("P(x).")

    def test_all_rules_order(self):
        program = parse_program(self.SOURCE)
        kinds = [r.head.predicate for r in program.all_rules()]
        assert kinds[:3] == ["Q", "Q", "R"]
        assert kinds[-1].startswith("Ic") or kinds[-1] == "Ic7"

    def test_empty_program(self):
        program = parse_program("  % only a comment\n")
        assert not program.all_rules()

    def test_round_trip_through_str(self):
        program = parse_program(self.SOURCE)
        text = "\n".join(str(r) for r in program.all_rules())
        again = parse_program(text)
        assert {str(r) for r in again.all_rules()} == \
            {str(r) for r in program.all_rules()}


class TestComparisonSugar:
    def test_neq(self):
        r = parse_rule("Pair(x, y) <- Q(x) & Q(y) & x != y.")
        assert str(r.body[2]) == "Neq(x, y)"

    @pytest.mark.parametrize("op,predicate", [
        ("==", "Eq"), ("!=", "Neq"), ("<", "Lt"),
        ("<=", "Leq"), (">", "Gt"), (">=", "Geq"),
    ])
    def test_all_operators(self, op, predicate):
        r = parse_rule(f"P(x) <- Q(x, n) & n {op} 5.")
        assert r.body[1].predicate == predicate

    def test_negated_comparison(self):
        r = parse_rule("P(x) <- Q(x, n) & not n < 5.")
        assert not r.body[1].positive
        assert r.body[1].predicate == "Lt"

    def test_int_left_operand(self):
        r = parse_rule("P(x) <- Q(x, n) & 5 <= n.")
        assert r.body[1].predicate == "Leq"
        from repro.datalog.terms import Constant

        assert r.body[1].args[0] == Constant(5)

    def test_compound_operand_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("P(x) <- Q(x) != R(x).")

    def test_int_without_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("P(x) <- Q(x) & 5.")

    def test_round_trips_as_builtin(self):
        r = parse_rule("P(x) <- Q(x, n) & n >= 5.")
        again = parse_rule(str(r))
        assert again == r
