"""A kitchen-sink schema exercising every feature at once.

Views, conditions, constraints, recursion, built-ins and multi-rule
predicates in one database; every problem class run against it, with the
oracle cross-checking the upward side.
"""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.terms import Constant
from repro.events.events import Transaction, delete, insert
from repro.core import UpdateProcessor
from repro.interpretations import (
    UpwardInterpreter,
    naive_changes,
    want_insert,
)
from repro.workloads import random_transaction

SCHEMA = """
    % logistics network with typed facilities
    Link(Hub1, Hub2). Link(Hub2, Plant1). Link(Hub1, Depot1).
    Warehouse(Hub1). Warehouse(Hub2). Factory(Plant1). Shop(Depot1).
    Capacity(Hub1, 100). Capacity(Hub2, 50). Capacity(Plant1, 70).
    Capacity(Depot1, 20).

    % recursion
    Route(x, y) <- Link(x, y).
    Route(x, y) <- Link(x, z) & Route(z, y).

    % multi-rule predicate
    Facility(x) <- Warehouse(x).
    Facility(x) <- Factory(x).
    Facility(x) <- Shop(x).

    % built-in comparisons
    Bigger(x, y) <- Capacity(x, a) & Capacity(y, b) & Gt(a, b).

    % a condition and a view
    Isolated(x) <- Facility(x) & not Connected(x).
    Connected(x) <- Route(Hub1, x).

    % constraints: links join facilities; no self-links
    Ic1(x, y) <- Link(x, y) & not Facility(x).
    Ic2(x, y) <- Link(x, y) & not Facility(y).
    Ic3(x) <- Link(x, x).
"""


@pytest.fixture
def network():
    return DeductiveDatabase.from_source(SCHEMA)


@pytest.fixture
def processor(network):
    p = UpdateProcessor(network)
    p.declare_view("Route", "Bigger")
    p.declare_condition("Isolated")
    return p


class TestEverythingAtOnce:
    def test_initially_consistent(self, processor):
        assert processor.is_consistent()

    def test_upward_strategies_agree_on_mixed_schema(self, network):
        for seed in range(6):
            transaction = random_transaction(network, n_events=3, seed=seed)
            hybrid = UpwardInterpreter(network).interpret(transaction)
            oracle = naive_changes(network, transaction)
            assert hybrid.insertions == oracle.insertions, f"seed {seed}"
            assert hybrid.deletions == oracle.deletions, f"seed {seed}"

    def test_check_rejects_dangling_link(self, processor):
        result = processor.check(
            Transaction([insert("Link", "Hub1", "Nowhere")]))
        assert not result.ok
        assert "Ic2" in result.violated_constraints()

    def test_maintenance_repairs_dangling_link(self, processor):
        from repro.core import maintain_iteratively

        result = maintain_iteratively(
            processor.db, Transaction([insert("Link", "Hub1", "Nowhere")]))
        assert result.is_satisfiable
        best = result.best()
        # The repair declares Nowhere a facility of some type.
        facility_inserts = [e for e in best
                            if e.is_insertion and e.predicate in
                            ("Warehouse", "Factory", "Shop")]
        assert facility_inserts

    def test_monitor_isolation_condition(self, processor):
        changes = processor.monitor(
            Transaction([delete("Link", "Hub1", "Hub2")]))
        activated = changes.activated.get("Isolated", frozenset())
        assert (Constant("Hub2"),) in activated
        assert (Constant("Plant1"),) in activated

    def test_view_update_on_builtin_view(self, processor):
        # Make Depot1 bigger than Hub2: raise its capacity... the only
        # translation route is via Capacity changes.
        result = processor.translate(want_insert("Bigger", "Depot1", "Hub2"))
        assert result.is_satisfiable
        for transaction in result.transactions():
            predicates = {e.predicate for e in transaction}
            assert predicates <= {"Capacity"}

    def test_downward_on_recursive_view(self, processor):
        from repro.interpretations import DownwardInterpreter, DownwardOptions

        interpreter = DownwardInterpreter(
            processor.db,
            options=DownwardOptions(max_depth=6, on_depth_limit="prune"))
        result = interpreter.interpret(want_insert("Route", "Hub2", "Hub1"))
        assert Transaction([insert("Link", "Hub2", "Hub1")]) in \
            result.transactions()

    def test_execute_lifecycle(self, processor):
        ok = processor.execute(
            Transaction([insert("Warehouse", "Hub3"),
                         insert("Link", "Hub2", "Hub3")]),
            on_violation="reject")
        assert ok.applied
        assert processor.is_consistent()
        # Hub3 is now connected.
        assert processor.db.query("Connected(Hub3)") == [()]

    def test_self_link_unrepairable_cheaply(self, processor):
        # ιLink(Hub1, Hub1) violates Ic3; the only repair is not doing it,
        # which maintenance cannot do (it must preserve the user's events).
        from repro.core import maintain_iteratively

        result = maintain_iteratively(
            processor.db, Transaction([insert("Link", "Hub1", "Hub1")]))
        assert not result.is_satisfiable

    def test_validation_suite(self, processor):
        assert processor.validate_view("Bigger").is_valid
        assert processor.can_reach_inconsistency().satisfiable
        assert processor.constraints_satisfiable().satisfiable
