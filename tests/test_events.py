"""Unit tests for events and transactions (Section 3.1)."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.errors import ParseError, TransactionError
from repro.datalog.terms import Constant
from repro.events.events import (
    Event,
    Transaction,
    delete,
    insert,
    parse_transaction,
)
from repro.events.naming import EventKind


class TestEvent:
    def test_constructors_coerce(self):
        event = insert("P", "A", 3)
        assert event.args == (Constant("A"), Constant(3))
        assert event.is_insertion and not event.is_deletion

    def test_opposite(self):
        assert insert("P", "A").opposite() == delete("P", "A")

    def test_atom(self):
        assert str(insert("P", "A").atom()) == "P(A)"

    def test_str_uses_paper_notation(self):
        assert str(insert("Works", "John")) == "ιWorks(John)"
        assert str(delete("R", "B")) == "δR(B)"
        assert str(insert("Flag")) == "ιFlag"

    def test_variable_argument_rejected(self):
        from repro.datalog.terms import Variable

        with pytest.raises(TransactionError):
            Event(EventKind.INSERTION, "P", (Variable("x"),))

    def test_noop_detection(self):
        db = DeductiveDatabase.from_source("Q(A).")
        assert insert("Q", "A").is_noop_in(db)
        assert not insert("Q", "B").is_noop_in(db)
        assert delete("Q", "B").is_noop_in(db)
        assert not delete("Q", "A").is_noop_in(db)


class TestTransaction:
    def test_set_behaviour(self):
        t = Transaction([insert("P", "A"), delete("Q", "B"), insert("P", "A")])
        assert len(t) == 2
        assert insert("P", "A") in t

    def test_contradictory_rejected(self):
        with pytest.raises(TransactionError):
            Transaction([insert("P", "A"), delete("P", "A")])

    def test_same_predicate_different_args_fine(self):
        t = Transaction([insert("P", "A"), delete("P", "B")])
        assert len(t) == 2

    def test_partitions(self):
        t = Transaction([insert("P", "A"), delete("Q", "B")])
        assert t.insertions() == {insert("P", "A")}
        assert t.deletions() == {delete("Q", "B")}
        assert t.predicates() == {"P", "Q"}

    def test_union(self):
        t = Transaction([insert("P", "A")]) | Transaction([delete("Q", "B")])
        assert len(t) == 2

    def test_union_contradiction_rejected(self):
        with pytest.raises(TransactionError):
            Transaction([insert("P", "A")]) | Transaction([delete("P", "A")])

    def test_equality_and_hash(self):
        a = Transaction([insert("P", "A")])
        b = Transaction([insert("P", "A")])
        assert a == b and hash(a) == hash(b)

    def test_str_sorted(self):
        t = Transaction([delete("R", "B"), insert("P", "A")])
        assert str(t) == "{δR(B), ιP(A)}"  # δ (U+03B4) sorts before ι (U+03B9)


class TestTransactionSemantics:
    def test_apply_to(self):
        db = DeductiveDatabase.from_source("Q(A). R(B).")
        new_db = Transaction([delete("R", "B"), insert("Q", "C")]).apply_to(db)
        assert not new_db.has_fact("R", "B")
        assert new_db.has_fact("Q", "C")
        # original untouched
        assert db.has_fact("R", "B")

    def test_apply_rejects_derived(self):
        db = DeductiveDatabase.from_source("Q(A). P(x) <- Q(x).")
        with pytest.raises(TransactionError):
            Transaction([insert("P", "B")]).apply_to(db)

    def test_normalized_drops_noops(self):
        db = DeductiveDatabase.from_source("Q(A).")
        t = Transaction([insert("Q", "A"), insert("Q", "B"), delete("Q", "Z")])
        assert t.normalized(db) == Transaction([insert("Q", "B")])


class TestParseTransaction:
    def test_paper_notation(self):
        t = parse_transaction("{δR(B)}")
        assert t == Transaction([delete("R", "B")])

    def test_keywords(self):
        t = parse_transaction("insert P(A), delete R(B)")
        assert t == Transaction([insert("P", "A"), delete("R", "B")])

    def test_short_keywords(self):
        t = parse_transaction("ins P(A); del R(B)")
        assert t == Transaction([insert("P", "A"), delete("R", "B")])

    def test_multi_arg_atoms(self):
        t = parse_transaction("insert Works(John, Sales)")
        assert t == Transaction([insert("Works", "John", "Sales")])

    def test_empty(self):
        assert parse_transaction("{}") == Transaction()
        assert parse_transaction("  ") == Transaction()

    def test_non_ground_rejected(self):
        with pytest.raises(ParseError):
            parse_transaction("insert P(x)")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_transaction("upsert P(A)")
