"""Exactly-once commits: the durable idempotency key machinery.

Every ambiguous-ack window the engine has -- a crash anywhere on the
commit path, a deferral timeout, a checkpoint-truncated log, a torn
final line -- is driven here with txn-stamped commits retried *through*
the failure, and the invariant asserted is exact: the final state is
the acked replay, no subsequence slack, and every replayed commit is a
pure dedup hit (``tests/faultkit.py::check_exactly_once``).

The crash matrix reuses the failpoint lists from
``test_crash_recovery.py`` so the two suites cannot drift apart.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core import durable
from repro.core.durable import transaction_digest
from repro.events.events import Transaction, parse_transaction
from repro.server import engine as engine_mod
from repro.server.engine import DatabaseEngine, IdempotencyError

from tests import faultkit
from tests.test_crash_recovery import (
    CHECKPOINT_POINTS,
    COMMIT_POINTS,
    fresh_engine,
)


def idle_people(engine: DatabaseEngine) -> list[str]:
    """People with labour age but no job, sorted (P0..P19 universe)."""
    working = {row[0].value for row in engine.db.facts_of("Works")}
    return sorted(p for p in (f"P{i}" for i in range(20))
                  if p not in working)


def hire(engine: DatabaseEngine, count: int = 1) -> Transaction:
    """A transaction that always passes Ic1: employ idle people."""
    idle = idle_people(engine)
    return Transaction(parse_transaction(
        ", ".join(f"insert Works({p})" for p in idle[:count])))


def strip_benefit(engine: DatabaseEngine) -> Transaction:
    """A transaction Ic1 always rejects: unemployed, benefit deleted."""
    return Transaction(parse_transaction(
        f"delete U_benefit({idle_people(engine)[0]})"))


# -- live-engine dedup semantics ------------------------------------------


def test_duplicate_commit_returns_original_outcome(tmp_path):
    engine = fresh_engine(tmp_path)
    try:
        transaction = hire(engine)
        first = engine.commit(transaction, txn_id="t-1")
        assert first.applied
        before = faultkit.base_facts(engine.db)
        again = engine.commit(transaction, txn_id="t-1")
        assert again.applied and again.effective == first.effective
        assert faultkit.base_facts(engine.db) == before
        assert engine.metrics.counter("dedup.hit") == 1
        assert engine.stats()["engine"]["dedup_size"] == 1
    finally:
        engine.close()


def test_rejected_outcome_is_remembered_too(tmp_path):
    """A durable 'no' is as binding as a durable 'yes': the retry must
    not re-run the integrity check against a luckier state."""
    engine = fresh_engine(tmp_path)
    try:
        rejected = engine.commit(strip_benefit(engine), txn_id="t-no")
        assert not rejected.applied
        again = engine.commit(strip_benefit(engine), txn_id="t-no")
        assert not again.applied
        assert engine.metrics.counter("dedup.hit") == 1
    finally:
        engine.close()


def test_same_txn_id_different_body_is_typed_error(tmp_path):
    engine = fresh_engine(tmp_path)
    try:
        one = hire(engine)
        engine.commit(one, txn_id="t-1")
        other = hire(engine)  # state moved, so a different body
        assert transaction_digest(other) != transaction_digest(one)
        with pytest.raises(IdempotencyError, match="different"):
            engine.commit(other, txn_id="t-1")
    finally:
        engine.close()


@pytest.mark.parametrize("bad", ["", "  ", "a b", "x" * 129, 7, None])
def test_malformed_txn_ids_rejected(tmp_path, bad):
    engine = fresh_engine(tmp_path)
    try:
        if bad is None:
            # None simply means unstamped -- allowed, not recorded.
            outcome = engine.commit(hire(engine), txn_id=None)
            assert outcome.applied
            assert engine.stats()["engine"]["dedup_size"] == 0
        else:
            with pytest.raises(IdempotencyError):
                engine.commit(hire(engine), txn_id=bad)
    finally:
        engine.close()


def test_commit_many_dedups_by_txn_id(tmp_path):
    engine = fresh_engine(tmp_path, max_batch=8)
    try:
        idle = idle_people(engine)
        transactions = [
            Transaction(parse_transaction(f"insert Works({p})"))
            for p in idle[:4]
        ]
        ids = [f"b-{i}" for i in range(4)]
        first = engine.commit_many(transactions, txn_ids=ids)
        assert all(o.applied for o in first)
        before = faultkit.base_facts(engine.db)
        again = engine.commit_many(transactions, txn_ids=ids)
        assert [o.effective for o in again] == [o.effective for o in first]
        assert faultkit.base_facts(engine.db) == before
        assert engine.metrics.counter("dedup.hit") == 4
    finally:
        engine.close()


# -- crashes: retry through every commit-path failpoint -------------------


@pytest.mark.parametrize("point", COMMIT_POINTS)
@pytest.mark.parametrize("skip", [0, 2])
def test_retry_through_commit_crash(tmp_path, point, skip):
    """The fault matrix, exactly-once edition: whatever the crash site,
    retrying with the same txn_id converges on one application."""
    engine = fresh_engine(tmp_path)
    faults.arm(point, "crash", skip=skip, times=1)
    report, recovered = faultkit.run_workload_with_retries(
        engine, tmp_path / "db", steps=25, seed=3)
    try:
        assert report.crashes == 1, f"{point} never fired (skip={skip})"
        assert report.retries >= 1
        faultkit.check_exactly_once(report, recovered)
    finally:
        recovered.close()


def test_retry_through_commit_crash_counting_mode(tmp_path):
    """Exactly-once replays hold under the counting maintainer too: the
    recovered engine re-bootstraps counts, replays are pure dedup hits,
    and the maintained extensions match the oracle."""
    engine = fresh_engine(tmp_path, cache_mode="counting")
    faults.arm(engine_mod.FP_MID_CACHE_ADVANCE, "crash", skip=1, times=1)
    report, recovered = faultkit.run_workload_with_retries(
        engine, tmp_path / "db", steps=25, seed=3, cache_mode="counting")
    try:
        assert report.crashes == 1
        assert recovered.maintainer.active
        faultkit.check_exactly_once(report, recovered)
    finally:
        recovered.close()


@pytest.mark.parametrize("point", COMMIT_POINTS)
def test_retry_through_repeated_crashes(tmp_path, point):
    """Crashing again on a later commit -- after a recovery already
    replayed txn records -- must still dedup correctly."""
    engine = fresh_engine(tmp_path)
    faults.arm(point, "crash", skip=1, times=1)

    def rearm(crashes: int) -> None:
        if crashes < 3:
            faults.arm(point, "crash", skip=4, times=1)

    report, recovered = faultkit.run_workload_with_retries(
        engine, tmp_path / "db", steps=25, seed=5, rearm=rearm)
    try:
        assert report.crashes == 3
        faultkit.check_exactly_once(report, recovered)
    finally:
        recovered.close()


@pytest.mark.parametrize("point", CHECKPOINT_POINTS)
def test_dedup_survives_checkpoint_crash(tmp_path, point):
    """The sidecar is written before the log is truncated, so a crash
    inside checkpoint loses no txn records either way."""
    engine = fresh_engine(tmp_path)
    transaction = hire(engine)
    outcome = engine.commit(transaction, txn_id="pre-ckpt")
    assert outcome.applied
    faults.arm(point, "crash", times=1)
    with pytest.raises(faults.SimulatedCrash):
        engine.checkpoint()
    faults.reset()
    recovered = faultkit.recover(tmp_path / "db")
    try:
        replay = recovered.commit(transaction, txn_id="pre-ckpt")
        assert replay.applied
        assert replay.effective.to_dict() == outcome.effective.to_dict()
        assert recovered.metrics.counter("dedup.hit") == 1
    finally:
        recovered.close()


def test_crash_between_fsync_and_ack_then_retry_is_noop(tmp_path):
    """The sharpest ambiguous ack: the WAL line is durable but the caller
    never heard.  The retry must be a pure dedup hit, not a re-apply."""
    engine = fresh_engine(tmp_path)
    transaction = hire(engine, count=2)
    faults.arm(engine_mod.FP_PRE_ACK, "crash", times=1)
    with pytest.raises(faults.SimulatedCrash):
        engine.commit(transaction, txn_id="ambiguous")
    faults.reset()
    recovered = faultkit.recover(tmp_path / "db")
    try:
        before = faultkit.base_facts(recovered.db)
        # The first attempt *was* durable: its effects are already there.
        for event in transaction:
            assert (event.predicate, event.args) in before
        replay = recovered.commit(transaction, txn_id="ambiguous")
        assert replay.applied
        assert recovered.metrics.counter("dedup.hit") == 1
        assert faultkit.base_facts(recovered.db) == before
        faultkit.check_derived_oracle(recovered)
    finally:
        recovered.close()


def test_rejected_outcome_survives_recovery(tmp_path):
    """Rejections are durably remembered via marker lines: after a crash
    the retry still sees 'no', even though no events were logged."""
    engine = fresh_engine(tmp_path)
    transaction = strip_benefit(engine)
    rejected = engine.commit(transaction, txn_id="t-no")
    assert not rejected.applied
    recovered = faultkit.recover(tmp_path / "db")  # abandon, re-open
    try:
        replay = recovered.commit(transaction, txn_id="t-no")
        assert not replay.applied
        assert recovered.metrics.counter("dedup.hit") == 1
    finally:
        recovered.close()


def test_digest_mismatch_survives_recovery(tmp_path):
    """The recorded digest -- not just the id -- is durable: after a
    crash, reusing the id with a different body is still the typed
    error, not a silent replay of the old outcome."""
    engine = fresh_engine(tmp_path)
    engine.commit(hire(engine), txn_id="t-1")
    recovered = faultkit.recover(tmp_path / "db")
    try:
        with pytest.raises(IdempotencyError, match="different"):
            recovered.commit(strip_benefit(recovered), txn_id="t-1")
    finally:
        recovered.close()


def test_dedup_survives_checkpoint_then_torn_tail(tmp_path):
    """Records checkpointed into the sidecar and records in the live log
    both survive a torn final line; the torn fragment's own txn does
    not falsely count as recorded."""
    engine = fresh_engine(tmp_path)
    report, engine = faultkit.run_workload_with_retries(
        engine, tmp_path / "db", steps=6, seed=21)
    engine.checkpoint()  # every record so far moves to the sidecar
    more, engine = faultkit.run_workload_with_retries(
        engine, tmp_path / "db", steps=4, seed=22)
    faults.arm(durable.FP_WAL_MID_APPEND, "torn", param=0.5, times=1)
    torn_txn = faultkit.random_transaction(engine.db, n_events=3, seed=99)
    with pytest.raises(faults.SimulatedCrash):
        engine.commit(torn_txn, txn_id="torn-tail")
    faults.reset()
    recovered = faultkit.recover(tmp_path / "db")
    try:
        # All pre-tear records still answer as dedup hits...
        outcomes = {**report.outcomes, **more.outcomes}
        recorded = {**report.transactions, **more.transactions}
        for txn_id, transaction in recorded.items():
            replay = recovered.commit(transaction, txn_id=txn_id)
            assert replay.applied == outcomes[txn_id]["applied"]
        assert recovered.metrics.counter("dedup.hit") == len(recorded)
        # ...and the torn transaction, never durable, applies fresh.
        retry = recovered.commit(torn_txn, txn_id="torn-tail")
        assert recovered.metrics.counter("dedup.hit") == len(recorded)
        again = recovered.commit(torn_txn, txn_id="torn-tail")
        assert again.applied == retry.applied
        faultkit.check_derived_oracle(recovered)
    finally:
        recovered.close()


def test_dedup_table_is_bounded(tmp_path):
    """The table is a FIFO ring: old records fall out at capacity, and
    the capacity is honoured across recovery."""
    engine = fresh_engine(tmp_path, dedup_capacity=8)
    try:
        for index in range(12):
            # Hiring an unknown person: no La fact, so Ic1 cannot fire.
            engine.commit(
                Transaction(parse_transaction(f"insert Works(Q{index})")),
                txn_id=f"t-{index}")
        assert engine.stats()["engine"]["dedup_size"] == 8
        assert engine.stats()["engine"]["dedup_capacity"] == 8
    finally:
        engine.close()
    recovered = faultkit.recover(tmp_path / "db", dedup_capacity=8)
    try:
        assert recovered.stats()["engine"]["dedup_size"] == 8
    finally:
        recovered.close()


def test_deferral_timeout_names_the_retry_path():
    """The stamped commit's ambiguous-timeout guidance is 'retry with the
    same txn_id', not the old 're-query' escape hatch."""
    doc = (engine_mod.ConflictDeferralTimeout.__doc__ or "").lower()
    assert "retry" in doc and "txn" in doc
