"""Unit tests for substitutions, matching and unification."""

from repro.datalog.rules import atom, pos, rule
from repro.datalog.terms import Constant, Variable
from repro.datalog.unification import (
    compose,
    fresh_variable,
    match_atom,
    match_tuple,
    rename_apart,
    resolve,
    restrict,
    substitute_atom,
    substitute_rule,
    unify_atoms,
    unify_terms,
)

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A, B = Constant("A"), Constant("B")


class TestResolve:
    def test_follows_chains(self):
        assert resolve(X, {X: Y, Y: A}) == A

    def test_unbound_variable(self):
        assert resolve(X, {}) == X

    def test_constant(self):
        assert resolve(A, {X: B}) == A


class TestUnifyTerms:
    def test_var_const(self):
        assert unify_terms(X, A, {}) == {X: A}

    def test_const_var(self):
        assert unify_terms(A, X, {}) == {X: A}

    def test_two_constants(self):
        assert unify_terms(A, A, {}) == {}
        assert unify_terms(A, B, {}) is None

    def test_var_var(self):
        result = unify_terms(X, Y, {})
        assert result in ({X: Y}, {Y: X})

    def test_respects_existing_bindings(self):
        assert unify_terms(X, B, {X: A}) is None


class TestUnifyAtoms:
    def test_basic(self):
        result = unify_atoms(atom("P", X, A), atom("P", B, Y))
        assert resolve(X, result) == B
        assert resolve(Y, result) == A

    def test_predicate_mismatch(self):
        assert unify_atoms(atom("P", X), atom("Q", X)) is None

    def test_arity_mismatch(self):
        assert unify_atoms(atom("P", X), atom("P", X, Y)) is None

    def test_shared_variable(self):
        result = unify_atoms(atom("P", X, X), atom("P", A, Y))
        assert resolve(Y, result) == A


class TestMatch:
    def test_match_atom_binds_pattern_vars(self):
        result = match_atom(atom("P", X, A), atom("P", B, A))
        assert result == {X: B}

    def test_match_atom_mismatch(self):
        assert match_atom(atom("P", A), atom("P", B)) is None

    def test_match_tuple_repeated_variable(self):
        assert match_tuple((X, X), (A, B), {}) is None
        assert match_tuple((X, X), (A, A), {}) == {X: A}

    def test_match_tuple_no_bindings_returns_input(self):
        subst = {Y: B}
        assert match_tuple((A,), (A,), subst) == subst


class TestSubstitution:
    def test_substitute_atom(self):
        assert substitute_atom(atom("P", X, Y), {X: A}) == atom("P", A, Y)

    def test_substitute_rule(self):
        r = rule(atom("P", X), [pos("Q", X, Y)])
        result = substitute_rule(r, {X: A, Y: B})
        assert str(result) == "P(A) <- Q(A, B)."

    def test_restrict(self):
        assert restrict({X: Y, Y: A, Z: B}, [X]) == {X: A}

    def test_compose(self):
        inner = {X: Y}
        outer = {Y: A, Z: B}
        composed = compose(outer, inner)
        assert composed[X] == A
        assert composed[Z] == B


class TestRenaming:
    def test_fresh_variables_unique(self):
        names = {fresh_variable().name for _ in range(100)}
        assert len(names) == 100

    def test_rename_apart_preserves_structure(self):
        r = rule(atom("P", X, Y), [pos("Q", X), pos("R", Y)])
        renamed = rename_apart(r)
        assert renamed.head.predicate == "P"
        assert renamed.variables().isdisjoint(r.variables())
        # shared variables stay shared
        assert renamed.head.args[0] == renamed.body[0].args[0]
