"""Tests for the Table 4.1 classification and the §5.3 combinations."""

import pytest

import repro.problems  # noqa: F401  -- importing registers every problem
from repro.datalog.terms import Constant
from repro.events.events import Transaction, delete, insert
from repro.interpretations import want_delete, want_insert
from repro.problems import (
    classification_table,
    downward_set,
    downward_then_upward,
    problem_registry,
    render_table_4_1,
    upward_set,
)
from repro.problems.base import Direction, PredicateSemantics


class TestRegistry:
    def test_every_section_5_problem_registered(self):
        names = {spec.name for spec in problem_registry()}
        expected = {
            "Integrity constraints checking",
            "Consistency restoration checking",
            "Condition monitoring",
            "Materialized view maintenance",
            "View updating",
            "View updating (deletion)",
            "View validation",
            "Preventing side effects",
            "Repairing inconsistent databases",
            "Integrity constraints satisfiability",
            "Ensuring IC satisfaction",
            "Integrity constraints maintenance",
            "Maintaining inconsistency",
            "Enforcing condition activation",
            "Condition validation",
            "Preventing condition activation",
        }
        assert expected <= names

    def test_sections_recorded(self):
        sections = {spec.section for spec in problem_registry()}
        assert {"5.1.1", "5.1.2", "5.1.3", "5.2.1", "5.2.2", "5.2.3",
                "5.2.4", "5.2.5", "5.2.6"} <= sections


class TestTable41:
    """Cell-by-cell assertions against the paper's Table 4.1."""

    @pytest.fixture(scope="class")
    def table(self):
        return classification_table()

    def cell(self, table, direction, form, semantics):
        return table[(direction, form, semantics)]

    def test_upward_view_cells(self, table):
        for form in ("ιP", "δP"):
            names = self.cell(table, Direction.UPWARD, form,
                              PredicateSemantics.VIEW)
            assert "Materialized view maintenance" in names

    def test_upward_ic_cells(self, table):
        assert "Integrity constraints checking" in self.cell(
            table, Direction.UPWARD, "ιP", PredicateSemantics.IC)
        assert "Consistency restoration checking" in self.cell(
            table, Direction.UPWARD, "δP", PredicateSemantics.IC)

    def test_upward_cond_cells(self, table):
        for form in ("ιP", "δP"):
            assert "Condition monitoring" in self.cell(
                table, Direction.UPWARD, form, PredicateSemantics.CONDITION)

    def test_downward_view_cells(self, table):
        assert "View updating" in self.cell(
            table, Direction.DOWNWARD, "ιP", PredicateSemantics.VIEW)
        assert "View updating (deletion)" in self.cell(
            table, Direction.DOWNWARD, "δP", PredicateSemantics.VIEW)
        for form in ("ιP", "δP"):
            assert "View validation" in self.cell(
                table, Direction.DOWNWARD, form, PredicateSemantics.VIEW)
        for form in ("T, ¬ιP", "T, ¬δP"):
            assert "Preventing side effects" in self.cell(
                table, Direction.DOWNWARD, form, PredicateSemantics.VIEW)

    def test_downward_ic_cells(self, table):
        assert "Ensuring IC satisfaction" in self.cell(
            table, Direction.DOWNWARD, "ιP", PredicateSemantics.IC)
        deletions = self.cell(table, Direction.DOWNWARD, "δP",
                              PredicateSemantics.IC)
        assert "Repairing inconsistent databases" in deletions
        assert "Integrity constraints satisfiability" in deletions
        assert "Integrity constraints maintenance" in self.cell(
            table, Direction.DOWNWARD, "T, ¬ιP", PredicateSemantics.IC)
        assert "Maintaining inconsistency" in self.cell(
            table, Direction.DOWNWARD, "T, ¬δP", PredicateSemantics.IC)

    def test_downward_cond_cells(self, table):
        for form in ("ιP", "δP"):
            assert "Enforcing condition activation" in self.cell(
                table, Direction.DOWNWARD, form, PredicateSemantics.CONDITION)
        for form in ("T, ¬ιP", "T, ¬δP"):
            assert "Preventing condition activation" in self.cell(
                table, Direction.DOWNWARD, form, PredicateSemantics.CONDITION)

    def test_no_cross_contamination(self, table):
        # Upward rows never contain downward problems and vice versa.
        downward_names = {s.name for s in problem_registry()
                          if s.direction is Direction.DOWNWARD}
        for (direction, _, _), names in table.items():
            if direction is Direction.UPWARD:
                assert not (set(names) & downward_names)

    def test_render_contains_headers_and_rows(self):
        text = render_table_4_1()
        assert "View" in text and "Ic" in text and "Cond" in text
        assert "Upward" in text and "Downward" in text
        assert "T, ¬ιP" in text


class TestCombinations:
    def test_upward_set_serves_many_consumers(self, employment_db):
        result = upward_set(employment_db,
                            Transaction([delete("U_benefit", "Dolors")]))
        assert result.insertions_of("Ic1")  # checking
        assert not result.insertions_of("Unemp")  # monitoring

    def test_downward_set(self, employment_db):
        result = downward_set(employment_db, [
            want_delete("Unemp", "Dolors"),
            want_insert("La", "Maria"),
        ])
        assert result.is_satisfiable
        for transaction in result.transactions():
            assert insert("La", "Maria") in transaction

    def test_downward_then_upward_maintain(self, employment_db):
        staged = downward_then_upward(
            employment_db, [want_insert("Unemp", "Maria")],
            maintain=["Ic1"])
        assert staged.is_satisfiable
        for translation in staged.accepted:
            assert insert("U_benefit", "Maria") in translation.transaction

    def test_downward_then_upward_check_rejects(self, employment_db):
        staged = downward_then_upward(
            employment_db, [want_insert("Unemp", "Maria")],
            check=["Ic1"])
        # The plain translation {ιLa(Maria)} violates Ic1 upward: rejected.
        assert staged.rejected
        for _, violations in staged.rejected:
            assert violations == ("Ic1",)

    def test_downward_then_upward_monitor(self, employment_db):
        staged = downward_then_upward(
            employment_db, [want_delete("Unemp", "Dolors")],
            monitor=["Unemp"])
        assert staged.accepted
        for transaction, induced in staged.induced.items():
            assert induced.deletions_of("Unemp") == \
                frozenset({(Constant("Dolors"),)})

    def test_plain_pipeline_accepts_everything(self, employment_db):
        staged = downward_then_upward(
            employment_db, [want_delete("Unemp", "Dolors")])
        assert len(staged.accepted) == 2
