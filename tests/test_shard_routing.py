"""Unit tests for the routing table: placement, splitting, persistence."""

from __future__ import annotations

import json

import pytest

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import RoutingError
from repro.events.events import parse_transaction
from repro.shard import HASHED, ROUTING_NAME, RoutingTable, stable_hash


def employment_table(n_shards: int = 3, pinned=None) -> RoutingTable:
    db = DeductiveDatabase.from_source("""
        La(Dolors). U_benefit(Dolors).
        Unemp(x) <- La(x) & not Works(x).
        Ic1 <- Unemp(x) & not U_benefit(x).
    """)
    db.declare_base("Works", 1)
    return RoutingTable.for_database(db, n_shards, pinned=pinned)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("Dolors") == stable_hash("Dolors")
        assert stable_hash(7) == stable_hash(7)

    def test_known_values_never_drift(self):
        """Placement is durable state: the hash must never change between
        releases, or reopened groups would look up facts on the wrong
        shard.  These pins catch accidental algorithm changes."""
        assert stable_hash("Dolors") % 3 == 2
        assert stable_hash("Maria") % 3 == 1
        assert stable_hash("Pere") % 3 == 0

    def test_type_sensitive(self):
        # "1" the string and 1 the int are different constants.
        assert stable_hash("1") != stable_hash(1)


class TestPlacement:
    def test_every_base_predicate_is_routed(self):
        table = employment_table()
        assert set(table.placements) == {"La", "U_benefit", "Works"}
        assert all(p == HASHED for p in table.placements.values())

    def test_pinned_predicate_goes_to_its_shard(self):
        table = employment_table(pinned={"U_benefit": 2})
        assert table.placements["U_benefit"] == 2
        for name in ("Dolors", "Maria", "Pere", "Anna"):
            assert table.shard_of("U_benefit", (name,)) == 2

    def test_pinning_unknown_predicate_is_an_error(self):
        with pytest.raises(RoutingError, match="Nope"):
            employment_table(pinned={"Nope": 0})

    def test_pin_out_of_range_is_an_error(self):
        with pytest.raises(RoutingError, match="shards are 0..2"):
            employment_table(pinned={"La": 3})

    def test_same_key_colocates_across_predicates(self):
        """Unary predicates hashed by the same first argument land on the
        same shard -- the co-location property per-shard integrity
        checking relies on."""
        table = employment_table()
        for name in ("Dolors", "Maria", "Pere", "Anna", "Oriol"):
            shards = {table.shard_of(p, (name,))
                      for p in ("La", "U_benefit", "Works")}
            assert len(shards) == 1

    def test_unknown_predicate_raises_typed_error(self):
        table = employment_table()
        with pytest.raises(RoutingError, match="Ghost"):
            table.shard_of("Ghost", ("X",))

    def test_derived_predicate_has_no_home_shard(self):
        table = employment_table()
        with pytest.raises(RoutingError):
            table.shard_of("Unemp", ("Dolors",))


class TestSplit:
    def test_split_groups_events_by_owner(self):
        table = employment_table()
        transaction = parse_transaction(
            "insert La(Dolors), insert Works(Maria), delete La(Pere)")
        parts = table.split(transaction)
        merged = [e for sub in parts.values() for e in sub]
        assert sorted(map(str, merged)) == sorted(map(str, transaction))
        for shard, sub in parts.items():
            for event in sub:
                assert table.shard_of(event.predicate, event.args) == shard

    def test_split_rejects_unroutable_events(self):
        table = employment_table()
        with pytest.raises(RoutingError):
            table.split(parse_transaction("insert Unemp(Dolors)"))


class TestShardsForGoal:
    def test_bound_first_argument_routes_to_one_shard(self):
        table = employment_table()
        assert table.shards_for_goal("La(Dolors)") == \
            [table.shard_of("La", ("Dolors",))]

    def test_unbound_key_scatters_to_all_shards(self):
        table = employment_table()
        assert table.shards_for_goal("La(x)") == [0, 1, 2]

    def test_derived_goal_scatters_to_all_shards(self):
        table = employment_table()
        assert table.shards_for_goal("Unemp(x)") == [0, 1, 2]
        assert table.shards_for_goal("Unemp(Dolors)") == [0, 1, 2]

    def test_pinned_goal_routes_to_its_shard(self):
        table = employment_table(pinned={"U_benefit": 1})
        assert table.shards_for_goal("U_benefit(x)") == [1]


class TestPersistence:
    def test_round_trip(self, tmp_path):
        table = employment_table(pinned={"Works": 0})
        table.save(tmp_path)
        loaded = RoutingTable.load(tmp_path)
        assert loaded.n_shards == table.n_shards
        assert loaded.placements == table.placements
        assert loaded.arities == table.arities

    def test_load_accepts_the_file_itself(self, tmp_path):
        employment_table().save(tmp_path)
        loaded = RoutingTable.load(tmp_path / ROUTING_NAME)
        assert loaded.n_shards == 3

    def test_missing_table_is_a_routing_error(self, tmp_path):
        with pytest.raises(RoutingError, match="no routing table"):
            RoutingTable.load(tmp_path)

    def test_corrupt_table_is_a_routing_error(self, tmp_path):
        (tmp_path / ROUTING_NAME).write_text("{not json")
        with pytest.raises(RoutingError, match="unreadable"):
            RoutingTable.load(tmp_path)

    def test_malformed_payload_is_a_routing_error(self, tmp_path):
        (tmp_path / ROUTING_NAME).write_text(json.dumps({"v": 1}))
        with pytest.raises(RoutingError, match="malformed"):
            RoutingTable.load(tmp_path)

    def test_zero_shards_rejected(self):
        with pytest.raises(RoutingError):
            RoutingTable(0, {}, {})
