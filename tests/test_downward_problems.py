"""Unit tests for the remaining downward problems (5.2.1-5.2.6)."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.terms import Constant
from repro.events.events import Transaction, delete, insert
from repro.events.naming import EventKind
from repro.problems import (
    StateError,
    can_reach_inconsistency,
    constraints_satisfiable,
    enforce_condition,
    maintain_inconsistency,
    maintain_transaction,
    prevent_condition_activation,
    prevent_side_effects,
    repair_database,
    validate_condition,
    validate_view,
)


@pytest.fixture
def inconsistent_db(employment_db):
    db = employment_db.copy()
    db.remove_fact("U_benefit", "Dolors")
    return db


class TestViewValidation:
    def test_achievable_view(self, employment_db):
        employment_db.add_fact("La", "Maria")
        employment_db.add_fact("Works", "Maria")
        result = validate_view(employment_db, "Unemp")
        assert result.is_valid
        witness = result.first_witness()
        assert witness == (Constant("Maria"),)
        assert result.witnesses[witness]

    def test_already_satisfied_rows_are_not_witnesses(self, employment_db):
        # Dolors is already unemployed; with her alone in the universe no
        # *transition* can achieve a new Unemp row.
        result = validate_view(employment_db, "Unemp")
        assert not result.is_valid

    def test_unachievable_view(self):
        # V needs S, but S can never hold: no facts, no rules, and the only
        # base relation T cannot make it true.
        db = DeductiveDatabase.from_source("T(A). V(x) <- T(x) & S(x) & not T(x).")
        db.declare_base("S", 1)
        result = validate_view(db, "V")
        assert not result.is_valid
        assert "not achievable" in str(result)

    def test_deletion_validation(self, employment_db):
        result = validate_view(employment_db, "Unemp", EventKind.DELETION)
        assert result.is_valid  # Unemp(Dolors) can be deleted

    def test_max_witnesses(self):
        db = DeductiveDatabase.from_source("Q(A). Q(B). Q(C). P(x) <- Q(x) & S(x).")
        db.declare_base("S", 1)
        result = validate_view(db, "P", max_witnesses=None)
        assert len(result.witnesses) >= 3

    def test_non_derived_rejected(self, employment_db):
        from repro.datalog.errors import UnknownPredicateError

        with pytest.raises(UnknownPredicateError):
            validate_view(employment_db, "La")


class TestPreventSideEffects:
    def test_example_53_via_api(self, employment_db):
        result = prevent_side_effects(
            employment_db, Transaction([insert("La", "Maria")]),
            "Unemp", EventKind.INSERTION, args=("Maria",))
        assert len(result.translations) == 1
        assert result.translations[0].transaction == Transaction([
            insert("La", "Maria"), insert("Works", "Maria")])

    def test_all_values_protected(self, employment_db):
        result = prevent_side_effects(
            employment_db,
            Transaction([insert("La", "Maria"), insert("La", "Pere")]),
            "Unemp")
        assert result.is_satisfiable
        for translation in result.translations:
            transaction = translation.transaction
            assert insert("Works", "Maria") in transaction
            assert insert("Works", "Pere") in transaction

    def test_no_side_effect_no_extra_events(self, employment_db):
        result = prevent_side_effects(
            employment_db, Transaction([insert("U_benefit", "Maria")]),
            "Unemp")
        assert Transaction([insert("U_benefit", "Maria")]) in \
            result.transactions()


class TestRepair:
    def test_repairs_found(self, inconsistent_db):
        result = repair_database(inconsistent_db, verify=True)
        assert result.is_repairable
        assert not result.unverified
        expected = {
            Transaction([insert("U_benefit", "Dolors")]),
            Transaction([delete("La", "Dolors")]),
            Transaction([insert("Works", "Dolors")]),
        }
        assert set(t.transaction for t in result.repairs) == expected

    def test_requires_inconsistency(self, employment_db):
        with pytest.raises(StateError):
            repair_database(employment_db)

    def test_str(self, inconsistent_db):
        assert "Dolors" in str(repair_database(inconsistent_db))


class TestSatisfiability:
    def test_consistent_state_trivially_satisfiable(self, employment_db):
        result = constraints_satisfiable(employment_db)
        assert result.satisfiable
        assert result.answered_by_current_state

    def test_inconsistent_but_repairable(self, inconsistent_db):
        result = constraints_satisfiable(inconsistent_db)
        assert result.satisfiable
        assert result.witnesses

    def test_can_reach_inconsistency(self, employment_db):
        result = can_reach_inconsistency(employment_db)
        assert result.satisfiable  # ιLa(x) without benefit violates Ic1
        assert result.witnesses

    def test_unviolable_constraints(self):
        # Ic1 requires S(x) & not S(x): never satisfiable.
        db = DeductiveDatabase.from_source("T(A). Ic1(x) <- S(x) & not S(x).")
        db.declare_base("S", 1)
        result = can_reach_inconsistency(db)
        assert not result.satisfiable

    def test_inconsistent_state_already_answers_reachability(self, inconsistent_db):
        result = can_reach_inconsistency(inconsistent_db)
        assert result.satisfiable
        assert result.answered_by_current_state

    def test_bool_protocol(self, employment_db):
        assert constraints_satisfiable(employment_db)


class TestIcMaintenance:
    def test_repairs_appended(self, employment_db):
        transaction = Transaction([delete("U_benefit", "Dolors")])
        result = maintain_transaction(employment_db, transaction)
        assert result.is_satisfiable
        for candidate in result.transactions():
            assert delete("U_benefit", "Dolors") in candidate
            assert len(candidate) >= 2  # repair appended

    def test_benign_transaction_unchanged(self, employment_db):
        transaction = Transaction([insert("Works", "Maria")])
        result = maintain_transaction(employment_db, transaction)
        assert transaction in result.transactions()

    def test_requires_consistent_state(self, inconsistent_db):
        with pytest.raises(StateError):
            maintain_transaction(inconsistent_db, Transaction())

    def test_maintain_inconsistency(self, inconsistent_db):
        # Another (employed, benefit-less) person gives the framework a way
        # to keep the database inconsistent after Dolors is repaired.
        inconsistent_db.add_fact("La", "Pere")
        inconsistent_db.add_fact("Works", "Pere")
        transaction = Transaction([insert("U_benefit", "Dolors")])
        result = maintain_inconsistency(inconsistent_db, transaction)
        assert result.is_satisfiable
        for candidate in result.transactions():
            assert insert("U_benefit", "Dolors") in candidate
            assert len(candidate) >= 2

    def test_maintain_inconsistency_impossible_with_singleton_domain(
            self, inconsistent_db):
        # With Dolors alone in the universe there is no second violation to
        # fall back on: the framework correctly reports unsatisfiability.
        transaction = Transaction([insert("U_benefit", "Dolors")])
        result = maintain_inconsistency(inconsistent_db, transaction)
        assert not result.is_satisfiable

    def test_maintain_inconsistency_requires_inconsistent(self, employment_db):
        with pytest.raises(StateError):
            maintain_inconsistency(employment_db, Transaction())


class TestConditionActivation:
    def test_enforce_ground(self, employment_db):
        result = enforce_condition(employment_db, "Unemp",
                                   args=("Maria",))
        assert Transaction([insert("La", "Maria")]) in result.transactions()

    def test_enforce_existential(self, employment_db):
        # Maria works, so ιUnemp(x) is achievable (fire her).
        employment_db.add_fact("La", "Maria")
        employment_db.add_fact("Works", "Maria")
        result = enforce_condition(employment_db, "Unemp")
        assert result.is_satisfiable
        assert Transaction([delete("Works", "Maria")]) in result.transactions()

    def test_enforce_existential_impossible(self, employment_db):
        # Dolors is the whole universe and is already unemployed: no x can
        # become newly unemployed.
        result = enforce_condition(employment_db, "Unemp")
        assert not result.is_satisfiable

    def test_enforce_deactivation(self, employment_db):
        result = enforce_condition(employment_db, "Unemp",
                                   EventKind.DELETION, args=("Dolors",))
        assert set(result.transactions()) == {
            Transaction([delete("La", "Dolors")]),
            Transaction([insert("Works", "Dolors")]),
        }

    def test_validate_condition(self, employment_db):
        employment_db.add_fact("La", "Maria")
        employment_db.add_fact("Works", "Maria")
        result = validate_condition(employment_db, "Unemp")
        assert result.is_valid

    def test_prevent_activation(self, employment_db):
        result = prevent_condition_activation(
            employment_db, Transaction([insert("La", "Jordi")]), "Unemp")
        assert result.is_satisfiable
        for translation in result.translations:
            assert insert("Works", "Jordi") in translation.transaction
