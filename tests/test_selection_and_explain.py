"""Tests for translation ranking policies and derivation explanations."""

import pytest

from repro.datalog import DeductiveDatabase
from repro.datalog.explain import Explainer
from repro.datalog.terms import Constant
from repro.events.events import delete, insert
from repro.interpretations import DownwardInterpreter, want_delete, want_insert
from repro.problems.selection import (
    deletion_averse,
    insertion_averse,
    rank_by_side_effects,
    rank_translations,
    smallest,
)


@pytest.fixture
def library_db():
    return DeductiveDatabase.from_source("""
        Member(Ada). Member(Alan).
        Borrowed(Ada, Sicp).
        Overdue(Ada, Sicp).
        Flagged(x) <- Borrowed(x, b) & Overdue(x, b).
        InGoodStanding(x) <- Member(x) & not Flagged(x).
    """)


class TestRankingPolicies:
    def test_smallest(self, library_db):
        result = DownwardInterpreter(library_db).interpret(
            want_insert("InGoodStanding", "Ada"))
        ranked = rank_translations(result.translations, smallest)
        assert ranked
        sizes = [len(r.transaction) for r in ranked]
        assert sizes == sorted(sizes)

    def test_deletion_vs_insertion_averse(self, employment_db):
        result = DownwardInterpreter(employment_db).interpret(
            want_delete("Unemp", "Dolors"))
        # Alternatives: {δLa(Dolors)} (one deletion) and {ιWorks(Dolors)}
        # (one insertion).
        best_del_averse = rank_translations(
            result.translations, deletion_averse)[0]
        best_ins_averse = rank_translations(
            result.translations, insertion_averse)[0]
        assert insert("Works", "Dolors") in best_del_averse.transaction
        assert delete("La", "Dolors") in best_ins_averse.transaction

    def test_side_effect_ranking(self, employment_db):
        # Deleting La(Dolors) also deletes Unemp(Dolors)... both requested;
        # but δLa touches nothing else, while ιWorks also only affects
        # Unemp.  Add a view that reacts to Works to split them.
        from repro.datalog.parser import parse_rule

        employment_db.add_rule(parse_rule("Employed(x) <- Works(x)."))
        result = DownwardInterpreter(employment_db).interpret(
            want_delete("Unemp", "Dolors"))
        ranked = rank_by_side_effects(employment_db, result.translations,
                                      requested_predicates=["Unemp"])
        # ιWorks(Dolors) induces ιEmployed(Dolors): one side effect.
        # δLa(Dolors) induces none.
        best = ranked[0]
        assert delete("La", "Dolors") in best.transaction
        assert not best.side_effects
        worst = ranked[-1]
        assert any(e.predicate == "Employed" for e in worst.side_effects)


class TestExplain:
    def test_base_fact(self, library_db):
        explainer = Explainer.for_database(library_db)
        (derivation,) = explainer.explain("Member", (Constant("Ada"),))
        assert derivation.is_leaf()
        assert "fact" in str(derivation)

    def test_derived_fact_tree(self, library_db):
        explainer = Explainer.for_database(library_db)
        (derivation,) = explainer.explain(
            "Flagged", (Constant("Ada"),))
        assert derivation.rule is not None
        assert derivation.depth() == 2
        supports = {str(d.fact) for d in derivation.support}
        assert supports == {"Borrowed(Ada, Sicp)", "Overdue(Ada, Sicp)"}

    def test_negative_conditions_listed(self, library_db):
        explainer = Explainer.for_database(library_db)
        (derivation,) = explainer.explain(
            "InGoodStanding", (Constant("Alan"),))
        assert any(l.predicate == "Flagged" and not l.positive
                   for l in derivation.absences)

    def test_false_fact_has_no_explanation(self, library_db):
        explainer = Explainer.for_database(library_db)
        assert explainer.explain("Flagged", (Constant("Alan"),)) == ()

    def test_multiple_explanations(self):
        db = DeductiveDatabase.from_source("""
            Q(A). R(A).
            P(x) <- Q(x).
            P(x) <- R(x).
        """)
        explainer = Explainer.for_database(db)
        derivations = explainer.explain("P", (Constant("A"),),
                                        max_explanations=5)
        assert len(derivations) == 2

    def test_render_nested(self):
        db = DeductiveDatabase.from_source("""
            Q(A). S(A).
            P(x) <- Q(x).
            W(x) <- P(x) & S(x).
        """)
        explainer = Explainer.for_database(db)
        (derivation,) = explainer.explain("W", (Constant("A"),))
        rendered = str(derivation)
        assert "W(A)" in rendered and "P(A)" in rendered and "Q(A)" in rendered
        assert derivation.depth() == 3


class TestExplainEvent:
    def test_example_4_1_derivation(self, pqr_db):
        from repro.events.events import parse_transaction
        from repro.interpretations import explain_event

        trees = explain_event(pqr_db, parse_transaction("{delete R(B)}"),
                              insert("P", "B"))
        assert len(trees) == 1
        rendered = str(trees[0])
        # The firing disjunct is Q(B) ∧ ¬δQ(B) ∧ δR(B) -- the paper's
        # "second disjunct" of Example 4.1.
        assert "del$R(B)" in rendered
        assert "Q(B)  [fact]" in rendered
        assert "not P(B)" in rendered

    def test_non_induced_event_unexplained(self, pqr_db):
        from repro.events.events import parse_transaction
        from repro.interpretations import explain_event

        trees = explain_event(pqr_db, parse_transaction("{delete R(B)}"),
                              insert("P", "A"))
        assert trees == ()

    def test_deletion_event(self, pqr_db):
        from repro.events.events import parse_transaction
        from repro.interpretations import explain_event

        trees = explain_event(pqr_db, parse_transaction("{insert R(A)}"),
                              delete("P", "A"))
        assert trees
        assert "del$P(A)" in str(trees[0])
