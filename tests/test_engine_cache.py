"""Cache lifecycle tests: delta-driven maintenance of warm derived state.

The engine's ``advance`` cache mode reuses the commit-time upward
interpretation (the paper's view-maintenance reading of the event rules,
Section 5.1.3) to patch the memoised derived extensions in place instead of
invalidating them.  These tests pin down the lifecycle: when the cache
advances, when it falls back to invalidation, and that readers can never
observe a partially advanced cache.
"""

import logging
import threading

import pytest

from repro.datalog import DeductiveDatabase
from repro.events.events import Transaction, insert, parse_transaction
from repro.interpretations import UpwardInterpreter
from repro.server.engine import DatabaseEngine
from repro.workloads import employment_database


@pytest.fixture
def engine(tmp_path, employment_db):
    engine = DatabaseEngine.open(tmp_path / "d", initial=employment_db)
    yield engine
    engine.close(checkpoint=False)


def fresh_extension(db, predicate: str):
    """Oracle: the predicate's extension via a from-scratch interpreter."""
    return UpwardInterpreter(db).old_extension(predicate)


class TestCacheModes:
    def test_invalid_cache_mode_rejected(self, tmp_path, employment_db):
        with pytest.raises(ValueError, match="cache_mode"):
            DatabaseEngine.open(tmp_path / "d", initial=employment_db,
                                cache_mode="nonsense")

    def test_advance_mode_keeps_cache_warm(self, tmp_path):
        engine = DatabaseEngine.open(
            tmp_path / "d", initial=employment_database(30, seed=3))
        try:
            engine.check(parse_transaction("insert Works(Probe)"))  # warm up
            for i in range(5):
                engine.commit(parse_transaction(
                    f"insert La(N{i}); insert U_benefit(N{i})"))
                engine.check(parse_transaction(f"insert Works(N{i})"))
            stats = engine.stats()
            assert stats["engine"]["cache_mode"] == "advance"
            # Commits patched the warm cache: no invalidations, epoch
            # untouched, exactly the initial materialisation.
            assert stats["engine"]["cache_epoch"] == 0
            counters = stats["counters"]
            assert counters["cache.advance"] == 5
            assert counters["cache.rematerialize"] == 1
            assert "cache.invalidate" not in counters
            # ... and the warm state it kept serving is the true one.
            assert engine._processor._upward.old_extension("Unemp") == \
                fresh_extension(engine.db, "Unemp")
        finally:
            engine.close(checkpoint=False)

    def test_invalidate_mode_rematerializes_each_round(self, tmp_path):
        engine = DatabaseEngine.open(
            tmp_path / "d", initial=employment_database(30, seed=3),
            cache_mode="invalidate")
        try:
            engine.check(parse_transaction("insert Works(Probe)"))
            for i in range(5):
                engine.commit(parse_transaction(
                    f"insert La(N{i}); insert U_benefit(N{i})"))
                engine.check(parse_transaction(f"insert Works(N{i})"))
            counters = engine.stats()["counters"]
            assert counters["cache.invalidate"] == 5
            assert counters["cache.rematerialize"] == 6
            assert "cache.advance" not in counters
            assert engine.stats()["engine"]["cache_epoch"] == 5
        finally:
            engine.close(checkpoint=False)

    def test_advance_without_constraints(self, tmp_path):
        """With no constraints the commit check never runs, but a warm
        cache still advances via one incremental pass."""
        db = DeductiveDatabase.from_source("""
            Q(A). Q(B). R(B).
            P(x) <- Q(x) & not R(x).
        """)
        engine = DatabaseEngine.open(tmp_path / "d", initial=db)
        try:
            # query() uses a fresh evaluator; warm the interpreter cache
            # the way a reader of induced events would.
            engine.upward(parse_transaction("insert Q(Z)"))
            engine.commit(parse_transaction("insert Q(C)"))
            counters = engine.stats()["counters"]
            assert counters.get("cache.advance") == 1
            assert engine._processor._upward.old_extension("P") == \
                fresh_extension(engine.db, "P")
        finally:
            engine.close(checkpoint=False)

    def test_checkpoint_invalidates(self, engine):
        engine.check(parse_transaction("insert Works(Maria)"))
        engine.commit(parse_transaction("insert La(Pere)"))
        engine.checkpoint()
        counters = engine.stats()["counters"]
        assert counters.get("cache.invalidate", 0) >= 1
        assert engine.stats()["engine"]["cache_epoch"] >= 1

    def test_slow_path_invalidates(self, engine):
        """Non-reject policies take the serial path, which invalidates."""
        engine.check(parse_transaction("insert Works(Maria)"))
        engine.commit(parse_transaction("insert La(Pere)"),
                      on_violation="maintain")
        counters = engine.stats()["counters"]
        assert counters.get("cache.invalidate", 0) >= 1
        assert "cache.advance" not in counters


class TestAdvanceMatchesRematerialize:
    """Advanced and from-scratch extensions agree on example programs."""

    CASES = {
        "stratified-negation": (
            """
            La(Dolors). La(Joan). Works(Joan). U_benefit(Dolors).
            Unemp(x) <- La(x) & not Works(x).
            Ic1 <- Unemp(x) & not U_benefit(x).
            """,
            "insert Works(Dolors)",
            ("insert La(Mar); insert U_benefit(Mar)",
             "insert Works(Joan2)",
             "insert La(Nil); insert U_benefit(Nil); insert Works(Nil)"),
        ),
        "two-level-views": (
            """
            Q(A). Q(B). R(B). S(A).
            P(x) <- Q(x) & not R(x).
            T(x) <- P(x) & S(x).
            """,
            "insert Q(Z)",
            ("insert Q(C); insert S(C)",
             "insert R(A)",
             "insert Q(D)"),
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_extensions_match(self, tmp_path, name):
        source, warmup, commits = self.CASES[name]
        db = DeductiveDatabase.from_source(source)
        derived = sorted(db.schema.derived)
        engine = DatabaseEngine.open(tmp_path / "d", initial=db)
        try:
            engine.upward(parse_transaction(warmup))  # warm the cache
            for commit in commits:
                engine.commit(parse_transaction(commit))
            counters = engine.stats()["counters"]
            assert counters.get("cache.advance", 0) >= 1
            warm = engine._processor._upward
            for predicate in derived:
                assert warm.old_extension(predicate) == \
                    fresh_extension(engine.db, predicate), predicate
        finally:
            engine.close(checkpoint=False)


class TestUncheckedCommits:
    def test_unchecked_commit_counts_and_warns(self, engine, caplog):
        # Drive the state inconsistent past the checker ("ignore" takes
        # the slow path and skips the check entirely).
        engine.commit(parse_transaction("insert La(Pere)"),
                      on_violation="ignore")
        assert engine.metrics.counter("commit.unchecked") == 0
        # Now a reject-policy commit finds Ic already true: StateError
        # inside the fast path -> committed unchecked, loudly.
        with caplog.at_level(logging.WARNING, logger="repro.server.engine"):
            outcome = engine.commit(parse_transaction("insert La(Jordi)"))
        assert outcome.applied and outcome.check is None
        assert engine.metrics.counter("commit.unchecked") == 1
        warning = "\n".join(r.getMessage() for r in caplog.records
                            if r.levelno == logging.WARNING)
        assert "UNCHECKED" in warning
        assert "Ic1" in warning

    def test_consistent_commits_are_not_counted(self, engine):
        engine.commit(parse_transaction("insert Works(Maria)"))
        assert engine.metrics.counter("commit.unchecked") == 0


class TestConcurrentReaders:
    def test_readers_never_observe_partial_advance(self, tmp_path):
        """Checks racing group commits always see a consistent snapshot.

        Readers repeatedly check a probe transaction whose verdict depends
        on derived state; writers commit facts that flip that state.  A
        reader that catches the cache mid-advance would see a verdict that
        matches *neither* the pre- nor the post-commit database.
        """
        engine = DatabaseEngine.open(
            tmp_path / "d", initial=employment_database(20, seed=11))
        failures: list[str] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                try:
                    verdict = engine.check(
                        Transaction([insert("La", "Probe")]))
                except Exception as error:  # noqa: BLE001 - fail the test
                    failures.append(f"check raised: {error!r}")
                    return
                # "insert La(Probe)" makes Probe unemployed without
                # benefit: always a violation, whatever the writers do.
                if verdict.ok:
                    failures.append("check lost the Ic1 violation")
                    return

        def writer(offset: int) -> None:
            for i in range(10):
                name = f"W{offset}_{i}"
                engine.commit(Transaction([
                    insert("La", name), insert("U_benefit", name)]))

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writers = [threading.Thread(target=writer, args=(o,))
                   for o in range(3)]
        try:
            for thread in readers + writers:
                thread.start()
            for thread in writers:
                thread.join()
            stop.set()
            for thread in readers:
                thread.join()
            assert not failures, failures
            # After the dust settles the warm cache equals a fresh one.
            warm = engine._processor._upward
            assert warm is not None and warm.has_cached_state
            assert warm.old_extension("Unemp") == \
                fresh_extension(engine.db, "Unemp")
        finally:
            engine.close(checkpoint=False)
