"""A stateful materialized-view store (the consumer of Section 5.1.3).

The store keeps the extension of selected views physically, applies
transactions to the underlying database, and keeps the stored extensions in
sync *incrementally* using the upward interpretation -- never by
recomputation (except in :meth:`verify`, which recomputes precisely to check
that the incremental path was right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import UnknownPredicateError
from repro.datalog.evaluation import BottomUpEvaluator
from repro.datalog.terms import Constant
from repro.events.events import Transaction
from repro.interpretations.upward import UpwardInterpreter, UpwardOptions

Row = tuple[Constant, ...]


@dataclass
class VerificationReport:
    """Result of :meth:`MaterializedViewStore.verify`."""

    ok: bool
    #: view -> (missing rows, spurious rows) for any out-of-sync view.
    mismatches: dict[str, tuple[frozenset[Row], frozenset[Row]]]

    def __bool__(self) -> bool:
        return self.ok


class MaterializedViewStore:
    """Materialises views and maintains them through transactions.

    The store owns the write path: apply transactions through
    :meth:`apply`, not directly on the database, so the stored extensions
    stay consistent.
    """

    def __init__(self, db: DeductiveDatabase, views: Iterable[str],
                 options: UpwardOptions | None = None,
                 strategy: str = "hybrid"):
        if strategy not in ("hybrid", "counting"):
            raise ValueError(f"unknown maintenance strategy: {strategy!r}")
        self._db = db
        self._views = tuple(dict.fromkeys(views))
        schema = db.schema
        for view in self._views:
            if not schema.is_derived(view):
                raise UnknownPredicateError(
                    f"cannot materialize {view}: not a derived predicate"
                )
        self._options = options or UpwardOptions()
        self._strategy = strategy
        self._extensions: dict[str, set[Row]] = {}
        self._interpreter: UpwardInterpreter | None = None
        self._engine = None
        self._transactions_applied = 0
        if strategy == "counting":
            from repro.interpretations.counting import CountingEngine

            self._engine = CountingEngine(db)
            for view in self._views:
                self._extensions[view] = set(self._engine.extension(view))
        else:
            self._refresh_interpreter()
            for view in self._views:
                assert self._interpreter is not None
                self._extensions[view] = set(
                    self._interpreter.old_extension(view))

    # -- read path ----------------------------------------------------------------

    @property
    def views(self) -> tuple[str, ...]:
        """The materialised views, in declaration order."""
        return self._views

    def extension(self, view: str) -> frozenset[Row]:
        """The stored extension of a view."""
        if view not in self._extensions:
            raise UnknownPredicateError(f"{view} is not materialized here")
        return frozenset(self._extensions[view])

    def holds(self, view: str, *args) -> bool:
        """Membership test against the stored extension."""
        row = tuple(a if isinstance(a, Constant) else Constant(a) for a in args)
        return row in self.extension(view)

    @property
    def transactions_applied(self) -> int:
        """How many transactions the store has processed."""
        return self._transactions_applied

    # -- write path -----------------------------------------------------------------

    def apply(self, transaction: Transaction) -> Mapping[str, tuple[frozenset[Row], frozenset[Row]]]:
        """Apply a base-fact transaction, maintaining every view.

        Returns view -> (inserted rows, deleted rows) for the views that
        changed.
        """
        if self._engine is not None:
            result = self._engine.apply(transaction)  # commits to the db
            changed: dict[str, tuple[frozenset[Row], frozenset[Row]]] = {}
            for view in self._views:
                inserted = result.insertions_of(view)
                deleted = result.deletions_of(view)
                if inserted or deleted:
                    self._extensions[view] |= inserted
                    self._extensions[view] -= deleted
                    changed[view] = (inserted, deleted)
            self._transactions_applied += 1
            return changed
        assert self._interpreter is not None
        transaction = transaction.normalized(self._db)
        # Interpret over *all* derived predicates so the cached old state can
        # be advanced rather than re-materialised (that is the whole point of
        # incremental maintenance).
        result = self._interpreter.interpret(transaction)
        changed: dict[str, tuple[frozenset[Row], frozenset[Row]]] = {}
        for view in self._views:
            inserted = result.insertions_of(view)
            deleted = result.deletions_of(view)
            if inserted or deleted:
                self._extensions[view] |= inserted
                self._extensions[view] -= deleted
                changed[view] = (inserted, deleted)
        for event in transaction:
            if event.is_insertion:
                self._db.add_fact(event.predicate, *event.args)
            else:
                self._db.remove_fact(event.predicate, *event.args)
        self._transactions_applied += 1
        self._interpreter.advance(result)
        return changed

    def _refresh_interpreter(self) -> None:
        self._interpreter = UpwardInterpreter(self._db, options=self._options)

    # -- verification -----------------------------------------------------------------

    def verify(self) -> VerificationReport:
        """Recompute every view from scratch and compare with the store."""
        evaluator = BottomUpEvaluator(self._db, self._db.all_rules())
        mismatches: dict[str, tuple[frozenset[Row], frozenset[Row]]] = {}
        for view in self._views:
            recomputed = evaluator.extension(view)
            stored = frozenset(self._extensions[view])
            missing = recomputed - stored
            spurious = stored - recomputed
            if missing or spurious:
                mismatches[view] = (frozenset(missing), frozenset(spurious))
        return VerificationReport(not mismatches, mismatches)
