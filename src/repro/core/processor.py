""":class:`UpdateProcessor` -- the uniform update-processing façade.

One object, one compiled transition program, every Section 5 problem as a
method.  This is the executable form of the paper's thesis that a unique
set of rules (the event rules) suffices "to provide general methods able to
deal with all these problems as a whole".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import UnknownPredicateError
from repro.datalog.rules import Literal
from repro.events.event_rules import EventCompiler, TransitionProgram
from repro.events.events import Event, Transaction
from repro.events.naming import EventKind
from repro.interpretations.downward import (
    DownwardInterpreter,
    DownwardOptions,
    DownwardResult,
)
from repro.interpretations.upward import (
    UpwardInterpreter,
    UpwardOptions,
    UpwardResult,
)
from repro.problems import (
    ConditionChanges,
    ICCheckResult,
    RepairResult,
    SatisfiabilityResult,
    ValidationResult,
    ViewDeltas,
    ViewUpdateResult,
)
from repro.problems import (
    can_reach_inconsistency,
    check_restores_consistency,
    check_transaction,
    check_transaction_full,
    condition_activation,
    constraints_satisfiable,
    current_violations,
    is_consistent,
    monitor_conditions,
    prevent_side_effects,
    repair_database,
    translate_view_update,
    validate_condition,
    validate_view,
    view_maintenance_deltas,
)
from repro.problems.base import PredicateSemantics
from repro.problems.ic_maintenance import maintain_transaction


@dataclass
class ExecutionResult:
    """Outcome of :meth:`UpdateProcessor.execute`."""

    applied: bool
    transaction: Transaction
    #: Populated when integrity checking ran.
    check: ICCheckResult | None = None
    #: Populated when maintenance extended the transaction.
    repairs: Transaction | None = None

    def __bool__(self) -> bool:
        return self.applied


class UpdateProcessor:
    """Uniform interface to every deductive-database updating problem.

    Parameters
    ----------
    db:
        the deductive database; the processor observes it and must be told
        about external mutations via :meth:`refresh`.
    simplify:
        compile the transition program with the [Oli91] simplifications.
    """

    def __init__(self, db: DeductiveDatabase, simplify: bool = True,
                 upward_options: UpwardOptions | None = None,
                 downward_options: DownwardOptions | None = None):
        self._db = db
        self._simplify = simplify
        self._upward_options = upward_options or UpwardOptions()
        self._downward_options = downward_options or DownwardOptions()
        self._semantics: dict[str, set[PredicateSemantics]] = {}
        self._program: TransitionProgram | None = None
        self._upward: UpwardInterpreter | None = None
        self._downward: DownwardInterpreter | None = None
        #: Optional observer called with ``"advance"`` / ``"invalidate"`` /
        #: ``"rematerialize"`` on every state-cache lifecycle event; the
        #: serving engine hooks this into its metrics registry.
        self.on_cache_event: Callable[[str], None] | None = None
        self._cache_counters = {"advance": 0, "invalidate": 0,
                                "rematerialize": 0}

    # -- lifecycle ---------------------------------------------------------------

    @property
    def db(self) -> DeductiveDatabase:
        """The underlying deductive database."""
        return self._db

    @property
    def program(self) -> TransitionProgram:
        """The compiled transition program (compiled lazily)."""
        if self._program is None:
            self._program = EventCompiler(simplify=self._simplify).compile(self._db)
        return self._program

    def refresh(self) -> None:
        """Recompile after the database (facts or rules) changed."""
        self._program = None
        self.invalidate_state_caches()

    def invalidate_state_caches(self) -> None:
        """Drop interpreter caches after an external fact-level mutation.

        Cheaper than :meth:`refresh`: the compiled transition program
        depends only on the rules and survives.  Callers that mutate the
        database's facts directly (the durable commit paths) must call
        this; rule changes still require :meth:`refresh`.  Callers that
        know the induced events of the mutation should prefer
        :meth:`advance_state_caches`, which keeps the memoised state warm.
        """
        warm = self._upward is not None or self._downward is not None
        self._upward = None
        self._downward = None
        if warm:
            self._cache_event("invalidate")

    def advance_state_caches(self, result: UpwardResult) -> None:
        """Patch interpreter caches across an *applied* transaction.

        The delta-driven alternative to :meth:`invalidate_state_caches`:
        *result* must be the full-coverage upward interpretation of a
        transaction that has since been applied to the database (e.g. from
        :meth:`check_full`).  Cached old-state materialisations are
        advanced in place, so the next read starts warm.  Raises
        :class:`ValueError` on a partial result -- callers should fall
        back to :meth:`invalidate_state_caches` in that case.
        """
        advanced = False
        if self._upward is not None:
            self._upward.advance(result)
            advanced = True
        if self._downward is not None:
            self._downward.advance(result)
            advanced = True
        if advanced:
            self._cache_event("advance")

    @property
    def has_warm_state(self) -> bool:
        """Whether an old-state materialisation is cached and advanceable."""
        return self._upward is not None and self._upward.has_cached_state

    def state_cache_counters(self) -> dict[str, int]:
        """Lifetime counts of cache advances / invalidations / rebuilds."""
        return dict(self._cache_counters)

    def _cache_event(self, kind: str) -> None:
        self._cache_counters[kind] += 1
        if self.on_cache_event is not None:
            self.on_cache_event(kind)

    def _note_rematerialize(self) -> None:
        self._cache_event("rematerialize")

    def _upward_interpreter(self) -> UpwardInterpreter:
        if self._upward is None:
            self._upward = UpwardInterpreter(
                self._db, program=self.program, options=self._upward_options,
                on_materialize=self._note_rematerialize)
        return self._upward

    def _downward_interpreter(self) -> DownwardInterpreter:
        if self._downward is None:
            self._downward = DownwardInterpreter(
                self._db, program=self.program, options=self._downward_options)
        return self._downward

    # -- semantics declarations ------------------------------------------------------

    def declare_view(self, *predicates: str) -> None:
        """Give derived predicates View semantics (Section 5 preamble)."""
        self._declare(predicates, PredicateSemantics.VIEW)

    def declare_condition(self, *predicates: str) -> None:
        """Give derived predicates Condition semantics."""
        self._declare(predicates, PredicateSemantics.CONDITION)

    def _declare(self, predicates: Iterable[str],
                 semantics: PredicateSemantics) -> None:
        for predicate in predicates:
            if not self._db.schema.is_derived(predicate):
                raise UnknownPredicateError(
                    f"{predicate} is not a derived predicate"
                )
            self._semantics.setdefault(predicate, set()).add(semantics)

    def views(self) -> tuple[str, ...]:
        """Declared views, sorted."""
        return self._declared(PredicateSemantics.VIEW)

    def conditions(self) -> tuple[str, ...]:
        """Declared conditions, sorted."""
        return self._declared(PredicateSemantics.CONDITION)

    def _declared(self, semantics: PredicateSemantics) -> tuple[str, ...]:
        return tuple(sorted(
            p for p, roles in self._semantics.items() if semantics in roles))

    # -- raw interpretations -------------------------------------------------------------

    def upward(self, transaction: Transaction,
               predicates: Iterable[str] | None = None) -> UpwardResult:
        """The upward interpretation of the event rules under *transaction*."""
        return self._upward_interpreter().interpret(transaction, predicates)

    def downward(self, requests: Iterable[Literal | Event] | Literal | Event
                 ) -> DownwardResult:
        """The downward interpretation of a request (set)."""
        return self._downward_interpreter().interpret(requests)

    def extension(self, predicate: str) -> frozenset:
        """Current extension of a derived predicate (cached old state)."""
        return self._upward_interpreter().old_extension(predicate)

    # -- upward problems (5.1) -------------------------------------------------------------

    def is_consistent(self) -> bool:
        """Whether the database currently satisfies every constraint."""
        return is_consistent(self._db)

    def check(self, transaction: Transaction) -> ICCheckResult:
        """Integrity constraint checking (5.1.1): upward ``ιIc``."""
        return check_transaction(self._db, transaction,
                                 interpreter=self._upward_interpreter())

    def check_full(self, transaction: Transaction
                   ) -> tuple[ICCheckResult, UpwardResult]:
        """Integrity check plus the full-coverage upward interpretation.

        Same verdict as :meth:`check`, but the returned
        :class:`UpwardResult` covers every derived predicate, so a caller
        that applies the transaction afterwards can hand it to
        :meth:`advance_state_caches` instead of invalidating.
        """
        return check_transaction_full(self._db, transaction,
                                      interpreter=self._upward_interpreter())

    def inconsistency_witnesses(self) -> dict[str, frozenset]:
        """Constraints the *current* state violates, with witness rows."""
        return current_violations(self._db,
                                  interpreter=self._upward_interpreter())

    def check_restoration(self, transaction: Transaction) -> ICCheckResult:
        """Consistency-restoration checking (5.1.1): upward ``δIc``."""
        return check_restores_consistency(self._db, transaction,
                                          interpreter=self._upward_interpreter())

    def monitor(self, transaction: Transaction,
                conditions: Iterable[str] | None = None) -> ConditionChanges:
        """Condition monitoring (5.1.2): upward ``ιCond``/``δCond``."""
        watched = list(conditions) if conditions is not None else list(self.conditions())
        return monitor_conditions(self._db, transaction, watched,
                                  interpreter=self._upward_interpreter())

    def maintenance_deltas(self, transaction: Transaction,
                           views: Iterable[str] | None = None) -> ViewDeltas:
        """Materialized view maintenance (5.1.3): upward ``ιView``/``δView``."""
        watched = list(views) if views is not None else list(self.views())
        return view_maintenance_deltas(self._db, transaction, watched,
                                       interpreter=self._upward_interpreter())

    # -- downward problems (5.2) --------------------------------------------------------------

    def translate(self, requests, check_ic: bool = False,
                  maintain_ic: bool = False) -> ViewUpdateResult:
        """View updating (5.2.1): downward ``ιView``/``δView``."""
        return translate_view_update(self._db, requests, check_ic=check_ic,
                                     maintain_ic=maintain_ic,
                                     interpreter=self._downward_interpreter())

    def validate_view(self, view: str, kind: EventKind = EventKind.INSERTION,
                      max_witnesses: int | None = 1) -> ValidationResult:
        """View validation (5.2.1): ∃X with achievable ``ιView(X)``."""
        return validate_view(self._db, view, kind, max_witnesses,
                             interpreter=self._downward_interpreter())

    def prevent_side_effects(self, transaction: Transaction, view: str,
                             kind: EventKind = EventKind.INSERTION,
                             args: Iterable | None = None) -> DownwardResult:
        """Preventing side effects (5.2.2): downward ``{T, ¬ιView(X)}``."""
        return prevent_side_effects(self._db, transaction, view, kind, args,
                                    interpreter=self._downward_interpreter())

    def repair(self, verify: bool = False) -> RepairResult:
        """Repairing an inconsistent database (5.2.3): downward ``δIc``."""
        return repair_database(self._db, verify=verify,
                               interpreter=self._downward_interpreter())

    def constraints_satisfiable(self) -> SatisfiabilityResult:
        """IC satisfiability (5.2.3): downward ``δIc``."""
        return constraints_satisfiable(self._db,
                                       interpreter=self._downward_interpreter())

    def can_reach_inconsistency(self) -> SatisfiabilityResult:
        """Ensuring IC satisfaction (5.2.3): downward ``ιIc``."""
        return can_reach_inconsistency(self._db,
                                       interpreter=self._downward_interpreter())

    def maintain(self, transaction: Transaction) -> DownwardResult:
        """IC maintenance (5.2.4): downward ``{T, ¬ιIc}``."""
        return maintain_transaction(self._db, transaction,
                                    interpreter=self._downward_interpreter())

    def translate_maintained(self, requests) -> tuple[Transaction, ...]:
        """Scalable view updating + IC maintenance (§5.3, staged).

        Unlike :meth:`translate` with ``maintain_ic=True`` (the faithful but
        exponential one-shot downward interpretation of ``{request, ¬ιIc}``),
        this stages plain translation through the iterative maintenance
        engine; see :mod:`repro.core.maintenance`.
        """
        from repro.core.maintenance import translate_with_maintenance

        if isinstance(requests, (Literal, Event)):
            requests = [requests]
        return translate_with_maintenance(self._db, list(requests))

    def enforce_condition(self, condition: str,
                          kind: EventKind = EventKind.INSERTION,
                          args: Iterable | None = None) -> DownwardResult:
        """Enforcing condition activation (5.2.5): downward ``ιCond(X)``."""
        return condition_activation.enforce_condition(
            self._db, condition, kind, args,
            interpreter=self._downward_interpreter())

    def validate_condition(self, condition: str,
                           kind: EventKind = EventKind.INSERTION,
                           max_witnesses: int | None = 1) -> ValidationResult:
        """Condition validation (5.2.5)."""
        return validate_condition(self._db, condition, kind, max_witnesses,
                                  interpreter=self._downward_interpreter())

    def prevent_condition_activation(self, transaction: Transaction,
                                     condition: str,
                                     kind: EventKind = EventKind.INSERTION,
                                     args: Iterable | None = None
                                     ) -> DownwardResult:
        """Preventing condition activation (5.2.6): downward ``{T, ¬ιCond}``."""
        return condition_activation.prevent_condition_activation(
            self._db, transaction, condition, kind, args,
            interpreter=self._downward_interpreter())

    # -- execution ---------------------------------------------------------------------------------

    def execute(self, transaction: Transaction,
                on_violation: str = "reject") -> ExecutionResult:
        """Apply a base-fact transaction to the database.

        ``on_violation``:

        - ``"reject"`` -- integrity-check first (5.1.1) and refuse violating
          transactions;
        - ``"maintain"`` -- extend violating transactions with repairs
          (5.2.4), choosing the smallest translation;
        - ``"ignore"`` -- apply unconditionally.
        """
        if on_violation not in ("reject", "maintain", "ignore"):
            raise ValueError(f"unknown on_violation policy: {on_violation!r}")
        check_result: ICCheckResult | None = None
        repairs: Transaction | None = None
        to_apply = transaction
        if on_violation != "ignore" and self._db.constraints:
            check_result = self.check(transaction)
            if not check_result.ok:
                if on_violation == "reject":
                    return ExecutionResult(False, transaction, check_result)
                from repro.core.maintenance import maintain_iteratively

                maintained = maintain_iteratively(self._db, transaction)
                chosen = maintained.best()
                if chosen is None:
                    return ExecutionResult(False, transaction, check_result)
                repairs = Transaction(chosen.events - transaction.events)
                to_apply = chosen
        self._apply_in_place(to_apply)
        return ExecutionResult(True, to_apply, check_result, repairs)

    def handle(self, request):
        """Run one typed :class:`~repro.requests.UpdateRequest` locally.

        The same request object a :class:`~repro.server.client.DatabaseClient`
        would :meth:`~repro.server.client.DatabaseClient.send` over the wire,
        executed in-process; returns the rich result object (not the wire
        dict).  Server-only ops (``hello``, ``stats``, ...) raise.
        """
        return request.run(self)

    def explain(self, transaction: Transaction, event: Event,
                max_explanations: int = 1):
        """Why would *transaction* induce *event*?  (Derivation trees.)

        Empty when the event is not induced.  Requires a non-recursive
        program (the explanation runs over the flat transition program).
        """
        from repro.interpretations.explanation import explain_event

        return explain_event(self._db, transaction, event,
                             max_explanations=max_explanations)

    def evolve(self, add_rules=(), remove_rules=(),
               add_constraints=(), remove_constraints=()):
        """Apply an intensional (rule-level) update in place (end of §5.3).

        Computes the induced derived changes first (see
        :func:`repro.core.schema_updates.apply_schema_update`), then commits
        the rule changes to this processor's database and recompiles.
        Returns the :class:`~repro.core.schema_updates.SchemaUpdateResult`
        (whose ``db`` attribute is the pre-commit analysis copy).
        """
        from repro.core.schema_updates import apply_schema_update

        result = apply_schema_update(
            self._db, add_rules=add_rules, remove_rules=remove_rules,
            add_constraints=add_constraints,
            remove_constraints=remove_constraints)
        for rule_ in remove_rules:
            self._db.remove_rule(rule_)
        for rule_ in add_rules:
            self._db.add_rule(rule_)
        for constraint in remove_constraints:
            self._db.remove_constraint(constraint)
        for constraint in add_constraints:
            self._db.add_constraint(constraint)
        self.refresh()
        return result

    def _apply_in_place(self, transaction: Transaction) -> None:
        transaction.check_base_only(self._db)
        for event in transaction:
            if event.is_insertion:
                self._db.add_fact(event.predicate, *event.args)
            else:
                self._db.remove_fact(event.predicate, *event.args)
        # Facts changed: interpreters cache old-state materialisations.
        self.invalidate_state_caches()
