"""Iterated repair: drive an inconsistent database to a consistent fixpoint.

One downward interpretation of ``δIc`` already yields transactions that
restore consistency outright (the global ``Ic`` covers every constraint).
This loop exists for two reasons: as a belt-and-braces verification that a
chosen repair really worked (the §5.3 downward-then-upward combination),
and to support *partial* repair strategies that fix one constraint at a
time and may expose further violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.datalog.database import DeductiveDatabase
from repro.events.events import Transaction
from repro.interpretations.downward import Translation
from repro.problems.base import StateError, global_ic_holds
from repro.problems.repair import repair_database

#: Strategy: pick one repair among the candidates (None = give up).
RepairStrategy = Callable[[Sequence[Translation]], Translation | None]


def smallest_repair(candidates: Sequence[Translation]) -> Translation | None:
    """Default strategy: the fewest-events translation (ties by rendering)."""
    if not candidates:
        return None
    return min(candidates, key=lambda t: (len(t.transaction), str(t)))


@dataclass
class RepairLoopResult:
    """Outcome of :func:`repair_to_consistency`."""

    consistent: bool
    rounds: int
    #: The transactions applied, one per round.
    applied: tuple[Transaction, ...] = ()
    #: The repaired database (a copy; the input is never mutated).
    db: DeductiveDatabase | None = field(default=None, repr=False)

    def total_events(self) -> int:
        """Total number of base-fact updates applied across all rounds."""
        return sum(len(t) for t in self.applied)


def repair_to_consistency(db: DeductiveDatabase,
                          strategy: RepairStrategy = smallest_repair,
                          max_rounds: int = 1000,
                          granularity: str = "violation") -> RepairLoopResult:
    """Repeatedly repair (5.2.3) until every constraint is satisfied.

    ``granularity="violation"`` (default) repairs one violating constraint
    instance per round (downward ``δIcN(c)``) -- linear in the number of
    violations.  ``granularity="global"`` downward-interprets ``δIc`` once
    per round, producing *complete* repairs but with combinatorially many
    alternatives (only viable for a handful of simultaneous violations).

    Works on a copy; the input database is untouched.  Raises
    :class:`StateError` when called on an already-consistent database
    (repair's precondition, matching :func:`repro.problems.repair`).
    """
    if granularity not in ("violation", "global"):
        raise ValueError(f"unknown granularity: {granularity!r}")
    if not global_ic_holds(db):
        raise StateError("database is already consistent; nothing to repair")
    working = db.copy()
    applied: list[Transaction] = []
    for round_number in range(1, max_rounds + 1):
        if granularity == "global":
            candidates = repair_database(working).repairs
        else:
            candidates = _single_violation_repairs(working)
        chosen = strategy(candidates)
        if chosen is None:
            return RepairLoopResult(False, round_number - 1, tuple(applied), working)
        for event in chosen.transaction:
            if event.is_insertion:
                working.add_fact(event.predicate, *event.args)
            else:
                working.remove_fact(event.predicate, *event.args)
        applied.append(chosen.transaction)
        if not global_ic_holds(working):
            return RepairLoopResult(True, round_number, tuple(applied), working)
    return RepairLoopResult(False, max_rounds, tuple(applied), working)


def _single_violation_repairs(db: DeductiveDatabase) -> Sequence[Translation]:
    """Repairs of the first violated constraint instance (deterministic)."""
    from repro.interpretations.downward import DownwardInterpreter, want_delete
    from repro.problems.ic_checking import full_check

    violations = full_check(db)
    if not violations:
        return ()
    predicate = min(violations)
    row = min(violations[predicate], key=str)
    interpreter = DownwardInterpreter(db)
    return interpreter.interpret(want_delete(predicate, *row)).translations
