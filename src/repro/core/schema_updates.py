"""Updates of deductive rules and integrity constraints (end of Section 5.3).

"The specification of the upward and the downward problems is the same when
considering other kinds of updates like insertions or deletions of deductive
rules.  In this case, we should first determine the changes on the
transition and event rules caused by the update and apply then our approach
in the same way."

Concretely: a schema update recompiles the transition program and induces
changes on derived predicates even though no base fact moved.  This module
computes those induced changes (as an :class:`UpwardResult`-shaped diff) and
reports any constraint violations the new schema introduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.datalog.database import GLOBAL_IC, DeductiveDatabase
from repro.datalog.evaluation import BottomUpEvaluator
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant
from repro.events.events import Transaction
from repro.interpretations.upward import UpwardResult

Row = tuple[Constant, ...]


@dataclass
class SchemaUpdateResult:
    """Induced effects of an intensional (rule-level) update."""

    #: The updated database (a copy; the input is untouched).
    db: DeductiveDatabase
    #: Changes on derived predicates induced by the rule update.
    induced: UpwardResult
    #: Constraints newly violated (``IcN`` -> witness rows).
    new_violations: dict[str, frozenset[Row]] = field(default_factory=dict)
    #: Constraints no longer violated.
    resolved_violations: dict[str, frozenset[Row]] = field(default_factory=dict)

    @property
    def keeps_consistency(self) -> bool:
        """True when the update introduces no new constraint violation."""
        return not self.new_violations


def apply_schema_update(db: DeductiveDatabase,
                        add_rules: Iterable[Rule] = (),
                        remove_rules: Iterable[Rule] = (),
                        add_constraints: Iterable[Rule] = (),
                        remove_constraints: Iterable[Rule] = ()
                        ) -> SchemaUpdateResult:
    """Apply an intensional update and compute the induced derived changes.

    The extensional part is untouched; the induced events come purely from
    the changed rule set (old vs. new perfect model of the same facts).
    """
    updated = db.copy()
    for rule_ in remove_rules:
        updated.remove_rule(rule_)
    for rule_ in add_rules:
        updated.add_rule(rule_)
    for constraint in remove_constraints:
        updated.remove_constraint(constraint)
    for constraint in add_constraints:
        updated.add_constraint(constraint)

    old_eval = BottomUpEvaluator(db, db.rules_with_global_ic())
    new_eval = BottomUpEvaluator(updated, updated.rules_with_global_ic())
    old_state = old_eval.materialize()
    new_state = new_eval.materialize()

    insertions: dict[str, frozenset[Row]] = {}
    deletions: dict[str, frozenset[Row]] = {}
    derived = set(old_state.derived) | set(new_state.derived)
    for predicate in derived:
        gained = new_state.extension(predicate) - old_state.extension(predicate)
        lost = old_state.extension(predicate) - new_state.extension(predicate)
        if gained:
            insertions[predicate] = frozenset(gained)
        if lost:
            deletions[predicate] = frozenset(lost)
    induced = UpwardResult(insertions, deletions, Transaction(),
                           covered=frozenset(derived))

    constraint_heads = {r.head.predicate for r in updated.constraints}
    constraint_heads |= {r.head.predicate for r in db.constraints}
    new_violations = {
        p: rows for p, rows in insertions.items()
        if p in constraint_heads or p == GLOBAL_IC
    }
    resolved = {
        p: rows for p, rows in deletions.items()
        if p in constraint_heads or p == GLOBAL_IC
    }
    return SchemaUpdateResult(updated, induced, new_violations, resolved)
