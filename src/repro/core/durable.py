"""Durable storage: snapshot plus write-ahead event log, with recovery.

Events are the natural unit of durability for a deductive database: the
intensional part changes rarely (snapshot it), the extensional part changes
through transactions (log their events).  :class:`DurableDatabase` wraps a
:class:`~repro.datalog.database.DeductiveDatabase` with

- a **snapshot** file in the parser's concrete syntax,
- an **event log** with one committed transaction per line
  (``insert P(A), delete Q(B)`` -- the transaction parser's own syntax),
- crash recovery: load the snapshot, replay the log, dropping a torn final
  line (a crash mid-append);
- :meth:`checkpoint`: fold the log into a fresh snapshot and truncate it.

Durability contract: :meth:`commit` fsyncs the log before returning, so an
acknowledged commit survives a crash.  The group-commit path of
:class:`repro.server.engine.DatabaseEngine` amortises that cost by
appending a whole batch with ``sync=False`` and calling :meth:`sync_log`
once.

Exactly-once identity
---------------------
A commit stamped with a ``txn_id`` writes a *self-identifying* WAL line::

    #txn <id> <digest> applied :: insert P(A), delete Q(B)
    #txn <id> <digest> applied ::               (applied, no net effect)
    #txn <id> <digest> rejected ::              (definitive rejection)
    #txn <id> <digest> prepared :: insert P(A)  (2PC vote, not yet applied)
    #txn <id> <digest> aborted ::               (2PC abort decision)

The header travels on the same line as the events, so the record is as
atomic as the append itself: a torn write loses the whole commit *and* its
identity together, never one without the other.  Recovery rebuilds the
bounded :class:`TxnDedupTable` from these headers (plus the ``txns.json``
checkpoint sidecar, which preserves the table across log truncation), which
is what lets a retried commit whose first attempt survived the crash return
the original outcome instead of double-applying.  Legacy logs without
headers replay unchanged.

Two-phase commit markers
------------------------
A ``prepared`` line is a shard's durable yes-vote in a cross-shard commit
(:mod:`repro.shard`): it carries the *requested* events but replay does not
apply them.  The vote is resolved by a later line for the same ``txn_id``
-- ``applied`` (the commit decision, carrying the effective events) or
``aborted`` (the abort decision, eventless).  A prepared line with no
resolution at recovery time is **in doubt**: replay collects these into
:attr:`DurableDatabase.in_doubt` so the engine can re-lock their fact keys
and the coordinator can resolve them against its decision log.  Checkpoints
re-append unresolved prepared lines after truncating the log, so an
in-doubt vote survives any number of checkpoints.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro import faults
from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import ParseError, TransactionError
from repro.events.events import Transaction, parse_transaction

logger = logging.getLogger("repro.core.durable")

SNAPSHOT_NAME = "snapshot.dl"
LOG_NAME = "events.log"
TXN_SIDECAR_NAME = "txns.json"

#: WAL lines carrying a transaction identity start with this marker.
TXN_LINE_PREFIX = "#txn "
#: Separates the txn header from the (possibly empty) event payload.
TXN_SEPARATOR = " :: "
#: Default bound on remembered transaction outcomes (FIFO eviction).
DEFAULT_DEDUP_CAPACITY = 4096
#: Valid statuses in a ``#txn`` WAL header (see the module docstring).
TXN_STATUSES = ("applied", "rejected", "prepared", "aborted")

FP_WAL_MID_APPEND = faults.register(
    "wal.mid_append",
    "inside a WAL append, before the payload is complete; a 'torn' action "
    "writes only param of the line then crashes (the torn-tail signature)")
FP_WAL_PRE_FSYNC = faults.register(
    "wal.pre_fsync",
    "after WAL bytes reach the file, before the fsync that makes them "
    "durable (both the per-commit and the group sync_log path)")
FP_CHECKPOINT_PRE_RENAME = faults.register(
    "checkpoint.pre_rename",
    "checkpoint: new snapshot synced to its temp file, before the atomic "
    "rename over the old one (crash leaves old snapshot + full log)")
FP_CHECKPOINT_PRE_TRUNCATE = faults.register(
    "checkpoint.pre_truncate",
    "checkpoint: new snapshot in place, before the log truncate (crash "
    "leaves new snapshot + stale log; replay must be idempotent)")


def transaction_digest(transaction: Transaction) -> str:
    """A stable fingerprint of a transaction's *requested* body.

    Retries resend the same body, so the digest lets the dedup table
    distinguish a legitimate retry (same ``txn_id``, same digest) from a
    ``txn_id`` reuse bug (same id, different body).  Sorted rendering makes
    it independent of event order.
    """
    text = ",".join(sorted(
        ("insert " if e.is_insertion else "delete ") + str(e.atom())
        for e in transaction))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TxnRecord:
    """One remembered commit outcome: body fingerprint plus wire result."""

    digest: str
    #: The ``CommitOutcome.to_dict()`` shape (recovered records carry only
    #: ``applied``/``effective`` plus ``"recovered": True`` -- the integrity
    #: check verdict does not survive a crash, the outcome does).
    outcome: dict


class TxnDedupTable:
    """A bounded, thread-safe map of ``txn_id`` -> :class:`TxnRecord`.

    Insertion-ordered with FIFO eviction at *capacity*: the oldest
    remembered outcome is forgotten first.  A retry arriving after its
    record was evicted re-executes -- the bound is the explicit limit of
    the exactly-once window, sized so that any sane retry policy lands
    well inside it.
    """

    def __init__(self, capacity: int = DEFAULT_DEDUP_CAPACITY):
        if capacity < 1:
            raise ValueError("dedup capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: OrderedDict[str, TxnRecord] = OrderedDict()

    def get(self, txn_id: str) -> TxnRecord | None:
        with self._lock:
            return self._records.get(txn_id)

    def put(self, txn_id: str, digest: str, outcome: dict) -> None:
        with self._lock:
            if txn_id in self._records:
                self._records.move_to_end(txn_id)
            self._records[txn_id] = TxnRecord(digest, outcome)
            while len(self._records) > self.capacity:
                self._records.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def snapshot(self) -> list[list]:
        """Insertion-ordered ``[id, digest, outcome]`` rows (the sidecar)."""
        with self._lock:
            return [[txn_id, record.digest, record.outcome]
                    for txn_id, record in self._records.items()]


def parse_log_line(text: str) -> tuple[tuple[str, str, str] | None, str]:
    """Split one WAL line into ``((txn_id, digest, status) | None, body)``.

    Raises :class:`~repro.datalog.errors.ParseError` on a malformed txn
    header, so replay treats a torn header exactly like a torn payload.
    """
    if not text.startswith(TXN_LINE_PREFIX):
        return None, text
    # Partition on " ::" (not " :: ") so a no-payload line, whose trailing
    # space was stripped, still splits; the header never contains "::".
    header, separator, body = text.partition(TXN_SEPARATOR.rstrip())
    if not separator:
        raise ParseError(f"txn log line has no '{TXN_SEPARATOR.strip()}' "
                         f"separator: {text!r}")
    parts = header.split()
    if len(parts) != 4 or parts[3] not in TXN_STATUSES:
        raise ParseError(f"malformed txn log header: {header!r}")
    return (parts[1], parts[2], parts[3]), body.strip()


def _render_events(transaction: Transaction) -> str:
    """The WAL rendering of a transaction body (sorted, parseable)."""
    return ", ".join(sorted(
        ("insert " if e.is_insertion else "delete ") + str(e.atom())
        for e in transaction))


def _fsync_file(handle) -> None:
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_directory(directory: Path) -> None:
    # A rename is only durable once the containing directory is synced.
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class DurableDatabase:
    """A deductive database persisted under a directory.

    Open (or create) with :meth:`open`; route all fact updates through
    :meth:`commit`.  Rule changes require :meth:`checkpoint` (they rewrite
    the snapshot).
    """

    def __init__(self, db: DeductiveDatabase, directory: Path,
                 txns: TxnDedupTable | None = None,
                 in_doubt: dict[str, tuple[str, Transaction]] | None = None):
        self._db = db
        self._directory = directory
        self._log_path = directory / LOG_NAME
        #: Remembered commit outcomes by ``txn_id`` (the dedup table).
        self.txns = txns if txns is not None else TxnDedupTable()
        #: Unresolved 2PC votes: ``txn_id -> (digest, requested events)``.
        #: Maintained by :meth:`log_prepare` / :meth:`commit` /
        #: :meth:`log_txn_outcome`; rebuilt from the log on :meth:`open`.
        self.in_doubt: dict[str, tuple[str, Transaction]] = \
            dict(in_doubt) if in_doubt else {}

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, directory, initial: DeductiveDatabase | None = None, *,
             dedup_capacity: int = DEFAULT_DEDUP_CAPACITY
             ) -> "DurableDatabase":
        """Open a durable database, recovering from snapshot + log.

        For a fresh directory, ``initial`` (or an empty database) becomes
        the first snapshot.  A torn final log line -- the signature of a
        crash between append and fsync -- is dropped and the durable prefix
        recovered; corruption anywhere *before* the final line still
        raises, since silently skipping acknowledged commits would be worse
        than failing loudly.  The transaction dedup table is rebuilt from
        the ``txns.json`` sidecar (checkpoint-era records) plus the ``#txn``
        headers in the log, newest record winning.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        snapshot_path = directory / SNAPSHOT_NAME
        log_path = directory / LOG_NAME
        txns = TxnDedupTable(dedup_capacity)
        in_doubt: dict[str, tuple[str, Transaction]] = {}
        if snapshot_path.exists():
            if initial is not None:
                raise TransactionError(
                    f"{directory} already holds a database; open it without "
                    f"'initial' or choose a fresh directory"
                )
            db = DeductiveDatabase.from_source(snapshot_path.read_text())
            cls._load_txn_sidecar(directory, txns)
            if log_path.exists():
                in_doubt = cls._replay_log(db, log_path, txns)
        else:
            db = initial.copy() if initial is not None else DeductiveDatabase()
            snapshot_path.write_text(str(db) + "\n")
            log_path.write_text("")
        return cls(db, directory, txns, in_doubt)

    @staticmethod
    def _load_txn_sidecar(directory: Path, txns: TxnDedupTable) -> None:
        path = directory / TXN_SIDECAR_NAME
        if not path.exists():
            return
        try:
            payload = json.loads(path.read_text())
            entries = payload["entries"]
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            # The sidecar is written atomically, so corruption means disk
            # trouble.  Dedup metadata is an availability feature: degrade
            # (retries inside the lost window may re-execute) rather than
            # refusing to serve the data at all -- but say so.
            logger.warning("ignoring unreadable txn sidecar %s: %s",
                           path, error)
            return
        for txn_id, digest, outcome in entries:
            txns.put(txn_id, digest, outcome)

    @staticmethod
    def _replay_log(db: DeductiveDatabase, log_path: Path,
                    txns: TxnDedupTable | None = None
                    ) -> dict[str, tuple[str, Transaction]]:
        raw = log_path.read_text()
        lines = raw.splitlines()
        # Appends always end with a newline, so a file that does not is
        # missing the tail of its final write: treat that line as torn even
        # if the fragment happens to parse.
        torn_tail = bool(raw) and not raw.endswith("\n")
        good: list[str] = []
        in_doubt: dict[str, tuple[str, Transaction]] = {}
        torn = False
        for index, line in enumerate(lines):
            text = line.strip()
            if not text:
                continue
            is_last = not any(l.strip() for l in lines[index + 1:])
            if is_last and torn_tail:
                torn = True
                break
            try:
                header, body = parse_log_line(text)
                events = parse_transaction(body) if body else Transaction()
            except ParseError:
                if not is_last:
                    raise
                torn = True
                break
            status = header[2] if header is not None else "applied"
            if status == "prepared":
                # A durable yes-vote: remember it, apply nothing.  A later
                # applied/aborted line for the same id resolves it; a vote
                # still here at the end of the log is in doubt.
                txn_id, digest, _ = header
                in_doubt[txn_id] = (digest, events)
                good.append(text)
                continue
            if status == "applied":
                for event in events:
                    if event.is_insertion:
                        db.add_fact(event.predicate, *event.args)
                    else:
                        db.remove_fact(event.predicate, *event.args)
            if header is not None and txns is not None:
                txn_id, digest, _ = header
                in_doubt.pop(txn_id, None)
                outcome = {
                    "applied": status == "applied",
                    "effective": (events.to_dict()
                                  if status == "applied" else []),
                    "recovered": True,
                }
                if status == "aborted":
                    outcome["aborted"] = True
                txns.put(txn_id, digest, outcome)
            good.append(text)
        if torn:
            # Rewrite atomically (temp file + fsync + rename, the same
            # pattern as checkpoint): truncating the log in place would
            # open a window where a second crash loses the whole durable
            # prefix this method exists to recover.
            temporary = log_path.with_suffix(".tmp")
            with temporary.open("w") as log:
                log.write("".join(line + "\n" for line in good))
                _fsync_file(log)
            os.replace(temporary, log_path)
            _fsync_directory(log_path.parent)
        return in_doubt

    @property
    def db(self) -> DeductiveDatabase:
        """The live in-memory database."""
        return self._db

    @property
    def directory(self) -> Path:
        """The storage directory."""
        return self._directory

    # -- writes ---------------------------------------------------------------

    def commit(self, transaction: Transaction, sync: bool = True,
               txn: tuple[str, str] | None = None) -> Transaction:
        """Durably apply a transaction; returns the effective events.

        The effective (normalised) transaction is appended to the log
        *before* being applied in memory, so a crash between the two leaves
        a replayable log.  Replaying an already-applied effective event is
        idempotent under set semantics, so recovery is safe either way.

        With ``sync=True`` (the default) the append is fsynced before the
        in-memory apply, so the commit is durable once this returns.
        ``sync=False`` skips the fsync -- the group-commit path uses it to
        append a whole batch and pay for one :meth:`sync_log` instead.

        *txn* is an optional ``(txn_id, digest)`` identity: the WAL line is
        prefixed with a ``#txn`` header (one line, so identity and events
        are torn or durable together), and a line is written even when the
        effective event set is empty -- an acked no-op must be remembered
        too, or a post-crash retry could re-run it against a changed state.
        """
        transaction.check_base_only(self._db)
        effective = transaction.normalized(self._db)
        if effective.events or txn is not None:
            rendered = _render_events(effective)
            if txn is not None:
                txn_id, digest = txn
                rendered = (f"{TXN_LINE_PREFIX}{txn_id} {digest} applied"
                            f"{TXN_SEPARATOR}{rendered}".rstrip())
            payload = rendered + "\n"
            with self._log_path.open("a") as log:
                action = faults.failpoint(FP_WAL_MID_APPEND, payload=rendered)
                if action is not None and action.kind == "torn":
                    self._torn_append(log, payload, action)
                log.write(payload)
                if sync:
                    faults.failpoint(FP_WAL_PRE_FSYNC)
                    _fsync_file(log)
                else:
                    log.flush()
        for event in effective:
            if event.is_insertion:
                self._db.add_fact(event.predicate, *event.args)
            else:
                self._db.remove_fact(event.predicate, *event.args)
        if txn is not None:
            self.in_doubt.pop(txn[0], None)
        return effective

    @staticmethod
    def _torn_append(log, payload: str, action: faults.FaultAction) -> None:
        """Write a strict prefix of *payload*, then die (a torn write).

        ``action.param`` is the fraction of the line that reaches the file
        (default one half); the newline never makes it, which is exactly
        the signature :meth:`_replay_log` recovers from.
        """
        fraction = action.param if action.param is not None else 0.5
        cut = max(0, min(int(len(payload) * fraction), len(payload) - 1))
        log.write(payload[:cut])
        log.flush()
        raise faults.SimulatedCrash(
            f"torn WAL append: {cut} of {len(payload)} bytes written")

    def log_prepare(self, txn_id: str, digest: str,
                    transaction: Transaction, sync: bool = True) -> None:
        """Durably record a 2PC yes-vote: a ``prepared`` WAL line.

        The line carries the *requested* events (the effective set is
        computed at decide time, against whatever state holds then), but
        replay never applies them -- see the module docstring.  The vote is
        registered in :attr:`in_doubt` until a decision resolves it.
        """
        rendered = (f"{TXN_LINE_PREFIX}{txn_id} {digest} prepared"
                    f"{TXN_SEPARATOR}{_render_events(transaction)}".rstrip())
        self._append_line(rendered + "\n", sync=sync)
        self.in_doubt[txn_id] = (digest, transaction)

    def log_txn_outcome(self, txn_id: str, digest: str,
                        applied: bool, sync: bool = False,
                        status: str | None = None) -> None:
        """Append a marker line recording a definitive eventless outcome.

        Used for **rejected** commits (no events ever reach the log, but
        the rejection itself must be remembered so a retry returns it
        instead of re-running the check against a moved state) and for 2PC
        **abort** decisions (``status="aborted"``, which also releases the
        in-doubt vote).  Applied commits -- effectful or not -- are
        recorded by :meth:`commit`.
        """
        if status is None:
            status = "applied" if applied else "rejected"
        if status not in TXN_STATUSES:
            raise ValueError(f"unknown txn status: {status!r}")
        payload = f"{TXN_LINE_PREFIX}{txn_id} {digest} {status}" \
                  f"{TXN_SEPARATOR}".rstrip() + "\n"
        self._append_line(payload, sync=sync)
        if status != "prepared":
            self.in_doubt.pop(txn_id, None)

    def _append_line(self, payload: str, sync: bool) -> None:
        """Append one WAL line through the shared failpoint choreography."""
        with self._log_path.open("a") as log:
            action = faults.failpoint(FP_WAL_MID_APPEND,
                                      payload=payload.rstrip("\n"))
            if action is not None and action.kind == "torn":
                self._torn_append(log, payload, action)
            log.write(payload)
            if sync:
                faults.failpoint(FP_WAL_PRE_FSYNC)
                _fsync_file(log)
            else:
                log.flush()

    def sync_log(self) -> None:
        """fsync the event log; makes prior ``sync=False`` commits durable."""
        with self._log_path.open("a") as log:
            faults.failpoint(FP_WAL_PRE_FSYNC)
            os.fsync(log.fileno())

    def _write_txn_sidecar(self) -> None:
        """Persist the dedup table atomically (temp + fsync + rename)."""
        target = self._directory / TXN_SIDECAR_NAME
        temporary = target.with_suffix(".tmp")
        payload = {"v": 1, "capacity": self.txns.capacity,
                   "entries": self.txns.snapshot()}
        with temporary.open("w") as fh:
            json.dump(payload, fh, separators=(",", ":"))
            _fsync_file(fh)
        os.replace(temporary, target)

    def checkpoint(self) -> None:
        """Fold the event log into a fresh snapshot and truncate the log.

        The new snapshot is synced before it replaces the old one and the
        truncated log before the method returns, so a crash at any point
        leaves either the old snapshot + full log or the new snapshot +
        empty log.  The txn dedup table is written to its sidecar *first*:
        truncating the log destroys the ``#txn`` records it holds, so the
        sidecar must already carry them -- a crash before the truncate
        merely leaves both, and sidecar-then-log replay is idempotent.
        """
        snapshot_path = self._directory / SNAPSHOT_NAME
        self._write_txn_sidecar()
        temporary = snapshot_path.with_suffix(".tmp")
        with temporary.open("w") as fh:
            fh.write(str(self._db) + "\n")
            _fsync_file(fh)
        faults.failpoint(FP_CHECKPOINT_PRE_RENAME)
        temporary.replace(snapshot_path)
        faults.failpoint(FP_CHECKPOINT_PRE_TRUNCATE)
        with self._log_path.open("w") as log:
            # The snapshot only holds *applied* state; unresolved 2PC votes
            # must outlive the truncation, so their prepared lines are the
            # one thing the fresh log starts with.
            for txn_id, (digest, transaction) in self.in_doubt.items():
                log.write(f"{TXN_LINE_PREFIX}{txn_id} {digest} prepared"
                          f"{TXN_SEPARATOR}"
                          f"{_render_events(transaction)}".rstrip() + "\n")
            _fsync_file(log)
        _fsync_directory(self._directory)

    def log_length(self) -> int:
        """Number of committed transactions since the last checkpoint.

        Marker-only txn lines (rejections, acked no-ops) carry no events
        and are not counted; neither are ``prepared`` votes, which are not
        commits until a decision lands.
        """
        if not self._log_path.exists():
            return 0
        count = 0
        for line in self._log_path.read_text().splitlines():
            text = line.strip()
            if not text:
                continue
            try:
                header, body = parse_log_line(text)
            except ParseError:
                continue  # a torn tail fragment; replay drops it too
            if body and (header is None or header[2] != "prepared"):
                count += 1
        return count
