"""Durable storage: snapshot plus write-ahead event log, with recovery.

Events are the natural unit of durability for a deductive database: the
intensional part changes rarely (snapshot it), the extensional part changes
through transactions (log their events).  :class:`DurableDatabase` wraps a
:class:`~repro.datalog.database.DeductiveDatabase` with

- a **snapshot** file in the parser's concrete syntax,
- an **event log** with one committed transaction per line
  (``insert P(A), delete Q(B)`` -- the transaction parser's own syntax),
- crash recovery: load the snapshot, replay the log;
- :meth:`checkpoint`: fold the log into a fresh snapshot and truncate it.
"""

from __future__ import annotations

from pathlib import Path

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import TransactionError
from repro.events.events import Transaction, parse_transaction

SNAPSHOT_NAME = "snapshot.dl"
LOG_NAME = "events.log"


class DurableDatabase:
    """A deductive database persisted under a directory.

    Open (or create) with :meth:`open`; route all fact updates through
    :meth:`commit`.  Rule changes require :meth:`checkpoint` (they rewrite
    the snapshot).
    """

    def __init__(self, db: DeductiveDatabase, directory: Path):
        self._db = db
        self._directory = directory
        self._log_path = directory / LOG_NAME

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, directory, initial: DeductiveDatabase | None = None
             ) -> "DurableDatabase":
        """Open a durable database, recovering from snapshot + log.

        For a fresh directory, ``initial`` (or an empty database) becomes
        the first snapshot.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        snapshot_path = directory / SNAPSHOT_NAME
        log_path = directory / LOG_NAME
        if snapshot_path.exists():
            if initial is not None:
                raise TransactionError(
                    f"{directory} already holds a database; open it without "
                    f"'initial' or choose a fresh directory"
                )
            db = DeductiveDatabase.from_source(snapshot_path.read_text())
            if log_path.exists():
                for line in log_path.read_text().splitlines():
                    line = line.strip()
                    if not line:
                        continue
                    for event in parse_transaction(line):
                        if event.is_insertion:
                            db.add_fact(event.predicate, *event.args)
                        else:
                            db.remove_fact(event.predicate, *event.args)
        else:
            db = initial.copy() if initial is not None else DeductiveDatabase()
            snapshot_path.write_text(str(db) + "\n")
            log_path.write_text("")
        return cls(db, directory)

    @property
    def db(self) -> DeductiveDatabase:
        """The live in-memory database."""
        return self._db

    @property
    def directory(self) -> Path:
        """The storage directory."""
        return self._directory

    # -- writes ---------------------------------------------------------------

    def commit(self, transaction: Transaction) -> Transaction:
        """Durably apply a transaction; returns the effective events.

        The effective (normalised) transaction is appended to the log
        *before* being applied in memory, so a crash between the two leaves
        a replayable log.  Replaying an already-applied effective event is
        idempotent under set semantics, so recovery is safe either way.
        """
        transaction.check_base_only(self._db)
        effective = transaction.normalized(self._db)
        if effective.events:
            rendered = ", ".join(sorted(
                ("insert " if e.is_insertion else "delete ") + str(e.atom())
                for e in effective
            ))
            with self._log_path.open("a") as log:
                log.write(rendered + "\n")
        for event in effective:
            if event.is_insertion:
                self._db.add_fact(event.predicate, *event.args)
            else:
                self._db.remove_fact(event.predicate, *event.args)
        return effective

    def checkpoint(self) -> None:
        """Fold the event log into a fresh snapshot and truncate the log."""
        snapshot_path = self._directory / SNAPSHOT_NAME
        temporary = snapshot_path.with_suffix(".tmp")
        temporary.write_text(str(self._db) + "\n")
        temporary.replace(snapshot_path)
        self._log_path.write_text("")

    def log_length(self) -> int:
        """Number of committed transactions since the last checkpoint."""
        if not self._log_path.exists():
            return 0
        return sum(1 for line in self._log_path.read_text().splitlines()
                   if line.strip())
