"""Durable storage: snapshot plus write-ahead event log, with recovery.

Events are the natural unit of durability for a deductive database: the
intensional part changes rarely (snapshot it), the extensional part changes
through transactions (log their events).  :class:`DurableDatabase` wraps a
:class:`~repro.datalog.database.DeductiveDatabase` with

- a **snapshot** file in the parser's concrete syntax,
- an **event log** with one committed transaction per line
  (``insert P(A), delete Q(B)`` -- the transaction parser's own syntax),
- crash recovery: load the snapshot, replay the log, dropping a torn final
  line (a crash mid-append);
- :meth:`checkpoint`: fold the log into a fresh snapshot and truncate it.

Durability contract: :meth:`commit` fsyncs the log before returning, so an
acknowledged commit survives a crash.  The group-commit path of
:class:`repro.server.engine.DatabaseEngine` amortises that cost by
appending a whole batch with ``sync=False`` and calling :meth:`sync_log`
once.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro import faults
from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import ParseError, TransactionError
from repro.events.events import Transaction, parse_transaction

SNAPSHOT_NAME = "snapshot.dl"
LOG_NAME = "events.log"

FP_WAL_MID_APPEND = faults.register(
    "wal.mid_append",
    "inside a WAL append, before the payload is complete; a 'torn' action "
    "writes only param of the line then crashes (the torn-tail signature)")
FP_WAL_PRE_FSYNC = faults.register(
    "wal.pre_fsync",
    "after WAL bytes reach the file, before the fsync that makes them "
    "durable (both the per-commit and the group sync_log path)")
FP_CHECKPOINT_PRE_RENAME = faults.register(
    "checkpoint.pre_rename",
    "checkpoint: new snapshot synced to its temp file, before the atomic "
    "rename over the old one (crash leaves old snapshot + full log)")
FP_CHECKPOINT_PRE_TRUNCATE = faults.register(
    "checkpoint.pre_truncate",
    "checkpoint: new snapshot in place, before the log truncate (crash "
    "leaves new snapshot + stale log; replay must be idempotent)")


def _fsync_file(handle) -> None:
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_directory(directory: Path) -> None:
    # A rename is only durable once the containing directory is synced.
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class DurableDatabase:
    """A deductive database persisted under a directory.

    Open (or create) with :meth:`open`; route all fact updates through
    :meth:`commit`.  Rule changes require :meth:`checkpoint` (they rewrite
    the snapshot).
    """

    def __init__(self, db: DeductiveDatabase, directory: Path):
        self._db = db
        self._directory = directory
        self._log_path = directory / LOG_NAME

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, directory, initial: DeductiveDatabase | None = None
             ) -> "DurableDatabase":
        """Open a durable database, recovering from snapshot + log.

        For a fresh directory, ``initial`` (or an empty database) becomes
        the first snapshot.  A torn final log line -- the signature of a
        crash between append and fsync -- is dropped and the durable prefix
        recovered; corruption anywhere *before* the final line still
        raises, since silently skipping acknowledged commits would be worse
        than failing loudly.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        snapshot_path = directory / SNAPSHOT_NAME
        log_path = directory / LOG_NAME
        if snapshot_path.exists():
            if initial is not None:
                raise TransactionError(
                    f"{directory} already holds a database; open it without "
                    f"'initial' or choose a fresh directory"
                )
            db = DeductiveDatabase.from_source(snapshot_path.read_text())
            if log_path.exists():
                cls._replay_log(db, log_path)
        else:
            db = initial.copy() if initial is not None else DeductiveDatabase()
            snapshot_path.write_text(str(db) + "\n")
            log_path.write_text("")
        return cls(db, directory)

    @staticmethod
    def _replay_log(db: DeductiveDatabase, log_path: Path) -> None:
        raw = log_path.read_text()
        lines = raw.splitlines()
        # Appends always end with a newline, so a file that does not is
        # missing the tail of its final write: treat that line as torn even
        # if the fragment happens to parse.
        torn_tail = bool(raw) and not raw.endswith("\n")
        good: list[str] = []
        torn = False
        for index, line in enumerate(lines):
            text = line.strip()
            if not text:
                continue
            is_last = not any(l.strip() for l in lines[index + 1:])
            if is_last and torn_tail:
                torn = True
                break
            try:
                events = parse_transaction(text)
            except ParseError:
                if not is_last:
                    raise
                torn = True
                break
            for event in events:
                if event.is_insertion:
                    db.add_fact(event.predicate, *event.args)
                else:
                    db.remove_fact(event.predicate, *event.args)
            good.append(text)
        if torn:
            # Rewrite atomically (temp file + fsync + rename, the same
            # pattern as checkpoint): truncating the log in place would
            # open a window where a second crash loses the whole durable
            # prefix this method exists to recover.
            temporary = log_path.with_suffix(".tmp")
            with temporary.open("w") as log:
                log.write("".join(line + "\n" for line in good))
                _fsync_file(log)
            os.replace(temporary, log_path)
            _fsync_directory(log_path.parent)

    @property
    def db(self) -> DeductiveDatabase:
        """The live in-memory database."""
        return self._db

    @property
    def directory(self) -> Path:
        """The storage directory."""
        return self._directory

    # -- writes ---------------------------------------------------------------

    def commit(self, transaction: Transaction, sync: bool = True) -> Transaction:
        """Durably apply a transaction; returns the effective events.

        The effective (normalised) transaction is appended to the log
        *before* being applied in memory, so a crash between the two leaves
        a replayable log.  Replaying an already-applied effective event is
        idempotent under set semantics, so recovery is safe either way.

        With ``sync=True`` (the default) the append is fsynced before the
        in-memory apply, so the commit is durable once this returns.
        ``sync=False`` skips the fsync -- the group-commit path uses it to
        append a whole batch and pay for one :meth:`sync_log` instead.
        """
        transaction.check_base_only(self._db)
        effective = transaction.normalized(self._db)
        if effective.events:
            rendered = ", ".join(sorted(
                ("insert " if e.is_insertion else "delete ") + str(e.atom())
                for e in effective
            ))
            payload = rendered + "\n"
            with self._log_path.open("a") as log:
                action = faults.failpoint(FP_WAL_MID_APPEND, payload=rendered)
                if action is not None and action.kind == "torn":
                    self._torn_append(log, payload, action)
                log.write(payload)
                if sync:
                    faults.failpoint(FP_WAL_PRE_FSYNC)
                    _fsync_file(log)
                else:
                    log.flush()
        for event in effective:
            if event.is_insertion:
                self._db.add_fact(event.predicate, *event.args)
            else:
                self._db.remove_fact(event.predicate, *event.args)
        return effective

    @staticmethod
    def _torn_append(log, payload: str, action: faults.FaultAction) -> None:
        """Write a strict prefix of *payload*, then die (a torn write).

        ``action.param`` is the fraction of the line that reaches the file
        (default one half); the newline never makes it, which is exactly
        the signature :meth:`_replay_log` recovers from.
        """
        fraction = action.param if action.param is not None else 0.5
        cut = max(0, min(int(len(payload) * fraction), len(payload) - 1))
        log.write(payload[:cut])
        log.flush()
        raise faults.SimulatedCrash(
            f"torn WAL append: {cut} of {len(payload)} bytes written")

    def sync_log(self) -> None:
        """fsync the event log; makes prior ``sync=False`` commits durable."""
        with self._log_path.open("a") as log:
            faults.failpoint(FP_WAL_PRE_FSYNC)
            os.fsync(log.fileno())

    def checkpoint(self) -> None:
        """Fold the event log into a fresh snapshot and truncate the log.

        The new snapshot is synced before it replaces the old one and the
        truncated log before the method returns, so a crash at any point
        leaves either the old snapshot + full log or the new snapshot +
        empty log.
        """
        snapshot_path = self._directory / SNAPSHOT_NAME
        temporary = snapshot_path.with_suffix(".tmp")
        with temporary.open("w") as fh:
            fh.write(str(self._db) + "\n")
            _fsync_file(fh)
        faults.failpoint(FP_CHECKPOINT_PRE_RENAME)
        temporary.replace(snapshot_path)
        faults.failpoint(FP_CHECKPOINT_PRE_TRUNCATE)
        with self._log_path.open("w") as log:
            _fsync_file(log)
        _fsync_directory(self._directory)

    def log_length(self) -> int:
        """Number of committed transactions since the last checkpoint."""
        if not self._log_path.exists():
            return 0
        return sum(1 for line in self._log_path.read_text().splitlines()
                   if line.strip())
