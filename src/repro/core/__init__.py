"""The update-processing system of the paper's introduction.

Deductive databases "include an update processing system that provides the
users with a uniform interface in which they can request different kinds of
updates".  This package is that system:

- :mod:`repro.core.processor` -- :class:`UpdateProcessor`, the façade that
  exposes every Section 5 problem over one compiled transition program;
- :mod:`repro.core.materialized` -- a stateful materialized-view store kept
  in sync by the upward interpretation;
- :mod:`repro.core.repair_loop` -- iterated integrity maintenance until a
  consistent fixpoint;
- :mod:`repro.core.schema_updates` -- updates of deductive rules and
  integrity constraints (last paragraph of Section 5.3).
"""

from repro.core.processor import UpdateProcessor
from repro.core.maintenance import (
    MaintenanceResult,
    maintain_iteratively,
    translate_with_maintenance,
)
from repro.core.materialized import MaterializedViewStore
from repro.core.triggers import ActiveDatabase, Trigger, TriggerLoopError
from repro.core.history import Journal, JournalEntry, inverse_of
from repro.core.durable import DurableDatabase
from repro.core.repair_loop import RepairLoopResult, repair_to_consistency
from repro.core.schema_updates import SchemaUpdateResult, apply_schema_update

__all__ = [
    "ActiveDatabase",
    "DurableDatabase",
    "Journal",
    "JournalEntry",
    "MaintenanceResult",
    "MaterializedViewStore",
    "RepairLoopResult",
    "SchemaUpdateResult",
    "UpdateProcessor",
    "apply_schema_update",
    "Trigger",
    "TriggerLoopError",
    "inverse_of",
    "maintain_iteratively",
    "translate_with_maintenance",
    "repair_to_consistency",
]
