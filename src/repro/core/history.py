"""Transaction history and undo.

A journal over a deductive database: every committed transaction is
recorded, and because transactions are sets of *effective* events
(insertions of previously-absent facts, deletions of previously-present
ones), each has an exact inverse -- undo is just applying the opposite
events in reverse order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import TransactionError
from repro.events.events import Transaction


def inverse_of(transaction: Transaction) -> Transaction:
    """The exact inverse of an *effective* transaction."""
    return Transaction(event.opposite() for event in transaction)


@dataclass
class JournalEntry:
    """One committed transaction with its precomputed inverse."""

    sequence: int
    transaction: Transaction
    inverse: Transaction

    def __str__(self) -> str:
        return f"#{self.sequence} {self.transaction}"


class Journal:
    """Write-ahead journal with undo over one database.

    Route all writes through :meth:`commit`; :meth:`undo` rolls back the
    most recent entries.  Transactions are normalised before commit, so the
    recorded events are exactly the effective ones and inverses are exact.
    """

    def __init__(self, db: DeductiveDatabase):
        self._db = db
        self._entries: list[JournalEntry] = []
        self._sequence = 0

    @property
    def db(self) -> DeductiveDatabase:
        """The journaled database."""
        return self._db

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> tuple[JournalEntry, ...]:
        """The committed entries, oldest first."""
        return tuple(self._entries)

    def commit(self, transaction: Transaction) -> JournalEntry:
        """Apply an effective transaction and record it."""
        transaction.check_base_only(self._db)
        effective = transaction.normalized(self._db)
        for event in effective:
            if event.is_insertion:
                self._db.add_fact(event.predicate, *event.args)
            else:
                self._db.remove_fact(event.predicate, *event.args)
        self._sequence += 1
        entry = JournalEntry(self._sequence, effective, inverse_of(effective))
        self._entries.append(entry)
        return entry

    def undo(self, steps: int = 1) -> tuple[JournalEntry, ...]:
        """Roll back the last *steps* transactions (most recent first)."""
        if steps < 1:
            raise ValueError("steps must be positive")
        if steps > len(self._entries):
            raise TransactionError(
                f"cannot undo {steps} transactions; journal holds "
                f"{len(self._entries)}"
            )
        undone: list[JournalEntry] = []
        for _ in range(steps):
            entry = self._entries.pop()
            for event in entry.inverse:
                if event.is_insertion:
                    self._db.add_fact(event.predicate, *event.args)
                else:
                    self._db.remove_fact(event.predicate, *event.args)
            undone.append(entry)
        return tuple(undone)

    def replay_onto(self, target: DeductiveDatabase) -> None:
        """Re-apply the whole journal onto another database (e.g. a backup)."""
        for entry in self._entries:
            for event in entry.transaction:
                if event.is_insertion:
                    target.add_fact(event.predicate, *event.args)
                else:
                    target.remove_fact(event.predicate, *event.args)
