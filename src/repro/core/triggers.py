"""An active-rule layer: triggers driven by condition monitoring.

The condition-monitoring systems the paper classifies ([RCB+89], [HCK+90],
[QW91]) are *active databases*: conditions with attached actions.  This
module closes that loop: register callbacks on a condition's activation /
deactivation, route every update through :class:`ActiveDatabase`, and the
upward interpretation (5.1.2) decides which triggers fire.

Actions may themselves return follow-up transactions, which are executed in
cascade rounds (bounded, cycle-guarded) -- the classic recursive trigger
semantics, powered entirely by the event rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import DatalogError, UnknownPredicateError
from repro.datalog.terms import Constant
from repro.events.events import Transaction
from repro.interpretations.upward import UpwardInterpreter

Row = tuple[Constant, ...]

#: An action receives the condition row and the full transaction, and may
#: return a follow-up transaction (or None).
Action = Callable[[Row, Transaction], Transaction | None]


class TriggerLoopError(DatalogError):
    """Raised when cascading triggers exceed the configured round bound."""


@dataclass(frozen=True)
class Trigger:
    """A registered trigger on one condition predicate."""

    condition: str
    #: "activate" (fires on ιCond rows) or "deactivate" (on δCond rows).
    on: str = "activate"
    action: Action | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.on not in ("activate", "deactivate"):
            raise ValueError(f"trigger 'on' must be activate/deactivate: {self.on}")


@dataclass
class Firing:
    """One trigger firing: which trigger, for which row, in which round."""

    trigger: Trigger
    row: Row
    round_number: int

    def __str__(self) -> str:
        sign = "+" if self.trigger.on == "activate" else "-"
        args = ", ".join(str(t) for t in self.row)
        label = self.trigger.name or self.trigger.condition
        return f"[round {self.round_number}] {label}: {sign}{self.trigger.condition}({args})"


@dataclass
class ExecutionTrace:
    """Everything that happened while executing one user transaction."""

    applied: tuple[Transaction, ...] = ()
    firings: tuple[Firing, ...] = ()
    rounds: int = 0

    def fired(self, condition: str) -> bool:
        """Did any trigger on *condition* fire?"""
        return any(f.trigger.condition == condition for f in self.firings)


class ActiveDatabase:
    """A deductive database with triggers, executed through the event rules.

    Every :meth:`execute` call upward-interprets the transaction, fires the
    matching triggers, collects their follow-up transactions and repeats
    (up to ``max_rounds``) until quiescence.
    """

    def __init__(self, db: DeductiveDatabase, max_rounds: int = 8):
        self._db = db
        self._max_rounds = max_rounds
        self._triggers: list[Trigger] = []

    @property
    def db(self) -> DeductiveDatabase:
        """The underlying database."""
        return self._db

    def on_activate(self, condition: str, action: Action | None = None,
                    name: str = "") -> Trigger:
        """Register a trigger on ``ιCond`` events."""
        return self._register(Trigger(condition, "activate", action, name))

    def on_deactivate(self, condition: str, action: Action | None = None,
                      name: str = "") -> Trigger:
        """Register a trigger on ``δCond`` events."""
        return self._register(Trigger(condition, "deactivate", action, name))

    def _register(self, trigger: Trigger) -> Trigger:
        if not self._db.schema.is_derived(trigger.condition):
            raise UnknownPredicateError(
                f"trigger condition {trigger.condition} is not a derived predicate"
            )
        self._triggers.append(trigger)
        return trigger

    def triggers(self) -> tuple[Trigger, ...]:
        """The registered triggers, in registration order."""
        return tuple(self._triggers)

    # -- execution --------------------------------------------------------------

    def execute(self, transaction: Transaction) -> ExecutionTrace:
        """Apply a transaction, cascading trigger actions to quiescence."""
        applied: list[Transaction] = []
        firings: list[Firing] = []
        pending = transaction
        round_number = 0
        while pending.events:
            round_number += 1
            if round_number > self._max_rounds:
                raise TriggerLoopError(
                    f"trigger cascade exceeded {self._max_rounds} rounds; "
                    f"likely a cyclic trigger definition"
                )
            interpreter = UpwardInterpreter(self._db)
            conditions = sorted({t.condition for t in self._triggers})
            result = interpreter.interpret(pending, predicates=conditions or None)
            # Commit this round.
            effective = pending.normalized(self._db)
            for event in effective:
                if event.is_insertion:
                    self._db.add_fact(event.predicate, *event.args)
                else:
                    self._db.remove_fact(event.predicate, *event.args)
            applied.append(effective)
            # Fire triggers and gather follow-ups.
            followups: list[Transaction] = []
            for trigger in self._triggers:
                rows = result.insertions_of(trigger.condition) \
                    if trigger.on == "activate" \
                    else result.deletions_of(trigger.condition)
                for row in sorted(rows, key=str):
                    firings.append(Firing(trigger, row, round_number))
                    if trigger.action is not None:
                        followup = trigger.action(row, effective)
                        if followup is not None and followup.events:
                            followups.append(followup)
            merged: Transaction = Transaction()
            for followup in followups:
                merged = merged | followup
            pending = merged
        return ExecutionTrace(tuple(applied), tuple(firings), round_number)
