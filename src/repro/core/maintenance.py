"""A practical, iterative integrity-maintenance engine.

The faithful Section 5.2.4 specification -- the downward interpretation of
``{T, ¬ιIc}`` -- enumerates *every* way any constraint could come to be
violated, which is exponential in the number of potential violations (fine
for the paper's examples, prohibitive for a database of thousands of
facts).  Methods in the maintenance literature the paper classifies
([CW90], [ML91], [Wüt93]) instead interleave the two interpretations:

1. **upward**: does the candidate transaction violate anything?  (5.1.1)
2. **downward**: for one concrete violation ``ιIcN(c)``, which repairs
   suppress it?  (the downward interpretation of ``¬ιIcN(c)`` conjoined
   with the candidate -- a *ground* request, so it stays small)
3. append a repair, recurse; a bounded best-first search over candidates.

This is exactly the paper's §5.3 point that downward and upward problems
compose -- made into an executable method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.datalog.database import GLOBAL_IC, DeductiveDatabase
from repro.datalog.rules import Atom, Literal
from repro.events.events import Event, Transaction
from repro.events.naming import ins_name
from repro.interpretations.downward import DownwardInterpreter, request_of
from repro.interpretations.upward import UpwardInterpreter
from repro.problems.base import StateError, global_ic_holds


@dataclass
class MaintenanceResult:
    """Outcome of :func:`maintain_iteratively`."""

    #: The original transaction.
    transaction: Transaction
    #: Consistency-preserving extensions of the transaction (possibly just
    #: the transaction itself when it was already safe), best (smallest)
    #: first, up to ``max_solutions``.
    solutions: tuple[Transaction, ...] = ()
    #: Candidates explored by the search.
    explored: int = 0

    @property
    def is_satisfiable(self) -> bool:
        """True when at least one consistency-preserving extension exists."""
        return bool(self.solutions)

    def best(self) -> Transaction | None:
        """The smallest solution, or None."""
        return self.solutions[0] if self.solutions else None


def maintain_iteratively(db: DeductiveDatabase, transaction: Transaction,
                         max_candidates: int = 200,
                         max_solutions: int = 3,
                         beam: int = 8) -> MaintenanceResult:
    """Find consistency-preserving extensions of *transaction*.

    Requires a consistent starting state (like 5.2.4).  The search is
    complete up to its bounds: every solution returned is verified by the
    upward interpretation, and an empty result after exhausting the space
    within ``max_candidates`` means the transaction should be rejected.
    """
    if global_ic_holds(db):
        raise StateError(
            "integrity maintenance requires a consistent state; repair the "
            "database first"
        )
    constraint_predicates = sorted({r.head.predicate for r in db.constraints})
    if not constraint_predicates:
        return MaintenanceResult(transaction, (transaction,), explored=1)
    upward = UpwardInterpreter(db)
    downward = DownwardInterpreter(db, program=upward.program)
    watched = [GLOBAL_IC, *constraint_predicates]

    # Best-first over candidate transactions (smallest first).
    frontier: list[Transaction] = [transaction.normalized(db)]
    seen: set[Transaction] = set(frontier)
    solutions: list[Transaction] = []
    explored = 0
    while frontier and explored < max_candidates \
            and len(solutions) < max_solutions:
        frontier.sort(key=lambda t: (len(t), str(t)))
        candidate = frontier.pop(0)
        explored += 1
        induced = upward.interpret(candidate, predicates=watched)
        violations = [
            (predicate, row)
            for predicate in constraint_predicates
            for row in sorted(induced.insertions_of(predicate), key=str)
        ]
        if not violations:
            solutions.append(candidate)
            continue
        predicate, row = violations[0]
        # Downward: {candidate, ¬ιIcN(row)} -- ground, so it stays small.
        requests: list = [request_of(e) for e in sorted(candidate.events, key=str)]
        requests.append(Literal(Atom(ins_name(predicate), row), False))
        repaired = downward.interpret(requests)
        for translation in repaired.translations[:beam]:
            extended = translation.transaction
            if not extended.events >= candidate.events:
                continue  # must preserve the user's requested events
            if extended in seen:
                continue
            seen.add(extended)
            frontier.append(extended)
    solutions.sort(key=lambda t: (len(t), str(t)))
    return MaintenanceResult(transaction, tuple(solutions), explored)


def translate_with_maintenance(db: DeductiveDatabase,
                               requests: Iterable[Literal | Event],
                               max_solutions_per_translation: int = 2,
                               ) -> tuple[Transaction, ...]:
    """Scalable view updating + IC maintenance (§5.3, staged).

    Translates the view-update requests downward *without* the global
    ``¬ιIc`` conjunct, then extends each candidate translation through the
    iterative maintenance engine, keeping only extensions that still
    achieve the original request.
    """
    downward = DownwardInterpreter(db)
    plain = downward.interpret(list(requests))
    upward = UpwardInterpreter(db, program=downward.program)
    accepted: list[Transaction] = []
    for translation in plain.translations:
        maintained = maintain_iteratively(
            db, translation.transaction,
            max_solutions=max_solutions_per_translation)
        for solution in maintained.solutions:
            if not translation.respects_constraints(solution):
                continue
            if _achieves(upward, solution, plain.requests):
                accepted.append(solution)
    unique = sorted(set(accepted), key=lambda t: (len(t), str(t)))
    return tuple(unique)


def _achieves(upward: UpwardInterpreter, transaction: Transaction,
              requests: tuple[Literal, ...]) -> bool:
    """Does the transaction satisfy every ground request literal?

    A positive ``ιP(c)`` request is satisfied when ``P(c)`` holds in the new
    state, a positive ``δP(c)`` when it does not (goal semantics); negative
    requests are satisfied when the event is not induced.  Non-ground
    requests are skipped (the staged pipeline only re-checks ground goals).
    """
    from repro.events.naming import EventKind, event_kind_of, parse_prefixed

    result = upward.interpret(transaction)
    for literal in requests:
        kind = event_kind_of(literal.predicate)
        if kind is None or not literal.is_ground():
            continue
        _, predicate = parse_prefixed(literal.predicate)
        row = tuple(literal.args)
        held_before = row in upward.old_extension(predicate)
        inserted = row in result.induced(EventKind.INSERTION, predicate) \
            if upward.program.is_derived(predicate) \
            else Event(EventKind.INSERTION, predicate, row) in transaction  # type: ignore[arg-type]
        deleted = row in result.induced(EventKind.DELETION, predicate) \
            if upward.program.is_derived(predicate) \
            else Event(EventKind.DELETION, predicate, row) in transaction  # type: ignore[arg-type]
        holds_after = (held_before or inserted) and not deleted
        if literal.positive:
            wanted = holds_after if kind is EventKind.INSERTION \
                else not holds_after
            if not wanted:
                return False
        else:
            occurred = inserted if kind is EventKind.INSERTION else deleted
            if occurred:
                return False
    return True
