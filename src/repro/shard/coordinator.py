"""The cross-shard commit coordinator: decision log + 2PC choreography.

A cross-shard commit is a lightweight two-phase commit built on the
participants' exactly-once machinery (PR 5): *prepare* is a durable,
idempotent yes-vote keyed by ``txn_id`` (a ``prepared`` WAL line on the
shard), *decide* is an idempotent apply-or-abort.  The coordinator's only
own state is the **decision log** -- an append-only, fsynced file of
``<txn_id> <decision>`` lines.  The protocol is presumed-abort:

1. send ``prepare`` to every participating shard;
2. all voted yes -> durably record ``commit`` in the decision log
   (the atomic commit point), else record ``abort``;
3. send ``decide`` to every participant; each applies or releases its
   vote and acks with the recorded outcome.

Recovery is the decision log's reason to exist: a shard that crashes
after voting yes reboots with an **in-doubt** transaction (fact keys
locked, nothing applied).  The group resolves it by consulting the
decision log -- a recorded decision is replayed; no record means the
coordinator never reached the commit point, so the vote aborts (presumed
abort).  Crash coverage at every arrow of the diagram is driven through
the failpoints below plus the participant-side ones in
:mod:`repro.server.engine`.

A *transient* phase-1 failure (a shard unreachable, a key conflict) must
not consume the ``txn_id``: the coordinator releases any collected votes
with ``decide(abort)`` but records **no** decision, and participants
treat a bare abort decision as re-preparable -- so a client retry of the
same ``txn_id`` runs a fresh round instead of replaying a spurious
rejection.  Only integrity *rejections* (a shard's own durable no-vote)
and decisions actually reached are final.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro import faults
from repro.datalog.errors import DatalogError
from repro.events.events import Transaction
from repro.obs import tracer as obs
from repro.problems import ICCheckResult
from repro.server.engine import CommitOutcome
from repro.server.metrics import MetricsRegistry

DECISIONS_NAME = "decisions.log"

FP_PRE_DECISION = faults.register(
    "twopc.pre_decision",
    "2PC coordinator: all votes counted, before the decision record is "
    "durable (crash: no decision exists; in-doubt votes resolve to abort)")
FP_DECISION_WRITTEN = faults.register(
    "twopc.decision_written",
    "2PC coordinator: decision durable in the decision log, before any "
    "phase-2 decide goes out (crash: recovery must drive the decision to "
    "every participant)")


class DecisionLog:
    """Append-only, fsynced ``txn_id -> commit|abort`` record.

    The first recorded decision for an id wins -- :meth:`record` returns
    the winner, so two racing coordinators for the same ``txn_id``
    converge.  A torn final line (crash mid-append) is dropped on load:
    an unrecorded decision is simply no decision.
    """

    def __init__(self, path: Path):
        self._path = Path(path)
        self._lock = threading.Lock()
        self._decisions: dict[str, str] = {}
        if self._path.exists():
            raw = self._path.read_text()
            lines = raw.splitlines()
            if raw and not raw.endswith("\n") and lines:
                lines = lines[:-1]  # torn tail: the append never finished
            for line in lines:
                parts = line.split()
                if len(parts) == 2 and parts[1] in ("commit", "abort"):
                    self._decisions.setdefault(parts[0], parts[1])

    @property
    def path(self) -> Path:
        return self._path

    def decision(self, txn_id: str) -> str | None:
        with self._lock:
            return self._decisions.get(txn_id)

    def record(self, txn_id: str, decision: str) -> str:
        """Durably record a decision; returns the winning one."""
        if decision not in ("commit", "abort"):
            raise ValueError(f"unknown decision: {decision!r}")
        with self._lock:
            existing = self._decisions.get(txn_id)
            if existing is not None:
                return existing
            self._path.parent.mkdir(parents=True, exist_ok=True)
            with self._path.open("a") as log:
                log.write(f"{txn_id} {decision}\n")
                log.flush()
                os.fsync(log.fileno())
            self._decisions[txn_id] = decision
            return decision

    def __len__(self) -> int:
        with self._lock:
            return len(self._decisions)


@dataclass
class Participant:
    """One shard's 2PC surface, however it is reached (in-process/remote)."""

    name: str
    prepare: Callable[[Transaction, str], dict]
    decide: Callable[[str, str], dict]


class TwoPhaseCoordinator:
    """Drives prepare/decide rounds against a set of participants."""

    def __init__(self, decisions: DecisionLog,
                 metrics: MetricsRegistry | None = None):
        self.decisions = decisions
        self.metrics = metrics or MetricsRegistry()

    def commit(self, parts: list[tuple[Participant, Transaction]],
               txn_id: str, requested: Transaction) -> CommitOutcome:
        """Run one cross-shard commit; returns the merged outcome.

        *parts* pairs each participant with its slice of the transaction;
        *requested* is the full transaction (for the outcome's benefit).
        Raises the underlying (retryable) error when a phase-1 call fails
        transiently; a retry with the same ``txn_id`` resumes safely.
        """
        with obs.span("twopc.commit") as span:
            decision = self.decisions.decision(txn_id)
            abort_check: dict | None = None
            if decision is None:
                decision, abort_check = self._phase_one(parts, txn_id)
            else:
                self.metrics.increment("twopc.redriven")
                if obs.enabled():
                    span.add("redriven", 1)
            outcomes = self._phase_two(parts, txn_id, decision)
            if obs.enabled():
                span.set(decision=decision, participants=len(parts))
        if decision == "abort":
            self.metrics.increment("twopc.aborts")
            return CommitOutcome(
                False, requested,
                check=(ICCheckResult.from_dict(abort_check)
                       if abort_check is not None else None))
        self.metrics.increment("twopc.commits")
        effective: list = []
        for outcome in outcomes:
            effective.extend(outcome.get("effective", []))
        return CommitOutcome(True, requested,
                             Transaction.from_dict(effective))

    def _phase_one(self, parts: list[tuple[Participant, Transaction]],
                   txn_id: str) -> tuple[str, dict | None]:
        """Collect votes; returns ``(durable decision, veto check dict)``."""
        voted_yes: list[Participant] = []
        abort_check: dict | None = None
        decision = "commit"
        error: DatalogError | None = None
        for participant, sub in parts:
            try:
                vote = participant.prepare(sub, txn_id)
            except DatalogError as exc:
                error = exc
                break
            if vote.get("vote") == "commit":
                voted_yes.append(participant)
                continue
            # A durable no-vote (integrity rejection or replayed abort).
            decision = "abort"
            outcome = vote.get("outcome") or {}
            if outcome.get("check") is not None:
                abort_check = outcome["check"]
            break
        if error is not None:
            # Transient failure: release the collected votes but record no
            # decision, so a retry of the same txn_id can run fresh.
            self._release(voted_yes, txn_id)
            raise error
        faults.failpoint(FP_PRE_DECISION, txn_id=txn_id)
        decision = self.decisions.record(txn_id, decision)
        faults.failpoint(FP_DECISION_WRITTEN, txn_id=txn_id,
                         decision=decision)
        return decision, abort_check

    def _release(self, voted_yes: list[Participant], txn_id: str) -> None:
        for participant in voted_yes:
            try:
                participant.decide(txn_id, "abort")
            except DatalogError:
                # The vote stays in doubt on that shard; presumed abort
                # resolves it at the next group open.
                self.metrics.increment("twopc.release_failures")

    def _phase_two(self, parts: list[tuple[Participant, Transaction]],
                   txn_id: str, decision: str) -> list[dict]:
        """Deliver the decision everywhere; returns the acked outcomes.

        Every participant is attempted even when an earlier one fails --
        a durable decision must reach as many shards as possible -- and
        the first failure is re-raised afterwards so the caller retries
        (the decision log makes the retry a pure re-drive).
        """
        outcomes: list[dict] = []
        first_error: DatalogError | None = None
        for participant, _ in parts:
            try:
                ack = participant.decide(txn_id, decision)
            except DatalogError as exc:
                if first_error is None:
                    first_error = exc
                continue
            outcomes.append(ack.get("outcome") or {})
        if first_error is not None:
            raise first_error
        return outcomes
