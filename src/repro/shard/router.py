"""``ShardRouter``: the network face of a shard group.

Where :class:`~repro.shard.group.EngineGroup` holds its engines
in-process, the router fronts N *remote* shard servers (each a plain
``repro serve`` process) through one
:class:`~repro.server.resilient.ResilientClient` per shard -- reconnect,
jittered backoff and deadline budgets per backend.  It exposes the same
engine-shaped surface, so the existing :class:`DatabaseServer` serves it
unchanged (``repro route``): clients speak the ordinary JSON-lines
protocol to the router, the router speaks it onward to the shards.

Scatter-gather reads fan out over a thread pool (each backend call blocks
on its own socket, so shard servers evaluate genuinely in parallel);
cross-shard commits run the same 2PC as the in-process group, with
``prepare``/``decide`` travelling as wire ops.  Transport-level failures
surface as the retryable ``unavailable`` wire error; a shard's own typed
errors are relayed unchanged (see ``protocol.error_type_of``).

``stats``/``health`` degrade rather than fail when a shard is down: the
aggregate carries a typed ``degraded`` field naming the unreachable
shards, and ``ready`` goes false -- partial observability beats none
exactly when shards are flapping.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable

from repro.datalog.errors import (
    DatalogError,
    RoutingError,
    SubscriptionError,
    UnavailableError,
)
from repro.events.events import Transaction
from repro.interpretations.upward import UpwardResult
from repro.problems import ICCheckResult
from repro.server.client import ConnectionLostError, DatabaseClient
from repro.server.engine import CommitOutcome
from repro.server.feed import FeedMerger, resync_frame
from repro.server.metrics import MetricsRegistry
from repro.server.resilient import (
    DeadlineExceeded,
    ResilientClient,
    RetriesExhausted,
)
from repro.shard.coordinator import (
    DecisionLog,
    Participant,
    TwoPhaseCoordinator,
)
from repro.shard.routing import RoutingTable


class _FeedTap:
    """One dedicated streaming connection to a shard server's feed.

    A tap holds its own :class:`DatabaseClient` (the router's pooled
    clients are strictly request/response) plus a daemon reader thread
    pumping pushed frames into the subscription's merger.  Backend ``seq``
    numbers are checked: a gap, a ``closed`` frame or a lost connection
    all surface as a ``resync`` on the merged stream -- the subscriber
    re-pulls, which is always safe.
    """

    def __init__(self, shard: int, host: str, port: int, goals,
                 merger: FeedMerger, *, timeout: float = 30.0):
        self.shard = shard
        self._merger = merger
        self._stopped = False
        self._client = DatabaseClient(host, port, timeout=timeout)
        try:
            self.info = self._client.subscribe(goals, emit_empty=True)
        except BaseException:
            self._client.close()
            raise
        self._sub_id = self.info["subscription_id"]
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"feed-tap-{shard}-{self._sub_id}")
        self._thread.start()

    def _run(self) -> None:
        expected = 1
        while not self._stopped:
            try:
                pushed = self._client.next_frame()
            except DatalogError:
                if not self._stopped:
                    self._merger.on_frame(
                        self.shard, resync_frame(0, "tap-lost"))
                return
            if pushed.get("feed") != self._sub_id:
                continue
            if pushed.get("seq") != expected:
                self._merger.on_frame(self.shard, resync_frame(0, "gap"))
            seq = pushed.get("seq")
            expected = (seq if isinstance(seq, int) else expected) + 1
            frame = pushed.get("frame") or {}
            if frame.get("kind") == "closed":
                self._merger.on_frame(
                    self.shard, resync_frame(0, "tap-closed"))
                return
            self._merger.on_frame(self.shard, frame)

    def close(self) -> None:
        self._stopped = True
        try:
            self._client.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)


class ShardRouter:
    """Scatter-gather front over remote shard servers (see module doc).

    Parameters
    ----------
    endpoints:
        ``(host, port)`` per shard, in shard-index order; must match the
        routing table's ``n_shards``.
    routing:
        the partition map (normally loaded from the group directory).
    decisions:
        the 2PC decision log; the router is the coordinator, so this must
        live on the router's own durable storage.
    client_options:
        extra :class:`ResilientClient` keyword arguments (``timeout``,
        ``max_attempts``, ``deadline``, ``seed`` ...).
    """

    def __init__(self, endpoints: list[tuple[str, int]],
                 routing: RoutingTable, decisions: DecisionLog, *,
                 metrics: MetricsRegistry | None = None,
                 **client_options):
        if len(endpoints) != routing.n_shards:
            raise RoutingError(
                f"routing table expects {routing.n_shards} shard(s), got "
                f"{len(endpoints)} endpoint(s)")
        self._endpoints = list(endpoints)
        self._routing = routing
        self.metrics = metrics or MetricsRegistry()
        self.health_extras: list[Callable[[], dict]] = []
        self._clients = [
            ResilientClient(host, port, **client_options)
            for host, port in self._endpoints
        ]
        # A ResilientClient owns one socket: serialise per-shard access.
        self._locks = [threading.Lock() for _ in self._clients]
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, len(self._clients)),
            thread_name_prefix="router-gather")
        self._coordinator = TwoPhaseCoordinator(decisions, self.metrics)
        self._participants = [
            Participant(
                f"shard-{index}",
                prepare=lambda t, txn_id, i=index: self._call(
                    i, "prepare", transaction=t.to_text(), txn_id=txn_id),
                decide=lambda txn_id, decision, i=index: self._call(
                    i, "decide", txn_id=txn_id, decision=decision),
            )
            for index in range(len(self._clients))
        ]
        self._feed_lock = threading.Lock()
        self._feeds: dict[str, dict] = {}
        self._feed_ids = itertools.count(1)
        self._client_timeout = float(client_options.get("timeout", 30.0))
        self._closed = False

    # -- backend plumbing ------------------------------------------------------

    def _call(self, index: int, op: str, **params) -> dict:
        """One backend call: per-shard lock, per-shard latency, typed errors."""
        try:
            with self._locks[index], \
                    self.metrics.time(f"shard.{index}.{op}"):
                return self._clients[index].call(op, **params)
        except (ConnectionLostError, RetriesExhausted, DeadlineExceeded,
                OSError) as error:
            host, port = self._endpoints[index]
            raise UnavailableError(
                f"shard {index} ({host}:{port}) is unavailable for "
                f"{op}: {error}") from error

    def _scatter(self, targets: list[int], op: str, **params) -> list[dict]:
        if len(targets) == 1:
            return [self._call(targets[0], op, **params)]
        self.metrics.increment("router.fanout", len(targets))
        futures = [self._pool.submit(self._call, index, op, **params)
                   for index in targets]
        return [future.result() for future in futures]

    def _gather_degraded(self, op: str
                         ) -> tuple[dict[int, dict], dict[int, BaseException]]:
        results: dict[int, dict] = {}
        errors: dict[int, BaseException] = {}
        futures = {
            index: self._pool.submit(self._call, index, op)
            for index in range(self.n_shards)
        }
        for index, future in futures.items():
            try:
                results[index] = future.result()
            except DatalogError as error:
                errors[index] = error
        return results, errors

    def _single_shard(self, op: str) -> int:
        if self.n_shards == 1:
            return 0
        raise RoutingError(
            f"'{op}' needs one consistent state and cannot run against a "
            f"{self.n_shards}-shard router; send it to a single shard")

    # -- introspection ---------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._clients)

    @property
    def routing(self) -> RoutingTable:
        return self._routing

    @property
    def decisions(self) -> DecisionLog:
        return self._coordinator.decisions

    @property
    def description(self) -> str:
        backends = ",".join(f"{host}:{port}"
                            for host, port in self._endpoints)
        return f"router over {backends}"

    def close(self, checkpoint: bool = True) -> None:
        """Close backend connections (never the shard servers themselves)."""
        if self._closed:
            return
        self._closed = True
        with self._feed_lock:
            feeds, self._feeds = dict(self._feeds), {}
        for entry in feeds.values():
            for tap in entry["taps"]:
                tap.close()
        try:
            for client in self._clients:
                client.close()
        finally:
            self._pool.shutdown(wait=True)

    def checkpoint(self) -> None:
        for index in range(self.n_shards):
            self._call(index, "checkpoint")

    # -- reads -----------------------------------------------------------------

    def query(self, goal: str) -> list[tuple]:
        with self.metrics.time("query"):
            targets = self._routing.shards_for_goal(goal)
            results = self._scatter(targets, "query", goal=goal)
            if len(results) == 1:
                return [tuple(row) for row in results[0]["answers"]]
            merged = {tuple(row)
                      for result in results for row in result["answers"]}
            return sorted(merged, key=str)

    def upward(self, transaction: Transaction,
               predicates: Iterable[str] | None = None) -> UpwardResult:
        with self.metrics.time("upward"):
            parts = self._routing.split(transaction)
            if not parts:
                parts = {0: transaction}
            items = sorted(parts.items())
            extra = ({"predicates": list(predicates)}
                     if predicates is not None else {})
            self.metrics.increment("router.fanout", len(items))
            futures = [
                self._pool.submit(self._call, index, "upward",
                                  transaction=sub.to_text(), **extra)
                for index, sub in items
            ]
            results = [UpwardResult.from_dict(f.result()) for f in futures]
            if len(results) == 1:
                return results[0]
            insertions: dict[str, frozenset] = {}
            deletions: dict[str, frozenset] = {}
            for result in results:
                for predicate, rows in result.insertions.items():
                    insertions[predicate] = \
                        insertions.get(predicate, frozenset()) | rows
                for predicate, rows in result.deletions.items():
                    deletions[predicate] = \
                        deletions.get(predicate, frozenset()) | rows
            return UpwardResult(insertions, deletions, transaction)

    def check(self, transaction: Transaction) -> ICCheckResult:
        with self.metrics.time("check"):
            parts = self._routing.split(transaction)
            if not parts:
                parts = {0: transaction}
            items = sorted(parts.items())
            results = [
                ICCheckResult.from_dict(self._call(
                    index, "check", transaction=sub.to_text()))
                for index, sub in items
            ]
            if len(results) == 1:
                return results[0]
            violations: list = []
            for verdict in results:
                violations.extend(verdict.violations)
            return ICCheckResult(all(v.ok for v in results),
                                 tuple(violations), transaction)

    def monitor(self, transaction: Transaction,
                conditions: Iterable[str] | None = None):
        from repro.problems.monitoring import MonitorResult

        index = self._single_shard("monitor")
        return MonitorResult.from_dict(self._call(
            index, "monitor", transaction=transaction.to_text(),
            conditions=list(conditions or ())))

    def downward(self, requests):
        raise RoutingError(
            "'downward' is not routable; send it to a single shard")

    def repair(self, verify: bool = False):
        raise RoutingError(
            "'repair' is not routable; send it to a single shard")

    # -- aggregated stats/health -----------------------------------------------

    def stats(self) -> dict:
        results, errors = self._gather_degraded("stats")
        payload = {
            "engine": {
                "shards": self.n_shards,
                "facts": sum(r["engine"]["facts"]
                             for r in results.values()),
                "in_doubt": sum(r["engine"].get("in_doubt", 0)
                                for r in results.values()),
                "decisions": len(self.decisions),
            },
            "shards": {str(index): results.get(index)
                       for index in range(self.n_shards)},
            **self.metrics.snapshot(),
        }
        if errors:
            payload["degraded"] = self._degraded(errors)
        return payload

    def health(self) -> dict:
        results, errors = self._gather_degraded("health")
        ready = bool(results) and not errors and all(
            r.get("ready") for r in results.values())
        payload = {
            "live": True,
            "ready": ready and not self._closed,
            "shards": {str(index): results.get(index)
                       for index in range(self.n_shards)},
            "in_doubt": sorted(
                txn_id for r in results.values()
                for txn_id in r.get("in_doubt", ())),
        }
        if errors:
            payload["degraded"] = self._degraded(errors)
        for provider in list(self.health_extras):
            try:
                extra = provider()
            except Exception:
                continue
            if isinstance(extra, dict):
                payload.update(extra)
        return payload

    @staticmethod
    def _degraded(errors: dict[int, BaseException]) -> dict:
        from repro.server import protocol

        return {
            "shards": sorted(errors),
            "errors": {
                str(index): {"type": protocol.error_type_of(error),
                             "message": str(error)}
                for index, error in errors.items()
            },
        }

    # -- change-feed subscriptions ---------------------------------------------

    def feed_subscribe(self, goals, callback: Callable[[dict], None], *,
                       emit_empty: bool = False) -> dict:
        """Register one standing query across every shard server.

        Opens a dedicated streaming tap per shard (``emit_empty`` on the
        backend, so every coordinated commit yields a frame from every
        participant) and merges the per-shard frames into *callback*:
        exactly one frame per cross-shard commit, in decision order.  A
        tap that loses its backend degrades to a ``resync`` on the merged
        stream rather than silently missing deltas.
        """
        del emit_empty  # empty merged frames are always dropped
        merger = FeedMerger(callback)
        taps: list[_FeedTap] = []
        try:
            for shard, (host, port) in enumerate(self._endpoints):
                try:
                    taps.append(_FeedTap(shard, host, port, goals, merger,
                                         timeout=self._client_timeout))
                except (ConnectionLostError, OSError) as error:
                    raise UnavailableError(
                        f"shard {shard} ({host}:{port}) is unavailable "
                        f"for subscribe: {error}") from error
        except BaseException:
            for tap in taps:
                tap.close()
            raise
        with self._feed_lock:
            sub_id = f"sub-{next(self._feed_ids)}"
            self._feeds[sub_id] = {"merger": merger, "taps": taps}
        self.metrics.increment("feed.subscriptions")
        info = taps[-1].info
        return {"subscription_id": sub_id, "goals": info["goals"],
                "predicates": info["predicates"],
                "epoch": max(tap.info.get("epoch", 0) for tap in taps)}

    def feed_unsubscribe(self, subscription_id: str) -> dict:
        entry = None
        if isinstance(subscription_id, str) and subscription_id:
            with self._feed_lock:
                entry = self._feeds.pop(subscription_id, None)
        if entry is None:
            raise SubscriptionError(
                f"unknown subscription_id: {subscription_id!r}")
        for tap in entry["taps"]:
            tap.close()
        return {"unsubscribed": subscription_id}

    def _feed_mergers(self) -> list[FeedMerger]:
        with self._feed_lock:
            return [entry["merger"] for entry in self._feeds.values()]

    # -- writes ----------------------------------------------------------------

    def commit(self, transaction: Transaction,
               on_violation: str | None = None,
               timeout: float | None = None,
               txn_id: str | None = None) -> CommitOutcome:
        import uuid

        parts = self._routing.split(transaction)
        if len(parts) <= 1:
            index, sub = (next(iter(parts.items())) if parts
                          else (0, transaction))
            params: dict = {"transaction": sub.to_text()}
            if on_violation is not None:
                params["on_violation"] = on_violation
            if timeout is not None:
                params["timeout"] = timeout
            if txn_id is not None:
                params["txn_id"] = txn_id
            self.metrics.increment("router.single_shard_commits")
            return CommitOutcome.from_dict(
                self._call(index, "commit", **params))
        if on_violation not in (None, "reject"):
            raise RoutingError(
                f"cross-shard commits support only the 'reject' policy, "
                f"not {on_violation!r}")
        if txn_id is None:
            txn_id = uuid.uuid4().hex
        self.metrics.increment("router.cross_shard_commits")
        self.metrics.increment("router.fanout", len(parts))
        pairs = [(self._participants[index], sub)
                 for index, sub in sorted(parts.items())]
        # Mergers buffer frames the shards push while applying phase two,
        # then emit one merged frame per decided transaction.
        mergers = self._feed_mergers()
        shard_ids = sorted(parts)
        for merger in mergers:
            merger.begin(txn_id, shard_ids)
        try:
            with self.metrics.time("commit"):
                outcome = self._coordinator.commit(pairs, txn_id, transaction)
        except BaseException:
            for merger in mergers:
                merger.abort(txn_id)
            raise
        for merger in mergers:
            if outcome.applied:
                merger.commit(txn_id)
            else:
                merger.abort(txn_id)
        return outcome

    def prepare(self, transaction: Transaction, txn_id: str) -> dict:
        if self.n_shards == 1:
            return self._call(0, "prepare", transaction=transaction.to_text(),
                              txn_id=txn_id)
        raise RoutingError(
            "a router cannot itself be a 2PC participant; send 'prepare' "
            "to an individual shard")

    def decide(self, txn_id: str, decision: str) -> dict:
        if self.n_shards == 1:
            return self._call(0, "decide", txn_id=txn_id, decision=decision)
        raise RoutingError(
            "a router cannot itself be a 2PC participant; send 'decide' "
            "to an individual shard")
