"""The routing table: which shard owns which base facts.

The extensional database is partitioned **by predicate**: every base
predicate is either *pinned* to one shard (small or hot-in-one-place
relations) or *hashed* -- sub-partitioned across all shards by a stable
hash of its first argument (large relations).  The intensional part
(rules and constraints) is replicated to every shard, so per-shard
integrity checks and scatter-gather reads are exact whenever the body
predicates of a rule are co-located (see docs/SHARDING.md for the
correctness contract this implies -- the U-Datalog "check consistency
over the merged result" framing).

Hashing uses :func:`stable_hash` (SHA-256 based), never Python's builtin
``hash``: placement must agree across processes and across
``PYTHONHASHSEED`` values, or a router restart would scatter reads to the
wrong shards.

The table round-trips through ``routing.json`` in the group directory and
carries each predicate's arity, so every shard can re-declare the *full*
base schema at open time -- a shard holding zero facts of a predicate
must still accept commits for it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Mapping

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import RoutingError
from repro.datalog.parser import parse_atom
from repro.datalog.terms import Constant
from repro.events.events import Transaction

ROUTING_NAME = "routing.json"

#: Placement value meaning "hash-partitioned across all shards".
HASHED = "hash"


def stable_hash(value) -> int:
    """A process-independent hash of a constant value (int or str)."""
    data = f"{type(value).__name__}:{value}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class RoutingTable:
    """Immutable predicate -> placement map for one sharded deployment.

    *placements* maps every routable base predicate to either an ``int``
    (pinned to that shard) or :data:`HASHED`; *arities* carries the
    declared arity of each.
    """

    def __init__(self, n_shards: int,
                 placements: Mapping[str, int | str],
                 arities: Mapping[str, int]):
        if n_shards < 1:
            raise RoutingError("a shard group needs at least one shard")
        for predicate, placement in placements.items():
            if placement == HASHED:
                continue
            if not isinstance(placement, int) or not (
                    0 <= placement < n_shards):
                raise RoutingError(
                    f"predicate {predicate!r} pinned to shard "
                    f"{placement!r}, but shards are 0..{n_shards - 1}")
        missing = set(placements) - set(arities)
        if missing:
            raise RoutingError(
                f"no arity recorded for predicate(s): {sorted(missing)}")
        self.n_shards = n_shards
        self.placements = dict(placements)
        self.arities = {p: arities[p] for p in placements}

    @classmethod
    def for_database(cls, db: DeductiveDatabase, n_shards: int,
                     pinned: Mapping[str, int] | None = None
                     ) -> "RoutingTable":
        """Route every base predicate of *db*: pinned where asked, else hashed."""
        pinned = dict(pinned or {})
        schema = db.schema
        placements: dict[str, int | str] = {}
        arities: dict[str, int] = {}
        for predicate in sorted(schema.base):
            placements[predicate] = pinned.pop(predicate, HASHED)
            arities[predicate] = schema.arity(predicate)
        if pinned:
            raise RoutingError(
                f"pinned predicate(s) not in the base schema: "
                f"{sorted(pinned)}")
        return cls(n_shards, placements, arities)

    # -- placement -------------------------------------------------------------

    def shard_of(self, predicate: str, args: Iterable) -> int:
        """The shard owning the fact ``predicate(args)``."""
        placement = self.placements.get(predicate)
        if placement is None:
            raise RoutingError(
                f"predicate {predicate!r} is not in the routing table; "
                f"routable predicates: {', '.join(sorted(self.placements))}")
        if placement != HASHED:
            return placement
        args = tuple(args)
        if not args:
            # A 0-ary predicate has no partition key; its single fact gets
            # a stable home derived from the name.
            return stable_hash(predicate) % self.n_shards
        first = args[0]
        value = first.value if isinstance(first, Constant) else first
        return stable_hash(value) % self.n_shards

    def split(self, transaction: Transaction) -> dict[int, Transaction]:
        """Partition a transaction's events by owning shard.

        Raises :class:`RoutingError` on events touching predicates absent
        from the table (unknown or derived -- neither has a home shard).
        """
        by_shard: dict[int, list] = {}
        for event in transaction:
            shard = self.shard_of(event.predicate, event.args)
            by_shard.setdefault(shard, []).append(event)
        return {shard: Transaction(events)
                for shard, events in sorted(by_shard.items())}

    def shards_for_goal(self, goal: str) -> list[int]:
        """The shards that must answer a query *goal*.

        A hashed predicate with a constant first argument routes to
        exactly one shard; anything else -- unbound key, pinned lookup,
        or a predicate outside the table (derived views live on every
        shard) -- names the owning shard(s) or all of them.
        """
        atom = parse_atom(goal)
        placement = self.placements.get(atom.predicate)
        if placement is None:
            return list(range(self.n_shards))
        if placement != HASHED:
            return [placement]
        if atom.args and isinstance(atom.args[0], Constant):
            return [self.shard_of(atom.predicate, atom.args)]
        return list(range(self.n_shards))

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "v": 1,
            "n_shards": self.n_shards,
            "predicates": {
                predicate: {"placement": placement,
                            "arity": self.arities[predicate]}
                for predicate, placement in sorted(self.placements.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RoutingTable":
        try:
            n_shards = int(payload["n_shards"])
            predicates = payload["predicates"]
            placements = {p: spec["placement"]
                          for p, spec in predicates.items()}
            arities = {p: int(spec["arity"])
                       for p, spec in predicates.items()}
        except (KeyError, TypeError, ValueError) as error:
            raise RoutingError(f"malformed routing table: {error}") from None
        return cls(n_shards, placements, arities)

    def save(self, directory: Path) -> Path:
        path = Path(directory) / ROUTING_NAME
        temporary = path.with_suffix(".tmp")
        temporary.write_text(json.dumps(self.to_dict(), indent=2,
                                        sort_keys=True) + "\n")
        temporary.replace(path)
        return path

    @classmethod
    def load(cls, directory: Path) -> "RoutingTable":
        """Load from a group directory (or the ``routing.json`` itself)."""
        base = Path(directory)
        path = base if base.suffix == ".json" else base / ROUTING_NAME
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise RoutingError(f"no routing table at {path}") from None
        except json.JSONDecodeError as error:
            raise RoutingError(
                f"unreadable routing table {path}: {error}") from None
        return cls.from_dict(payload)
