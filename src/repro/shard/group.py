"""``EngineGroup``: N engines behind one engine-shaped front.

The group partitions the extensional database across N
:class:`~repro.server.engine.DatabaseEngine` instances (each with its own
WAL, dedup table and cache epoch) under one directory::

    group/
      routing.json     the partition map (repro.shard.routing)
      decisions.log    the 2PC decision log (repro.shard.coordinator)
      shard-0/ ...     one DurableDatabase directory per shard

It exposes the same surface :func:`repro.server.protocol.dispatch`
expects of an engine, so the existing :class:`DatabaseServer` serves a
group unchanged (``repro shard-serve``):

- **reads scatter-gather**: ``query`` fans out to the owning shards (one
  shard when the routing key is bound) and unions the answers; ``upward``
  and ``check`` split the transaction and merge per-shard results;
  ``stats``/``health`` aggregate all shards, degrading -- not failing --
  when a shard is down;
- **single-shard commits route directly** into that shard's group-commit
  machinery; **cross-shard commits run 2PC** through the coordinator;
- a 1-shard group is the degenerate case: every operation delegates
  straight to the single engine, so single-node behaviour is unchanged.

Operations that are only meaningful against one consistent state
(``monitor``, ``downward``, ``repair``) delegate on a 1-shard group and
raise a typed :class:`RoutingError` on a multi-shard one.
"""

from __future__ import annotations

import itertools
import threading
import uuid
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Iterable

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import DatalogError, RoutingError, SubscriptionError
from repro.events.events import Transaction
from repro.interpretations.upward import UpwardResult
from repro.problems import ICCheckResult
from repro.server.engine import CommitOutcome, DatabaseEngine
from repro.server.feed import FeedMerger
from repro.server.metrics import MetricsRegistry
from repro.shard.coordinator import (
    DECISIONS_NAME,
    DecisionLog,
    Participant,
    TwoPhaseCoordinator,
)
from repro.shard.routing import ROUTING_NAME, RoutingTable


def _error_payload(error: BaseException) -> dict:
    """The typed ``degraded`` entry for one unreachable shard."""
    from repro.server import protocol

    return {"type": protocol.error_type_of(error), "message": str(error)}


class EngineGroup:
    """A predicate/hash-partitioned group of engines (see module doc)."""

    def __init__(self, engines: list[DatabaseEngine], routing: RoutingTable,
                 decisions: DecisionLog, directory: Path | None = None,
                 metrics: MetricsRegistry | None = None):
        if len(engines) != routing.n_shards:
            raise RoutingError(
                f"routing table expects {routing.n_shards} shard(s), "
                f"got {len(engines)} engine(s)")
        self._engines = list(engines)
        self._routing = routing
        self._directory = Path(directory) if directory is not None else None
        self.metrics = metrics or MetricsRegistry()
        self.health_extras: list[Callable[[], dict]] = []
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, len(engines)),
            thread_name_prefix="shard-gather")
        self._coordinator = TwoPhaseCoordinator(decisions, self.metrics)
        self._participants = [
            Participant(f"shard-{index}", engine.prepare, engine.decide)
            for index, engine in enumerate(engines)
        ]
        self._feed_lock = threading.Lock()
        self._feeds: dict[str, dict] = {}
        self._feed_ids = itertools.count(1)
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def open(cls, directory, initial: DeductiveDatabase | None = None, *,
             shards: int | None = None,
             pinned: dict[str, int] | None = None,
             metrics: MetricsRegistry | None = None,
             **engine_kwargs) -> "EngineGroup":
        """Open (or create) a sharded database directory.

        A fresh directory partitions *initial* across ``shards`` engines
        and persists the routing table; an existing one reloads its table
        (``shards`` must then match, if given) and recovers every shard,
        resolving any in-doubt cross-shard transactions against the
        decision log.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        fresh = not (directory / ROUTING_NAME).exists()
        if fresh:
            base = initial if initial is not None else DeductiveDatabase()
            routing = RoutingTable.for_database(
                base, shards if shards is not None else 1, pinned=pinned)
            routing.save(directory)
        else:
            if initial is not None:
                raise RoutingError(
                    f"{directory} already holds a shard group; open it "
                    "without 'initial' or choose a fresh directory")
            routing = RoutingTable.load(directory)
            if shards is not None and shards != routing.n_shards:
                raise RoutingError(
                    f"{directory} is a {routing.n_shards}-shard group; "
                    f"cannot reopen it with {shards} shard(s)")
        engines = []
        for index in range(routing.n_shards):
            slice_db = (cls._partition(initial, routing, index)
                        if fresh else None)
            engine = DatabaseEngine.open(directory / f"shard-{index}",
                                         initial=slice_db, **engine_kwargs)
            cls._redeclare_schema(engine, routing)
            engines.append(engine)
        decisions = DecisionLog(directory / DECISIONS_NAME)
        group = cls(engines, routing, decisions, directory, metrics=metrics)
        group._resolve_in_doubt()
        return group

    @staticmethod
    def _partition(initial: DeductiveDatabase | None, routing: RoutingTable,
                   index: int) -> DeductiveDatabase:
        """Shard *index*'s slice: its facts, the full intensional part."""
        shard_db = DeductiveDatabase()
        if initial is None:
            return shard_db
        for rule in initial.rules:
            shard_db.add_rule(rule)
        for constraint in initial.constraints:
            shard_db.add_constraint(constraint)
        for predicate, row in initial.iter_facts():
            if routing.shard_of(predicate, row) == index:
                shard_db.add_fact(predicate, *row)
        return shard_db

    @staticmethod
    def _redeclare_schema(engine: DatabaseEngine,
                          routing: RoutingTable) -> None:
        # Snapshots only render facts and rules, so a base predicate with
        # no facts on this shard (and no mention in a rule) would vanish
        # across a reopen; the routing table is the durable schema record.
        for predicate, arity in routing.arities.items():
            engine.db.declare_base(predicate, arity)

    def _resolve_in_doubt(self) -> None:
        """Drive every recovered in-doubt vote to a decision (open time)."""
        for index, engine in enumerate(self._engines):
            for txn_id in engine.in_doubt:
                decision = self._coordinator.decisions.decision(txn_id)
                if decision is None:
                    # Presumed abort: the coordinator never reached its
                    # commit point, or we would have a record.  Record the
                    # abort so late-arriving shards resolve identically.
                    decision = self._coordinator.decisions.record(
                        txn_id, "abort")
                engine.decide(txn_id, decision)
                self.metrics.increment("twopc.recovered")

    def close(self, checkpoint: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            for engine in self._engines:
                engine.close(checkpoint=checkpoint)
        finally:
            self._pool.shutdown(wait=True)

    def checkpoint(self) -> None:
        for engine in self._engines:
            engine.checkpoint()

    # -- introspection ---------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._engines)

    @property
    def engines(self) -> tuple[DatabaseEngine, ...]:
        return tuple(self._engines)

    @property
    def routing(self) -> RoutingTable:
        return self._routing

    @property
    def decisions(self) -> DecisionLog:
        return self._coordinator.decisions

    @property
    def description(self) -> str:
        where = self._directory if self._directory is not None else "memory"
        return f"{self.n_shards}-shard group at {where}"

    # -- scatter-gather plumbing -----------------------------------------------

    def _scatter(self, targets: list[int],
                 fn: Callable[[DatabaseEngine], object]) -> list:
        """Run *fn* on each target shard concurrently; raise the first error."""
        if len(targets) == 1:
            return [fn(self._engines[targets[0]])]
        self.metrics.increment("router.fanout", len(targets))
        futures = [self._pool.submit(self._timed, index, fn)
                   for index in targets]
        return [future.result() for future in futures]

    def _timed(self, index: int, fn: Callable[[DatabaseEngine], object]):
        with self.metrics.time(f"shard.{index}.request"):
            return fn(self._engines[index])

    def _gather_degraded(self, fn: Callable[[DatabaseEngine], dict]
                         ) -> tuple[dict[int, dict], dict[int, BaseException]]:
        """Scatter to every shard, collecting failures instead of raising."""
        results: dict[int, dict] = {}
        errors: dict[int, BaseException] = {}
        for index in range(self.n_shards):
            try:
                results[index] = fn(self._engines[index])
            except DatalogError as error:
                errors[index] = error
        return results, errors

    def _single_shard(self, op: str) -> DatabaseEngine:
        if self.n_shards == 1:
            return self._engines[0]
        raise RoutingError(
            f"'{op}' needs one consistent state and cannot run against a "
            f"{self.n_shards}-shard group; run it against a single shard")

    # -- reads -----------------------------------------------------------------

    def query(self, goal: str) -> list[tuple]:
        with self.metrics.time("query"):
            targets = self._routing.shards_for_goal(goal)
            results = self._scatter(targets, lambda e: e.query(goal))
            if len(results) == 1:
                return results[0]
            merged: set = set()
            for rows in results:
                merged.update(rows)
            return sorted(merged, key=str)

    def upward(self, transaction: Transaction,
               predicates: Iterable[str] | None = None) -> UpwardResult:
        with self.metrics.time("upward"):
            parts = self._routing.split(transaction)
            if not parts:
                parts = {0: transaction}
            predicates = (tuple(predicates)
                          if predicates is not None else None)
            items = sorted(parts.items())
            if len(items) == 1:
                index, sub = items[0]
                return self._engines[index].upward(sub, predicates)
            self.metrics.increment("router.fanout", len(items))
            futures = [
                self._pool.submit(
                    self._timed, index,
                    lambda e, t=sub: e.upward(t, predicates))
                for index, sub in items
            ]
            results = [future.result() for future in futures]
            insertions: dict[str, frozenset] = {}
            deletions: dict[str, frozenset] = {}
            covered = None
            for result in results:
                for predicate, rows in result.insertions.items():
                    insertions[predicate] = \
                        insertions.get(predicate, frozenset()) | rows
                for predicate, rows in result.deletions.items():
                    deletions[predicate] = \
                        deletions.get(predicate, frozenset()) | rows
                covered = (result.covered if covered is None
                           else (covered & result.covered
                                 if result.covered is not None else covered))
            return UpwardResult(insertions, deletions, transaction,
                                covered=covered)

    def check(self, transaction: Transaction) -> ICCheckResult:
        with self.metrics.time("check"):
            parts = self._routing.split(transaction)
            if not parts:
                parts = {0: transaction}
            items = sorted(parts.items())
            verdicts = [self._engines[index].check(sub)
                        for index, sub in items]
            if len(verdicts) == 1:
                return verdicts[0]
            violations: list = []
            for verdict in verdicts:
                violations.extend(verdict.violations)
            return ICCheckResult(all(v.ok for v in verdicts),
                                 tuple(violations), transaction)

    def monitor(self, transaction: Transaction,
                conditions: Iterable[str] | None = None):
        return self._single_shard("monitor").monitor(transaction, conditions)

    def downward(self, requests):
        return self._single_shard("downward").downward(requests)

    def repair(self, verify: bool = False):
        return self._single_shard("repair").repair(verify=verify)

    # -- aggregated stats/health (degraded, never failing) ---------------------

    def stats(self) -> dict:
        results, errors = self._gather_degraded(lambda e: e.stats())
        facts = sum(r["engine"]["facts"] for r in results.values())
        in_doubt = sum(r["engine"].get("in_doubt", 0)
                       for r in results.values())
        payload = {
            "engine": {
                "shards": self.n_shards,
                "directory": (str(self._directory)
                              if self._directory is not None else None),
                "facts": facts,
                "in_doubt": in_doubt,
                "decisions": len(self.decisions),
                "feed_subscriptions": len(self._feeds),
            },
            "shards": {str(index): results.get(index)
                       for index in range(self.n_shards)},
            **self.metrics.snapshot(),
        }
        if errors:
            payload["degraded"] = self._degraded(errors)
        return payload

    def health(self) -> dict:
        results, errors = self._gather_degraded(lambda e: e.health())
        ready = bool(results) and not errors and all(
            r.get("ready") for r in results.values())
        payload = {
            "live": True,
            "ready": ready and not self._closed,
            "shards": {str(index): results.get(index)
                       for index in range(self.n_shards)},
            "in_doubt": sorted(
                txn_id for r in results.values()
                for txn_id in r.get("in_doubt", ())),
        }
        if errors:
            payload["degraded"] = self._degraded(errors)
        for provider in list(self.health_extras):
            try:
                extra = provider()
            except Exception:
                continue
            if isinstance(extra, dict):
                payload.update(extra)
        return payload

    @staticmethod
    def _degraded(errors: dict[int, BaseException]) -> dict:
        return {
            "shards": sorted(errors),
            "errors": {str(index): _error_payload(error)
                       for index, error in errors.items()},
        }

    # -- change-feed subscriptions ---------------------------------------------

    def feed_subscribe(self, goals, callback: Callable[[dict], None], *,
                       emit_empty: bool = False) -> dict:
        """Register one standing query across every shard.

        Each shard engine gets an ``emit_empty`` subscription -- a
        coordinated commit then yields a frame from *every* participant,
        so the per-subscription :class:`FeedMerger` knows when a 2PC
        transaction's frame set is complete -- and the merger folds those
        per-shard frames into one subscriber stream: exactly one merged
        frame per cross-shard commit, emitted in commit decision order.
        (*emit_empty* on the merged stream itself is not supported; empty
        merged frames are dropped.)
        """
        del emit_empty
        merger = FeedMerger(callback)
        per_shard: list[tuple[DatabaseEngine, str]] = []
        epoch = 0
        info: dict = {}
        try:
            for index, engine in enumerate(self._engines):
                info = engine.feed_subscribe(
                    goals,
                    lambda frame, shard=index: merger.on_frame(shard, frame),
                    emit_empty=True)
                per_shard.append((engine, info["subscription_id"]))
                epoch = max(epoch, info.get("epoch", 0))
        except BaseException:
            for engine, shard_sub in per_shard:
                try:
                    engine.feed_unsubscribe(shard_sub)
                except DatalogError:
                    pass
            raise
        with self._feed_lock:
            sub_id = f"sub-{next(self._feed_ids)}"
            self._feeds[sub_id] = {"merger": merger, "per_shard": per_shard}
        self.metrics.increment("feed.subscriptions")
        return {"subscription_id": sub_id, "goals": info["goals"],
                "predicates": info["predicates"], "epoch": epoch}

    def feed_unsubscribe(self, subscription_id: str) -> dict:
        """Deregister a group subscription; unknown ids raise typed."""
        entry = None
        if isinstance(subscription_id, str) and subscription_id:
            with self._feed_lock:
                entry = self._feeds.pop(subscription_id, None)
        if entry is None:
            raise SubscriptionError(
                f"unknown subscription_id: {subscription_id!r}")
        for engine, shard_sub in entry["per_shard"]:
            try:
                engine.feed_unsubscribe(shard_sub)
            except DatalogError:
                pass
        return {"unsubscribed": subscription_id}

    def _feed_mergers(self) -> list[FeedMerger]:
        with self._feed_lock:
            return [entry["merger"] for entry in self._feeds.values()]

    # -- writes ----------------------------------------------------------------

    def commit(self, transaction: Transaction,
               on_violation: str | None = None,
               timeout: float | None = None,
               txn_id: str | None = None) -> CommitOutcome:
        parts = self._routing.split(transaction)
        if len(parts) <= 1:
            index, sub = (next(iter(parts.items())) if parts
                          else (0, transaction))
            self.metrics.increment("router.single_shard_commits")
            return self._engines[index].commit(
                sub, on_violation=on_violation, timeout=timeout,
                txn_id=txn_id)
        if on_violation not in (None, "reject"):
            raise RoutingError(
                f"cross-shard commits support only the 'reject' policy, "
                f"not {on_violation!r}")
        if txn_id is None:
            txn_id = uuid.uuid4().hex
        self.metrics.increment("router.cross_shard_commits")
        self.metrics.increment("router.fanout", len(parts))
        pairs = [(self._participants[index], sub)
                 for index, sub in sorted(parts.items())]
        # Mergers must know the participant set *before* phase two: frames
        # a shard pushes while applying the decision are buffered against
        # the transaction, then emitted as one merged frame on commit (or
        # discarded on abort).
        mergers = self._feed_mergers()
        shard_ids = sorted(parts)
        for merger in mergers:
            merger.begin(txn_id, shard_ids)
        try:
            with self.metrics.time("commit"):
                outcome = self._coordinator.commit(pairs, txn_id, transaction)
        except BaseException:
            for merger in mergers:
                merger.abort(txn_id)
            raise
        for merger in mergers:
            if outcome.applied:
                merger.commit(txn_id)
            else:
                merger.abort(txn_id)
        return outcome

    def commit_many(self, transactions: Iterable[Transaction],
                    on_violation: str | None = None,
                    raise_errors: bool = True,
                    txn_ids: Iterable[str | None] | None = None
                    ) -> list[CommitOutcome]:
        transactions = list(transactions)
        ids = (list(txn_ids) if txn_ids is not None
               else [None] * len(transactions))
        if len(ids) != len(transactions):
            raise ValueError("txn_ids must pair 1:1 with transactions")
        outcomes: list[CommitOutcome] = []
        for transaction, txn_id in zip(transactions, ids):
            try:
                outcomes.append(self.commit(transaction,
                                            on_violation=on_violation,
                                            txn_id=txn_id))
            except DatalogError:
                if raise_errors:
                    raise
        return outcomes

    def prepare(self, transaction: Transaction, txn_id: str) -> dict:
        if self.n_shards == 1:
            return self._engines[0].prepare(transaction, txn_id)
        raise RoutingError(
            "a shard group cannot itself be a 2PC participant; send "
            "'prepare' to an individual shard")

    def decide(self, txn_id: str, decision: str) -> dict:
        if self.n_shards == 1:
            return self._engines[0].decide(txn_id, decision)
        raise RoutingError(
            "a shard group cannot itself be a 2PC participant; send "
            "'decide' to an individual shard")
