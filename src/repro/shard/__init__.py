"""Sharded serving: partitioned engines, scatter-gather, 2PC commits.

The shard package scales the single-process serving stack horizontally:

- :mod:`repro.shard.routing` -- the durable partition map.  Each base
  predicate is either pinned to a shard or hash-partitioned by its first
  argument (stable SHA-256, never Python's ``hash``); derived predicates
  are evaluated everywhere and merged.
- :mod:`repro.shard.coordinator` -- presumed-abort two-phase commit over
  the exactly-once substrate: participant votes are durable ``prepared``
  WAL lines, the coordinator's only state is an append-only decision log,
  and in-doubt transactions resolve deterministically at reopen.
- :mod:`repro.shard.group` -- :class:`EngineGroup`, N in-process
  :class:`~repro.server.engine.DatabaseEngine` instances behind one
  engine-shaped facade (``repro shard-serve``).
- :mod:`repro.shard.router` -- :class:`ShardRouter`, the same facade over
  N *remote* shard servers via resilient clients (``repro route``).

One shard is the degenerate case throughout: routing, the group and the
router all collapse to plain single-engine behaviour.
"""

from repro.datalog.errors import RoutingError, UnavailableError
from repro.shard.coordinator import (
    DECISIONS_NAME,
    DecisionLog,
    Participant,
    TwoPhaseCoordinator,
)
from repro.shard.group import EngineGroup
from repro.shard.router import ShardRouter
from repro.shard.routing import HASHED, ROUTING_NAME, RoutingTable, stable_hash

__all__ = [
    "DECISIONS_NAME",
    "DecisionLog",
    "EngineGroup",
    "HASHED",
    "Participant",
    "ROUTING_NAME",
    "RoutingError",
    "RoutingTable",
    "ShardRouter",
    "TwoPhaseCoordinator",
    "UnavailableError",
    "stable_hash",
]
