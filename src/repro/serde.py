"""Shared JSON (de)serialisation helpers for result and request types.

Every result class carries symmetric ``to_dict()`` / ``from_dict()``
methods; the row-mapping helpers here keep their wire shape identical
across the upward results, integrity checks and condition monitors:
``{"P": [["A"], ["B", "C"]]}`` -- predicate to sorted lists of constant
values.
"""

from __future__ import annotations

from typing import Mapping

from repro.datalog.terms import Constant

Row = tuple[Constant, ...]


def rows_to_lists(mapping: Mapping[str, frozenset[Row]]) -> dict:
    """``{predicate: rows}`` with constant rows as sorted JSON lists."""
    return {predicate: sorted([t.value for t in row] for row in rows)
            for predicate, rows in sorted(mapping.items())}


def rows_from_lists(payload: Mapping[str, list]) -> dict[str, frozenset[Row]]:
    """Inverse of :func:`rows_to_lists`."""
    return {predicate: frozenset(tuple(Constant(value) for value in row)
                                 for row in rows)
            for predicate, rows in payload.items()}
