"""The upward interpretation of the event rules (Section 4.1).

Given a transaction ``T`` of base event facts, the upward interpretation of
``ιP(x)`` / ``δP(x)`` is the set of derived event facts induced by ``T``:
each old database literal in an event-rule body is a query against the
current state, base event literals are queries against the transaction, and
derived event literals recurse into their own event rules.

Two executable strategies are provided (the paper: "a particular
implementation of these interpretations could be based either on a top-down
or on a bottom-up query evaluation procedure"):

``flat``
    evaluate the compiled transition program bottom-up over (old facts +
    transaction events) and read off the ``ins$P`` / ``del$P`` extensions.
    Faithful and simple, but it materialises every ``new$P`` extension and
    requires the flat program to be stratifiable (derived predicates must
    not be recursive).

``hybrid`` (default)
    walk the derived predicates in dependency (SCC) order.  Non-recursive
    predicates get genuinely *incremental* treatment -- insertion events
    come from the transition disjuncts containing a positive event literal
    ([Oli91] simplification) and deletion events from destroyed-derivation
    candidates followed by a goal-directed re-derivability check -- so the
    per-transaction cost scales with the size of the change, not the
    database.  Recursive components fall back to recompute-and-diff on just
    that component.

Both strategies agree with the semantic oracle
(:func:`repro.interpretations.naive.naive_changes`) -- a property-tested
invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.datalog.database import DeductiveDatabase
from repro.datalog.evaluation import BottomUpEvaluator, EvaluationStats
from repro.datalog.rules import Atom, Literal
from repro.datalog.stratify import dependency_graph
from repro.datalog.terms import Constant, Term
from repro.datalog.unification import match_tuple, resolve
from repro.events.event_rules import EventCompiler, TransitionProgram
from repro.events.events import Event, Transaction
from repro.events.naming import (
    DEL_PREFIX,
    INS_PREFIX,
    EventKind,
    del_name,
    ins_name,
)
from repro.events.transition import disjunct_has_positive_event
from repro.obs import tracer as obs


def _delta_first(literals) -> list:
    """Order a conjunction so tiny event relations drive the join.

    Positive event literals (ins$/del$) come first -- their extensions are
    transaction-sized -- then the other positive literals (indexed lookups
    against the old state), then negatives (pure tests once ground).
    """
    def rank(literal: Literal) -> int:
        if literal.positive and (literal.predicate.startswith(INS_PREFIX)
                                 or literal.predicate.startswith(DEL_PREFIX)):
            return 0
        if literal.positive:
            return 1
        return 2

    return sorted(literals, key=rank)

Row = tuple[Constant, ...]


@dataclass
class UpwardOptions:
    """Tuning knobs of the upward interpreter."""

    #: "hybrid" (incremental, default) or "flat" (transition-program bottom-up).
    strategy: str = "hybrid"
    #: Drop no-op events from the transaction first (definitions (1)/(2)).
    normalize: bool = True
    #: Semi-naive evaluation inside bottom-up fixpoints.
    semi_naive: bool = True
    #: Evaluation engine for those fixpoints: "compiled"/"interpreted",
    #: or None for the evaluator default (see docs/EVALUATION.md).
    engine: str | None = None


@dataclass
class UpwardResult:
    """Induced derived events: the result of the upward interpretation."""

    insertions: dict[str, frozenset[Row]] = field(default_factory=dict)
    deletions: dict[str, frozenset[Row]] = field(default_factory=dict)
    #: The (normalised) transaction the result was computed for.
    transaction: Transaction = field(default_factory=Transaction)
    stats: EvaluationStats = field(default_factory=EvaluationStats)
    #: The derived predicates this result has deltas for.  ``None`` means
    #: "unknown" (hand-built or wire-decoded results); :meth:`interpret`
    #: always records the exact coverage, so consumers that patch cached
    #: state (:meth:`UpwardInterpreter.advance`) can refuse partial results
    #: instead of silently dropping deltas for uncovered predicates.
    covered: frozenset[str] | None = None

    def insertions_of(self, predicate: str) -> frozenset[Row]:
        """Induced ``ιpredicate`` rows."""
        return self.insertions.get(predicate, frozenset())

    def deletions_of(self, predicate: str) -> frozenset[Row]:
        """Induced ``δpredicate`` rows."""
        return self.deletions.get(predicate, frozenset())

    def induced(self, kind: EventKind, predicate: str) -> frozenset[Row]:
        """Induced rows of one event predicate."""
        if kind is EventKind.INSERTION:
            return self.insertions_of(predicate)
        return self.deletions_of(predicate)

    def events(self) -> frozenset[Event]:
        """All induced events as :class:`Event` objects."""
        collected: set[Event] = set()
        for predicate, rows in self.insertions.items():
            collected.update(Event(EventKind.INSERTION, predicate, row) for row in rows)
        for predicate, rows in self.deletions.items():
            collected.update(Event(EventKind.DELETION, predicate, row) for row in rows)
        return frozenset(collected)

    def is_empty(self) -> bool:
        """True when the transaction induces no derived change."""
        return not any(self.insertions.values()) and not any(self.deletions.values())

    def restricted_to(self, predicates: Iterable[str]) -> "UpwardResult":
        """Project the result onto a set of derived predicates."""
        wanted = frozenset(predicates)
        covered = wanted if self.covered is None else wanted & self.covered
        return UpwardResult(
            {p: rows for p, rows in self.insertions.items() if p in wanted},
            {p: rows for p, rows in self.deletions.items() if p in wanted},
            self.transaction,
            self.stats,
            covered,
        )

    def to_dict(self) -> dict:
        """A JSON-ready representation."""
        from repro.serde import rows_to_lists

        return {
            "transaction": self.transaction.to_dict(),
            "insertions": rows_to_lists(self.insertions),
            "deletions": rows_to_lists(self.deletions),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "UpwardResult":
        """Inverse of :meth:`to_dict` (stats are not carried on the wire)."""
        from repro.serde import rows_from_lists

        return cls(
            insertions=rows_from_lists(payload.get("insertions", {})),
            deletions=rows_from_lists(payload.get("deletions", {})),
            transaction=Transaction.from_dict(payload.get("transaction", [])),
        )

    def __str__(self) -> str:
        rendered = sorted(str(e) for e in self.events())
        return "{" + ", ".join(rendered) + "}"


# ---------------------------------------------------------------------------
# Fact-source views used to evaluate rule bodies against composite states.
# ---------------------------------------------------------------------------


def _filter_rows(rows: Iterable[Row], pattern: Sequence[Term]) -> Iterator[Row]:
    for row in rows:
        if all(not isinstance(t, Constant) or t == v for t, v in zip(pattern, row)):
            yield row


class OldStateView:
    """Old state: base facts from the database, derived from a materialisation."""

    def __init__(self, db: DeductiveDatabase, derived: Mapping[str, frozenset[Row]]):
        self._db = db
        self._derived = derived

    def facts_of(self, predicate: str) -> frozenset[Row]:
        if predicate in self._derived:
            return self._derived[predicate]
        return self._db.facts_of(predicate)

    def lookup(self, predicate: str, pattern: Sequence[Term]) -> Iterator[Row]:
        if predicate in self._derived:
            return _filter_rows(self._derived[predicate], pattern)
        return self._db.lookup(predicate, pattern)


class TransitionView:
    """Resolves event names to event sets and plain names to the old state."""

    def __init__(self, old_state: OldStateView, events: Mapping[str, set[Row]]):
        self._old_state = old_state
        self._events = events

    def facts_of(self, predicate: str) -> frozenset[Row]:
        if predicate.startswith(INS_PREFIX) or predicate.startswith(DEL_PREFIX):
            return frozenset(self._events.get(predicate, ()))
        return self._old_state.facts_of(predicate)

    def lookup(self, predicate: str, pattern: Sequence[Term]) -> Iterator[Row]:
        if predicate.startswith(INS_PREFIX) or predicate.startswith(DEL_PREFIX):
            return _filter_rows(self._events.get(predicate, ()), pattern)
        return self._old_state.lookup(predicate, pattern)


class NewStateView:
    """New state: base facts adjusted by the transaction, derived predicates
    from the extensions computed so far."""

    def __init__(self, db: DeductiveDatabase, events: Mapping[str, set[Row]],
                 new_derived: Mapping[str, frozenset[Row]]):
        self._db = db
        self._events = events
        self._new_derived = new_derived

    def facts_of(self, predicate: str) -> frozenset[Row]:
        if predicate in self._new_derived:
            return self._new_derived[predicate]
        base = set(self._db.facts_of(predicate))
        base |= self._events.get(ins_name(predicate), set())
        base -= self._events.get(del_name(predicate), set())
        return frozenset(base)

    def lookup(self, predicate: str, pattern: Sequence[Term]) -> Iterator[Row]:
        return _filter_rows(self.facts_of(predicate), pattern)


class _DatabaseWithEvents:
    """The database plus transaction events, for the flat strategy."""

    def __init__(self, db: DeductiveDatabase, events: Mapping[str, set[Row]]):
        self._db = db
        self._events = events

    def facts_of(self, predicate: str) -> frozenset[Row]:
        if predicate.startswith(INS_PREFIX) or predicate.startswith(DEL_PREFIX):
            return frozenset(self._events.get(predicate, ()))
        return self._db.facts_of(predicate)

    def lookup(self, predicate: str, pattern: Sequence[Term]) -> Iterator[Row]:
        if predicate.startswith(INS_PREFIX) or predicate.startswith(DEL_PREFIX):
            return _filter_rows(self._events.get(predicate, ()), pattern)
        return self._db.lookup(predicate, pattern)


def _event_rows(transaction: Transaction) -> dict[str, set[Row]]:
    """Group a transaction's events by prefixed event-predicate name."""
    grouped: dict[str, set[Row]] = {}
    for event in transaction:
        name = ins_name(event.predicate) if event.is_insertion \
            else del_name(event.predicate)
        grouped.setdefault(name, set()).add(event.args)
    return grouped


class UpwardInterpreter:
    """Computes the upward interpretation for transactions on one database.

    The interpreter materialises the old state once at construction and
    reuses it across :meth:`interpret` calls, which is what makes the hybrid
    strategy incremental.  If the database is mutated afterwards, build a
    new interpreter (or call :meth:`refresh`).
    """

    def __init__(self, db: DeductiveDatabase,
                 program: TransitionProgram | None = None,
                 options: UpwardOptions | None = None,
                 simplify: bool = True,
                 on_materialize: Callable[[], None] | None = None):
        self._db = db
        self._options = options or UpwardOptions()
        self._program = program or EventCompiler(simplify=simplify).compile(db)
        self._old_evaluator: BottomUpEvaluator | None = None
        self._old_view: OldStateView | None = None
        self._scc_order: list[frozenset[str]] | None = None
        #: Invoked each time the old state is materialised from scratch
        #: (the expensive ``upward.old_state`` span); lets owners count
        #: cache rematerialisations.
        self.on_materialize = on_materialize

    @property
    def program(self) -> TransitionProgram:
        """The compiled transition program in use."""
        return self._program

    def refresh(self) -> None:
        """Forget cached state after the underlying database changed."""
        self._old_evaluator = None
        self._old_view = None
        self._scc_order = None
        self._program = EventCompiler(
            simplify=self._program.simplified
        ).compile(self._db)

    # -- public API -------------------------------------------------------------

    def interpret(self, transaction: Transaction,
                  predicates: Iterable[str] | None = None) -> UpwardResult:
        """Induced derived events of *transaction*.

        ``predicates`` optionally restricts the computation to the given
        derived predicates (and everything they depend on) -- integrity
        checking only needs ``Ic``, for example.
        """
        transaction.check_base_only(self._db)
        if self._options.normalize:
            transaction = transaction.normalized(self._db)
        with obs.span("upward.interpret") as span:
            if obs.enabled():
                span.set(strategy=self._options.strategy)
                span.add("transaction_events", len(transaction))
            if self._options.strategy == "flat":
                result = self._interpret_flat(transaction)
                if predicates is not None:
                    result = result.restricted_to(predicates)
            elif self._options.strategy == "hybrid":
                result = self._interpret_hybrid(transaction, predicates)
            else:
                raise ValueError(
                    f"unknown upward strategy: {self._options.strategy!r}")
            if obs.enabled():
                result.stats.record_to(span)
                span.add("induced_events", len(result.events()))
        return result

    def holds_after(self, predicate: str, row: Row,
                    transaction: Transaction) -> bool:
        """Whether ``predicate(row)`` holds in the new state ``D ⊕ T``."""
        result = self.interpret(transaction, predicates=[predicate])
        held = row in self.old_extension(predicate)
        if held:
            return row not in result.deletions_of(predicate)
        return row in result.insertions_of(predicate)

    def advance(self, result: UpwardResult) -> None:
        """Advance the cached old state across an applied transaction.

        Call *after* ``result.transaction`` has been applied to the
        database.  The cached derived extensions are patched with the
        induced events, so the next interpretation starts from the new
        state without re-materialising.

        ``result`` must cover every derived predicate of the program, i.e.
        come from an unfiltered :meth:`interpret`; a partial (filtered or
        hand-built) result raises :class:`ValueError` instead of silently
        corrupting the uncovered extensions.  When no old state is cached
        yet the call is a no-op: the next interpretation materialises the
        (already advanced) database directly.
        """
        if result.covered is None:
            raise ValueError(
                "cannot advance from an UpwardResult of unknown coverage "
                "(hand-built or wire-decoded); recompute with an "
                "unfiltered interpret()")
        missing = self._program.derived - result.covered
        if missing:
            raise ValueError(
                "cannot advance from a partial UpwardResult: advancing "
                "needs deltas for every derived predicate, but this one "
                "misses {}; recompute with an unfiltered "
                "interpret()".format(", ".join(sorted(missing))))
        if self._old_evaluator is None:
            # Nothing cached: materialising now would read the *new* state
            # and then double-apply the deltas.  Stay cold instead.
            return
        for predicate in self._program.derived:
            inserted = result.insertions_of(predicate)
            deleted = result.deletions_of(predicate)
            if inserted or deleted:
                self._old_evaluator.apply_delta(predicate, inserted, deleted)

    @property
    def has_cached_state(self) -> bool:
        """Whether an old-state materialisation is currently cached."""
        return self._old_evaluator is not None

    def old_extension(self, predicate: str) -> frozenset[Row]:
        """The old-state extension of any predicate."""
        self._ensure_old_state()
        assert self._old_evaluator is not None
        return self._old_evaluator.extension(predicate)

    def old_state_view(self) -> OldStateView:
        """A fact-source over the whole old state (base + derived)."""
        self._ensure_old_state()
        assert self._old_view is not None
        return self._old_view

    # -- old state ---------------------------------------------------------------

    def _ensure_old_state(self) -> None:
        if self._old_evaluator is not None:
            return
        with obs.span("upward.old_state") as span:
            self._old_evaluator = BottomUpEvaluator(
                self._db, self._program.source_rules,
                semi_naive=self._options.semi_naive,
                engine=self._options.engine,
            )
            materialization = self._old_evaluator.materialize()
            if obs.enabled():
                span.add("derived_rows", sum(
                    len(rows) for rows in materialization.derived.values()))
        # The view must read the evaluator's *live* extensions, not the
        # frozen materialization snapshot: advance() patches the evaluator
        # in place and transition rules that mention derived predicates in
        # their old-state literals must see the patched rows.
        self._old_view = OldStateView(self._db,
                                      self._old_evaluator.live_extensions())
        if self.on_materialize is not None:
            self.on_materialize()

    # -- flat strategy -------------------------------------------------------------

    def _interpret_flat(self, transaction: Transaction) -> UpwardResult:
        stratification = self._program.require_flat_program()
        source = _DatabaseWithEvents(self._db, _event_rows(transaction))
        evaluator = BottomUpEvaluator(
            source, list(self._program.upward_rules),
            semi_naive=self._options.semi_naive,
            stratification=stratification,
            engine=self._options.engine,
        )
        insertions: dict[str, frozenset[Row]] = {}
        deletions: dict[str, frozenset[Row]] = {}
        for predicate in self._program.derived:
            ins_rows = evaluator.extension(ins_name(predicate))
            del_rows = evaluator.extension(del_name(predicate))
            if ins_rows:
                insertions[predicate] = ins_rows
            if del_rows:
                deletions[predicate] = del_rows
        return UpwardResult(insertions, deletions, transaction, evaluator.stats,
                            frozenset(self._program.derived))

    # -- hybrid strategy --------------------------------------------------------------

    def _derived_sccs(self) -> list[frozenset[str]]:
        """SCCs of derived predicates, dependencies first."""
        if self._scc_order is None:
            graph = dependency_graph(self._program.source_rules)
            components = graph.strongly_connected_components()
            derived = self._program.derived
            order = [frozenset(c & derived) for c in reversed(components)]
            self._scc_order = [c for c in order if c]
        return self._scc_order

    def _relevant_predicates(self, predicates: Iterable[str] | None) -> set[str] | None:
        """Derived predicates a requested set depends on (None = all)."""
        if predicates is None:
            return None
        graph = dependency_graph(self._program.source_rules)
        relevant = graph.reversed().reachable_from(list(predicates))
        return {p for p in relevant if p in self._program.derived} | set(predicates)

    def _interpret_hybrid(self, transaction: Transaction,
                          predicates: Iterable[str] | None) -> UpwardResult:
        self._ensure_old_state()
        assert self._old_evaluator is not None and self._old_view is not None
        stats = EvaluationStats()
        events = _event_rows(transaction)
        new_derived: dict[str, frozenset[Row]] = {}
        insertions: dict[str, frozenset[Row]] = {}
        deletions: dict[str, frozenset[Row]] = {}
        relevant = self._relevant_predicates(predicates)
        computed: set[str] = set()
        transition_view = TransitionView(self._old_view, events)
        new_view = NewStateView(self._db, events, new_derived)
        recursive = {
            p for scc in self._derived_sccs() if len(scc) > 1 for p in scc
        }
        for r in self._program.source_rules:
            if any(lit.predicate == r.head.predicate for lit in r.body):
                recursive.add(r.head.predicate)

        for scc in self._derived_sccs():
            if relevant is not None and not (scc & relevant):
                continue
            computed |= scc
            with obs.span("upward.scc") as scc_span:
                if scc & recursive:
                    scc_ins, scc_del = self._recompute_scc(scc, new_view, stats)
                    mode = "recompute"
                else:
                    scc_ins, scc_del = self._incremental_scc(
                        scc, transition_view, new_view, stats
                    )
                    mode = "incremental"
                if obs.enabled():
                    scc_span.set(mode=mode, predicates=sorted(scc))
                    scc_span.add("insertions", sum(
                        len(rows) for rows in scc_ins.values()))
                    scc_span.add("deletions", sum(
                        len(rows) for rows in scc_del.values()))
            for predicate in scc:
                old_rows = self._old_evaluator.extension(predicate)
                ins_rows = frozenset(scc_ins.get(predicate, frozenset()))
                del_rows = frozenset(scc_del.get(predicate, frozenset()))
                if ins_rows:
                    insertions[predicate] = ins_rows
                    events[ins_name(predicate)] = set(ins_rows)
                if del_rows:
                    deletions[predicate] = del_rows
                    events[del_name(predicate)] = set(del_rows)
                new_derived[predicate] = (old_rows | ins_rows) - del_rows
        result = UpwardResult(insertions, deletions, transaction, stats,
                              frozenset(computed))
        if predicates is not None:
            result = result.restricted_to(predicates)
        return result

    def _incremental_scc(self, scc: frozenset[str],
                         transition_view: TransitionView,
                         new_view: NewStateView,
                         stats: EvaluationStats) -> tuple[dict, dict]:
        """Delta evaluation of one non-recursive derived predicate."""
        assert self._old_evaluator is not None
        joiner_old = BottomUpEvaluator(transition_view, [])
        joiner_new = BottomUpEvaluator(new_view, [])
        scc_ins: dict[str, set[Row]] = {}
        scc_del: dict[str, set[Row]] = {}
        for predicate in scc:
            old_rows = self._old_evaluator.extension(predicate)
            inserted: set[Row] = set()
            delete_candidates: set[Row] = set()
            for transition in self._program.transition_rules_of(predicate):
                head_args = transition.head.args
                # Insertion candidates: event-bearing transition disjuncts.
                for disjunct in transition.disjuncts:
                    if not disjunct_has_positive_event(disjunct):
                        continue
                    for bindings in joiner_old.solve(_delta_first(disjunct)):
                        row = tuple(resolve(t, bindings) for t in head_args)
                        if row not in old_rows:
                            inserted.add(row)  # type: ignore[arg-type]
                # Deletion candidates: destroyed derivations of the old body.
                source = transition.source
                for index, literal in enumerate(source.body):
                    destroyer_name = del_name(literal.predicate) if literal.positive \
                        else ins_name(literal.predicate)
                    destroyer = Literal(Atom(destroyer_name, literal.args), True)
                    conjunction = [destroyer] + _delta_first(source.body)
                    for bindings in joiner_old.solve(conjunction):
                        row = tuple(resolve(t, bindings) for t in head_args)
                        if row in old_rows:
                            delete_candidates.add(row)  # type: ignore[arg-type]
            deleted = {
                row for row in delete_candidates
                if not self._rederivable(predicate, row, joiner_new)
            }
            stats.rule_firings += joiner_old.stats.rule_firings
            if inserted:
                scc_ins[predicate] = inserted
            if deleted:
                scc_del[predicate] = deleted
        stats.literals_matched += joiner_old.stats.literals_matched
        stats.literals_matched += joiner_new.stats.literals_matched
        return scc_ins, scc_del

    def _rederivable(self, predicate: str, row: Row,
                     joiner_new: BottomUpEvaluator) -> bool:
        """Does some rule of *predicate* still derive *row* in the new state?"""
        for transition in self._program.transition_rules_of(predicate):
            source = transition.source
            bindings = match_tuple(tuple(source.head.args), row, {})
            if bindings is None:
                continue
            if next(iter(joiner_new.solve(list(source.body), bindings)), None) is not None:
                return True
        return False

    def _recompute_scc(self, scc: frozenset[str], new_view: NewStateView,
                       stats: EvaluationStats) -> tuple[dict, dict]:
        """Recompute a recursive component in the new state and diff."""
        assert self._old_evaluator is not None
        scc_rules = [r for r in self._program.source_rules
                     if r.head.predicate in scc]
        evaluator = BottomUpEvaluator(
            new_view, scc_rules, semi_naive=self._options.semi_naive,
            engine=self._options.engine,
        )
        scc_ins: dict[str, set[Row]] = {}
        scc_del: dict[str, set[Row]] = {}
        for predicate in scc:
            new_rows = evaluator.extension(predicate)
            old_rows = self._old_evaluator.extension(predicate)
            gained = set(new_rows - old_rows)
            lost = set(old_rows - new_rows)
            if gained:
                scc_ins[predicate] = gained
            if lost:
                scc_del[predicate] = lost
        merged = stats.merged_with(evaluator.stats)
        stats.iterations = merged.iterations
        stats.rule_firings = merged.rule_firings
        stats.facts_derived = merged.facts_derived
        stats.literals_matched = merged.literals_matched
        return scc_ins, scc_del
