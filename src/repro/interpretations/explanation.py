"""Explaining induced events: which transition disjunct fired, and why.

Builds derivation trees over the *flat transition program*: an induced
``ιP(c)`` is explained by its event rule (``Pn(c)`` holds, ``P(c)`` did
not), whose ``new$P`` support is the specific transition disjunct that
fired -- with the base event facts of the transaction as leaves.  This is
the worked derivation of Example 4.1 produced mechanically.

Only available for non-recursive programs (the flat program must be
stratifiable).
"""

from __future__ import annotations

from repro.datalog.database import DeductiveDatabase
from repro.datalog.evaluation import BottomUpEvaluator
from repro.datalog.explain import Derivation, Explainer
from repro.datalog.terms import Constant
from repro.events.event_rules import EventCompiler, TransitionProgram
from repro.events.events import Event, Transaction
from repro.events.naming import del_name, ins_name
from repro.interpretations.upward import _DatabaseWithEvents, _event_rows

Row = tuple[Constant, ...]


def explain_event(db: DeductiveDatabase, transaction: Transaction,
                  event: Event,
                  program: TransitionProgram | None = None,
                  max_explanations: int = 1) -> tuple[Derivation, ...]:
    """Derivation trees for an induced event under *transaction*.

    Empty when the event is not in fact induced.  The returned trees are
    over the ``ins$``/``del$``/``new$`` namespaces; their leaves are stored
    facts and the transaction's base event facts.
    """
    program = program or EventCompiler(simplify=False).compile(db)
    stratification = program.require_flat_program()
    transaction = transaction.normalized(db)
    source = _DatabaseWithEvents(db, _event_rows(transaction))
    rules = list(program.upward_rules)
    evaluator = BottomUpEvaluator(source, rules,
                                  stratification=stratification)
    explainer = Explainer(evaluator, rules)
    name = ins_name(event.predicate) if event.is_insertion \
        else del_name(event.predicate)
    return explainer.explain(name, event.args, max_explanations)
