"""The semantic oracle for change computation.

Definitions (1) and (2) of the paper *define* the events of a transition:

    ιP(x) <-> Pn(x) ∧ ¬Po(x)
    δP(x) <-> Po(x) ∧ ¬Pn(x)

The most direct (and most expensive) way to compute them is to materialise
the old state, apply the transaction, materialise the new state and diff the
two extensions.  This module does exactly that.  It is

- the correctness oracle the upward interpreter is property-tested against
  (they must agree on every stratified program), and
- the baseline of the SYN1 benchmark (incremental vs. naive change
  computation).
"""

from __future__ import annotations

from repro.datalog.database import DeductiveDatabase
from repro.datalog.evaluation import BottomUpEvaluator
from repro.events.events import Transaction
from repro.interpretations.upward import UpwardResult


def naive_changes(db: DeductiveDatabase, transaction: Transaction,
                  semi_naive: bool = True,
                  normalize: bool = True) -> UpwardResult:
    """Events induced by *transaction* on every derived predicate of *db*.

    Materialises both states in full; cost is proportional to the database,
    not to the transaction.  Evaluation is pinned to the *interpreted*
    engine so this stays an independent oracle for the compiled one.
    """
    transaction.check_base_only(db)
    if normalize:
        transaction = transaction.normalized(db)
    rules = db.rules_with_global_ic()
    old_evaluator = BottomUpEvaluator(db, rules, semi_naive=semi_naive,
                                      engine="interpreted")
    old_state = old_evaluator.materialize()

    new_db = transaction.apply_to(db)
    new_evaluator = BottomUpEvaluator(new_db, new_db.rules_with_global_ic(),
                                      semi_naive=semi_naive,
                                      engine="interpreted")
    new_state = new_evaluator.materialize()

    insertions: dict[str, frozenset] = {}
    deletions: dict[str, frozenset] = {}
    derived = set(old_state.derived) | set(new_state.derived)
    for predicate in derived:
        old_rows = old_state.extension(predicate)
        new_rows = new_state.extension(predicate)
        gained = new_rows - old_rows
        lost = old_rows - new_rows
        if gained:
            insertions[predicate] = frozenset(gained)
        if lost:
            deletions[predicate] = frozenset(lost)
    stats = old_evaluator.stats.merged_with(new_evaluator.stats)
    return UpwardResult(insertions, deletions, transaction, stats,
                        frozenset(derived))
