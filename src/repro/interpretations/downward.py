"""The downward interpretation of the event rules (Section 4.2).

Given requested changes on derived predicates (a set of possibly negated,
possibly non-ground event literals), the downward interpretation produces a
DNF over *base* event literals.  Each disjunct is an alternative
:class:`Translation`: its positive events form a candidate transaction, its
negative events are requirements the transition must satisfy ("changes that
must not be performed").

The interpreter is goal-directed:

- old database literals are queries against the current state (binding
  variables);
- positive base event literals become output literals, *provided the event
  definition is satisfied* (``ιQ(c)`` needs ``¬Qo(c)``, ``δQ(c)`` needs
  ``Qo(c)``; Example 4.2 discards the ``ιQ(B) ∧ δR(B)`` disjunct this way);
- negative base event literals become requirements (or vanish when the
  event is impossible anyway);
- derived event literals recurse through their event rule, and new-state
  literals recurse through the transition rules;
- negative derived / new-state literals are the DNF negation of the positive
  result, exactly as Section 4.2 prescribes;
- non-ground literals are instantiated over the finite domain ("as we
  consider finite domains, the number of alternatives is always finite"),
  except that positive literals whose variables occur nowhere else are
  solved existentially by direct descent (each alternative fixes a witness).

Top-level *requests* use goal semantics (footnote 1 of the paper): a
requested change that already holds is trivially satisfied and a
requirement on an impossible event is vacuous.  Event literals *inside*
formulas always use occurrence semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import DepthLimitExceeded, DomainError, TransactionError
from repro.datalog.evaluation import BottomUpEvaluator
from repro.datalog.rules import Atom, Literal
from repro.datalog.terms import Constant, Term, Variable
from repro.datalog.unification import (
    Substitution,
    resolve,
    substitute_literal,
    unify_atoms,
)
from repro.events.dnf import Dnf, FALSE_DNF, TRUE_DNF
from repro.events.event_rules import EventCompiler, TransitionProgram
from repro.events.events import Event, Transaction
from repro.events.naming import (
    EventKind,
    del_name,
    event_kind_of,
    ins_name,
    new_name,
    parse_prefixed,
)
from repro.obs import tracer as obs

Row = tuple[Constant, ...]


@dataclass
class DownwardOptions:
    """Tuning knobs of the downward interpreter."""

    #: Maximum descent depth through event/transition rules.
    max_depth: int = 24
    #: What to do at the depth limit: "raise" or "prune" (treat as false).
    on_depth_limit: str = "raise"
    #: Extra constants added to the finite domain used for instantiation.
    extra_domain: frozenset[Constant] = frozenset()
    #: Bound on intermediate DNF size; alternatives are combinatorial
    #: (repairing k independent violations with a choices each is a^k), so
    #: blowing past this raises ComplexityLimitExceeded instead of hanging.
    max_disjuncts: int = 20000
    #: Evaluation engine for the old-state evaluator:
    #: "compiled"/"interpreted", or None for the evaluator default.
    engine: str | None = None


@dataclass(frozen=True)
class Translation:
    """One alternative produced by the downward interpretation.

    ``transaction`` must be performed; ``constraints`` are events that must
    *not* be performed by whatever transaction is finally executed.
    """

    transaction: Transaction
    constraints: frozenset[Event] = frozenset()

    def to_dict(self) -> dict:
        """A JSON-ready representation."""
        return {
            "transaction": self.transaction.to_dict(),
            "constraints": [e.to_dict() for e in sorted(self.constraints,
                                                        key=str)],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Translation":
        """Inverse of :meth:`to_dict`."""
        return cls(
            transaction=Transaction.from_dict(payload.get("transaction", [])),
            constraints=frozenset(Event.from_dict(item)
                                  for item in payload.get("constraints", [])),
        )

    def as_conjunct(self) -> tuple[Literal, ...]:
        """The DNF disjunct this translation came from (event literals)."""
        positives = [request_of(event) for event in self.transaction]
        negatives = [request_of(event).negate() for event in self.constraints]
        return tuple(sorted(positives + negatives, key=str))

    def respects_constraints(self, transaction: Transaction) -> bool:
        """True when *transaction* avoids every forbidden event."""
        return not any(forbidden in transaction for forbidden in self.constraints)

    def __str__(self) -> str:
        rendered = str(self.transaction)
        if self.constraints:
            shown = sorted(f"¬{e}" for e in self.constraints)
            if len(shown) > 8:
                shown = shown[:8] + [f"… +{len(self.constraints) - 8} more"]
            rendered += f" [{', '.join(shown)}]"
        return rendered


@dataclass
class DownwardStats:
    """Counters exposed for the benchmark harness."""

    disjuncts_explored: int = 0
    descents: int = 0
    enumerations: int = 0
    old_queries: int = 0
    #: Branches cut off by ``on_depth_limit="prune"``.
    pruned: int = 0

    def snapshot(self) -> "DownwardStats":
        """A frozen copy (for computing per-stage deltas)."""
        return DownwardStats(**vars(self))

    def delta_since(self, earlier: "DownwardStats") -> "DownwardStats":
        """The pointwise difference ``self - earlier``."""
        return DownwardStats(**{
            name: value - getattr(earlier, name)
            for name, value in vars(self).items()
        })

    def to_counters(self) -> dict[str, int]:
        """The counters as a plain dict (span/JSON friendly)."""
        return dict(vars(self))

    def record_to(self, span) -> None:
        """Add every non-zero counter onto an :mod:`repro.obs` span."""
        for name, value in vars(self).items():
            if value:
                span.add(name, value)


@dataclass
class DownwardResult:
    """The full result of downward-interpreting a request set."""

    requests: tuple[Literal, ...]
    dnf: Dnf
    translations: tuple[Translation, ...]
    #: Requests that were already satisfied in the current state (footnote 1).
    already_satisfied: tuple[Literal, ...] = ()
    stats: DownwardStats = field(default_factory=DownwardStats)

    @property
    def is_satisfiable(self) -> bool:
        """True when at least one alternative exists."""
        return not self.dnf.is_false

    def transactions(self) -> tuple[Transaction, ...]:
        """The candidate transactions (positive parts of the alternatives)."""
        return tuple(t.transaction for t in self.translations)

    def to_dict(self) -> dict:
        """A JSON-ready representation.

        Request literals use the canonical ``ins P(A)`` textual form, so
        they round-trip through :func:`repro.events.requests.parse_request`.
        """
        from repro.events.requests import request_text

        return {
            "satisfiable": self.is_satisfiable,
            "requests": [request_text(l) for l in self.requests],
            "already_satisfied": [request_text(l)
                                  for l in self.already_satisfied],
            "translations": [t.to_dict() for t in self.translations],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DownwardResult":
        """Inverse of :meth:`to_dict` (stats are not carried on the wire).

        The DNF is reconstructed from the translations: satisfiable results
        without translations were already satisfied (true), unsatisfiable
        ones have the empty (false) DNF.
        """
        from repro.events.requests import parse_request

        translations = tuple(Translation.from_dict(item)
                             for item in payload.get("translations", []))
        satisfiable = bool(payload.get("satisfiable", translations))
        if translations:
            dnf = FALSE_DNF
            for translation in translations:
                dnf = dnf.or_(Dnf.of_conjunct(translation.as_conjunct()))
        else:
            dnf = TRUE_DNF if satisfiable else FALSE_DNF
        return cls(
            requests=tuple(parse_request(text)
                           for text in payload.get("requests", [])),
            dnf=dnf,
            translations=translations,
            already_satisfied=tuple(
                parse_request(text)
                for text in payload.get("already_satisfied", [])),
        )

    def __str__(self) -> str:
        if not self.translations:
            return "no translation" if not self.dnf.is_true else "already satisfied"
        return "; ".join(str(t) for t in self.translations)


# -- request constructors -----------------------------------------------------


def want_insert(predicate: str, *args) -> Literal:
    """Request the insertion of ``predicate(args)`` (``ιP`` positive)."""
    return Literal(Atom(ins_name(predicate), _terms(args)), True)


def want_delete(predicate: str, *args) -> Literal:
    """Request the deletion of ``predicate(args)`` (``δP`` positive)."""
    return Literal(Atom(del_name(predicate), _terms(args)), True)


def forbid_insert(predicate: str, *args) -> Literal:
    """Require that ``ιP(args)`` is *not* induced (``¬ιP``)."""
    return Literal(Atom(ins_name(predicate), _terms(args)), False)


def forbid_delete(predicate: str, *args) -> Literal:
    """Require that ``δP(args)`` is *not* induced (``¬δP``)."""
    return Literal(Atom(del_name(predicate), _terms(args)), False)


def _terms(args: Iterable) -> tuple[Term, ...]:
    from repro.datalog.terms import term_from_name

    converted: list[Term] = []
    for arg in args:
        if isinstance(arg, (Constant, Variable)):
            converted.append(arg)
        elif isinstance(arg, int):
            converted.append(Constant(arg))
        else:
            converted.append(term_from_name(str(arg)))
    return tuple(converted)


def request_of(event: Event) -> Literal:
    """The positive request literal of a ground event."""
    name = ins_name(event.predicate) if event.is_insertion else del_name(event.predicate)
    return Literal(Atom(name, event.args), True)


# -- the interpreter --------------------------------------------------------------


class DownwardInterpreter:
    """Computes the downward interpretation against one database state."""

    def __init__(self, db: DeductiveDatabase,
                 program: TransitionProgram | None = None,
                 options: DownwardOptions | None = None,
                 simplify: bool = True):
        self._db = db
        self._options = options or DownwardOptions()
        self._program = program or EventCompiler(simplify=simplify).compile(db)
        self._old = BottomUpEvaluator(db, self._program.source_rules,
                                      engine=self._options.engine)
        self._domain: frozenset[Constant] | None = None
        self._request_constants: frozenset[Constant] = frozenset()
        self.stats = DownwardStats()

    @property
    def program(self) -> TransitionProgram:
        """The compiled transition program in use."""
        return self._program

    def domain(self) -> frozenset[Constant]:
        """The finite domain used for instantiation.

        The active domain of the database, any configured extra constants,
        and every constant mentioned by the current request set (a requested
        ``ιLa(Maria)`` makes ``Maria`` part of the domain even before any
        fact mentions her).
        """
        if self._domain is None:
            self._domain = self._db.active_domain() | self._options.extra_domain
        return self._domain | self._request_constants

    def advance(self, result) -> None:
        """Advance the cached old state across an applied transaction.

        The downward counterpart of
        :meth:`~repro.interpretations.upward.UpwardInterpreter.advance`:
        *result* is the full-coverage :class:`UpwardResult` of a
        transaction that has already been applied to the database.  The
        memoised derived extensions are patched in place (when they have
        been materialised at all) and the cached active domain is dropped,
        so the next interpretation runs against the new state without a
        from-scratch re-materialisation.  Partial results raise
        :class:`ValueError`.
        """
        if result.covered is None or self._program.derived - result.covered:
            raise ValueError(
                "cannot advance from a partial UpwardResult: advancing "
                "needs deltas for every derived predicate; recompute with "
                "an unfiltered interpret()")
        if self._old.materialized:
            for predicate in self._program.derived:
                inserted = result.insertions_of(predicate)
                deleted = result.deletions_of(predicate)
                if inserted or deleted:
                    self._old.apply_delta(predicate, inserted, deleted)
        self._domain = None

    # -- public API ------------------------------------------------------------------

    def interpret(self, requests: Iterable[Literal | Event] |
                  Literal | Event) -> DownwardResult:
        """Downward-interpret a request or a set of requests.

        The result of a set is "the disjunctive normal form of the logical
        conjunction of the result of downward interpreting each event in the
        set" (Section 4.2).
        """
        if isinstance(requests, (Literal, Event)):
            requests = [requests]
        literals = [request_of(r) if isinstance(r, Event) else r for r in requests]
        self._request_constants = frozenset(
            term for literal in literals for term in literal.atom.constants()
        )
        self.stats = DownwardStats()
        combined = TRUE_DNF
        satisfied: list[Literal] = []
        with obs.span("downward.interpret") as span:
            if obs.enabled():
                span.add("requests", len(literals))
            for literal in literals:
                with obs.span("downward.request") as request_span:
                    if obs.enabled():
                        request_span.set(request=str(literal))
                        before = self.stats.snapshot()
                    piece = self._down_request(literal, satisfied)
                    if obs.enabled():
                        self.stats.delta_since(before).record_to(request_span)
                        request_span.add("disjuncts", len(piece))
                combined = combined.and_(piece)
                if combined.is_false:
                    break
            combined = combined.simplified()
            translations = self._extract_translations(combined)
            if obs.enabled():
                self.stats.record_to(span)
                span.add("translations", len(translations))
        return DownwardResult(
            requests=tuple(literals),
            dnf=combined,
            translations=translations,
            already_satisfied=tuple(satisfied),
            stats=self.stats,
        )

    # -- request-level (goal) semantics ----------------------------------------------

    def _down_request(self, literal: Literal,
                      satisfied: list[Literal]) -> Dnf:
        kind = event_kind_of(literal.predicate)
        if kind is None:
            raise TransactionError(
                f"downward requests must be event literals (ι/δ): {literal}"
            )
        if literal.positive:
            if literal.is_ground() and self._goal_already_satisfied(literal):
                satisfied.append(literal)
                return TRUE_DNF
            return self._down_conjunct([literal], {}, 0)
        # Negative request: forbid the event's occurrence for every
        # instantiation ("all possible values of X").
        combined = TRUE_DNF
        for bindings in self._instantiations(literal, {}):
            ground = substitute_literal(literal, bindings)
            combined = combined.and_(self._down_conjunct([ground], {}, 0))
            if combined.is_false:
                break
        return combined

    def _goal_already_satisfied(self, literal: Literal) -> bool:
        """Footnote 1: a requested change that already holds is a no-op."""
        namespace, predicate = parse_prefixed(literal.predicate)
        row = tuple(resolve(t, {}) for t in literal.args)
        held = row in self._old.extension(predicate)
        return held if namespace == "ins" else not held

    # -- conjunct processing ------------------------------------------------------------

    def _down_conjunct(self, pending: list[Literal], subst: Substitution,
                       depth: int) -> Dnf:
        if depth > self._options.max_depth:
            if self._options.on_depth_limit == "prune":
                self.stats.pruned += 1
                return FALSE_DNF
            raise DepthLimitExceeded(
                f"downward interpretation exceeded depth {self._options.max_depth}; "
                f"raise DownwardOptions.max_depth or use on_depth_limit='prune'"
            )
        if not pending:
            return TRUE_DNF
        index = self._select(pending, subst)
        literal = pending[index]
        rest = pending[:index] + pending[index + 1:]
        total = FALSE_DNF
        for bindings, piece in self._down_literal(literal, subst, rest, depth):
            if piece.is_false:
                continue
            tail = self._down_conjunct(rest, bindings, depth)
            total = total.or_(piece.and_(tail))
            self._guard(total)
        return total.simplified()

    def _negate(self, dnf: Dnf) -> Dnf:
        """Bounded DNF negation (Section 4.2's logical-negation step)."""
        return dnf.negated(max_size=self._options.max_disjuncts)

    def _guard(self, dnf: Dnf) -> None:
        if len(dnf) > self._options.max_disjuncts:
            from repro.datalog.errors import ComplexityLimitExceeded

            raise ComplexityLimitExceeded(
                f"downward DNF grew past {self._options.max_disjuncts} "
                f"disjuncts; the request has combinatorially many "
                f"alternatives -- split it (e.g. repair one violation at a "
                f"time) or raise DownwardOptions.max_disjuncts"
            )

    def _select(self, pending: list[Literal], subst: Substitution) -> int:
        """Pick the cheapest / most-binding literal to process next."""
        best_index = 0
        best_score = None
        for index, literal in enumerate(pending):
            namespace, _ = parse_prefixed(literal.predicate)
            unbound = self._unbound_vars(literal, subst)
            ground = not unbound
            if namespace == "old":
                score = 0 if ground else (1 if literal.positive else 9)
            elif ground:
                if namespace in ("ins", "del"):
                    base = not self._program.is_derived(
                        parse_prefixed(literal.predicate)[1])
                    score = (2 if literal.positive else 3) if base else \
                        (4 if literal.positive else 5)
                else:  # new$
                    score = 4 if literal.positive else 5
            else:
                score = 6 if literal.positive else 9
            if best_score is None or score < best_score:
                best_score = score
                best_index = index
                if score == 0:
                    break
        return best_index

    def _unbound_vars(self, literal: Literal, subst: Substitution) -> set[Variable]:
        unbound: set[Variable] = set()
        for term in literal.args:
            term = resolve(term, subst)
            if isinstance(term, Variable):
                unbound.add(term)
        return unbound

    # -- literal-level dispatch ------------------------------------------------------------

    def _down_literal(self, literal: Literal, subst: Substitution,
                      rest: Sequence[Literal], depth: int
                      ) -> Iterator[tuple[Substitution, Dnf]]:
        namespace, predicate = parse_prefixed(literal.predicate)
        if namespace == "old":
            yield from self._down_old(literal, subst)
            return
        if namespace in ("ins", "del"):
            kind = EventKind.INSERTION if namespace == "ins" else EventKind.DELETION
            if self._program.is_derived(predicate):
                yield from self._down_derived_event(
                    kind, predicate, literal, subst, rest, depth)
            else:
                yield from self._down_base_event(kind, predicate, literal, subst)
            return
        # namespace == "new"
        yield from self._down_new(predicate, literal, subst, rest, depth)

    # old database literals -------------------------------------------------------

    def _down_old(self, literal: Literal,
                  subst: Substitution) -> Iterator[tuple[Substitution, Dnf]]:
        from repro.datalog.builtins import evaluate_builtin, is_builtin

        self.stats.old_queries += 1
        if is_builtin(literal.predicate):
            # Rigid literal: a pure (state-independent) test; non-ground
            # occurrences are instantiated over the finite domain.
            for bindings in self._instantiations(literal, subst):
                row = tuple(resolve(t, bindings) for t in literal.args)
                if evaluate_builtin(literal.predicate, row) == literal.positive:
                    yield bindings, TRUE_DNF
            return
        if literal.positive:
            for bindings in self._old.solve([literal], subst):
                yield bindings, TRUE_DNF
            return
        unbound = self._unbound_vars(literal, subst)
        if not unbound:
            if not self._old.holds(literal.negate(), subst):
                yield dict(subst), TRUE_DNF
            return
        for bindings in self._instantiations(literal, subst):
            if not self._old.holds(literal.negate(), bindings):
                yield bindings, TRUE_DNF

    # base event literals ---------------------------------------------------------

    def _event_possible(self, kind: EventKind, predicate: str, row: Row) -> bool:
        """Occurrence precondition from definitions (1)/(2)."""
        held = row in self._old.extension(predicate)
        return not held if kind is EventKind.INSERTION else held

    def _down_base_event(self, kind: EventKind, predicate: str,
                         literal: Literal, subst: Substitution
                         ) -> Iterator[tuple[Substitution, Dnf]]:
        unbound = self._unbound_vars(literal, subst)
        if literal.positive:
            if not unbound:
                row = tuple(resolve(t, subst) for t in literal.args)
                if self._event_possible(kind, predicate, row):
                    ground = substitute_literal(literal, subst)
                    yield dict(subst), Dnf.of_literal(ground)
                return
            self.stats.enumerations += 1
            if kind is EventKind.DELETION:
                # δQ requires Qo: instantiate over the stored rows.
                pattern = tuple(resolve(t, subst) for t in literal.args)
                for row in self._db.lookup(predicate, pattern):
                    bindings = self._bind_row(pattern, row, subst)
                    if bindings is not None:
                        ground = substitute_literal(literal, bindings)
                        yield bindings, Dnf.of_literal(ground)
                return
            for bindings in self._instantiations(literal, subst):
                row = tuple(resolve(t, bindings) for t in literal.args)
                if self._event_possible(kind, predicate, row):
                    ground = substitute_literal(literal, bindings)
                    yield bindings, Dnf.of_literal(ground)
            return
        # Negative base event: a requirement (or vacuous when impossible).
        if not unbound:
            row = tuple(resolve(t, subst) for t in literal.args)
            if not self._event_possible(kind, predicate, row):
                yield dict(subst), TRUE_DNF
            else:
                ground = substitute_literal(literal, subst)
                yield dict(subst), Dnf.of_literal(ground)
            return
        # Universal requirement over every instantiation.
        combined = TRUE_DNF
        for bindings in self._instantiations(literal, subst):
            row = tuple(resolve(t, bindings) for t in literal.args)
            if self._event_possible(kind, predicate, row):
                combined = combined.and_(
                    Dnf.of_literal(substitute_literal(literal, bindings)))
        yield dict(subst), combined

    def _bind_row(self, pattern: tuple[Term, ...], row: Row,
                  subst: Substitution) -> dict | None:
        from repro.datalog.unification import match_tuple

        bindings = match_tuple(pattern, row, subst)
        return dict(bindings) if bindings is not None else None

    # derived event literals ---------------------------------------------------------

    def _down_derived_event(self, kind: EventKind, predicate: str,
                            literal: Literal, subst: Substitution,
                            rest: Sequence[Literal], depth: int
                            ) -> Iterator[tuple[Substitution, Dnf]]:
        unbound = self._unbound_vars(literal, subst)
        shared = unbound & self._vars_of(rest, subst)
        if literal.positive:
            if shared:
                self.stats.enumerations += 1
                for bindings in self._instantiate_vars(shared, subst):
                    yield bindings, self._descend_event(
                        kind, predicate, literal, bindings, depth)
                return
            yield dict(subst), self._descend_event(
                kind, predicate, literal, subst, depth)
            return
        # Negative derived event: DNF negation of the positive result,
        # universally over any remaining unbound variables.
        combined = TRUE_DNF
        for bindings in self._instantiations(literal, subst) if unbound \
                else [dict(subst)]:
            positive = self._descend_event(kind, predicate, literal, bindings, depth)
            combined = combined.and_(self._negate(positive))
            self._guard(combined)
            if combined.is_false:
                break
        yield dict(subst), combined

    def _descend_event(self, kind: EventKind, predicate: str, literal: Literal,
                       subst: Substitution, depth: int) -> Dnf:
        """Unfold one event rule: ιP -> (Pn ∧ ¬Po), δP -> (Po ∧ ¬Pn)."""
        self.stats.descents += 1
        args = tuple(resolve(t, subst) for t in literal.args)
        old_atom = Atom(predicate, args)
        new_atom = Atom(new_name(predicate), args)
        if kind is EventKind.INSERTION:
            body = [Literal(new_atom, True), Literal(old_atom, False)]
        else:
            body = [Literal(old_atom, True), Literal(new_atom, False)]
        return self._down_conjunct(body, dict(subst), depth + 1)

    # new-state literals ----------------------------------------------------------------

    def _down_new(self, predicate: str, literal: Literal, subst: Substitution,
                  rest: Sequence[Literal], depth: int
                  ) -> Iterator[tuple[Substitution, Dnf]]:
        unbound = self._unbound_vars(literal, subst)
        shared = unbound & self._vars_of(rest, subst)
        if literal.positive:
            if shared:
                self.stats.enumerations += 1
                for bindings in self._instantiate_vars(shared, subst):
                    yield bindings, self._descend_new(predicate, literal,
                                                      bindings, depth)
                return
            yield dict(subst), self._descend_new(predicate, literal, subst, depth)
            return
        combined = TRUE_DNF
        for bindings in self._instantiations(literal, subst) if unbound \
                else [dict(subst)]:
            positive = self._descend_new(predicate, literal, bindings, depth)
            combined = combined.and_(self._negate(positive))
            self._guard(combined)
            if combined.is_false:
                break
        yield dict(subst), combined

    def _descend_new(self, predicate: str, literal: Literal,
                     subst: Substitution, depth: int) -> Dnf:
        """Unfold ``new$P(t)`` through the transition rules (or, for a base
        predicate, through equivalence (3))."""
        self.stats.descents += 1
        args = tuple(resolve(t, subst) for t in literal.args)
        if not self._program.is_derived(predicate):
            stay = [
                Literal(Atom(predicate, args), True),
                Literal(Atom(del_name(predicate), args), False),
            ]
            inserted = [Literal(Atom(ins_name(predicate), args), True)]
            return self._down_conjunct(stay, dict(subst), depth + 1).or_(
                self._down_conjunct(inserted, dict(subst), depth + 1))
        total = FALSE_DNF
        for transition in self._program.transition_rules_of(predicate):
            renamed = self._rename_transition(transition)
            unified = unify_atoms(Atom(predicate, args),
                                  Atom(predicate, renamed.head.args), subst)
            if unified is None:
                continue
            for disjunct in renamed.disjuncts:
                self.stats.disjuncts_explored += 1
                piece = self._down_conjunct(list(disjunct), dict(unified), depth + 1)
                total = total.or_(piece)
                self._guard(total)
        return total.simplified()

    _rename_counter = itertools.count(1)

    def _rename_transition(self, transition):
        """Standardise a transition rule apart from the current goal."""
        from repro.datalog.unification import fresh_variable

        variables: set[Variable] = set()
        for term in transition.head.args:
            if isinstance(term, Variable):
                variables.add(term)
        for disjunct in transition.disjuncts:
            for lit in disjunct:
                variables.update(lit.variables())
        renaming = {v: fresh_variable(v.name.split("#")[0]) for v in variables}
        head = Atom(transition.head.predicate,
                    tuple(renaming.get(t, t) if isinstance(t, Variable) else t
                          for t in transition.head.args))
        disjuncts = tuple(
            tuple(substitute_literal(lit, renaming) for lit in disjunct)
            for disjunct in transition.disjuncts
        )
        return transition.__class__(
            transition.predicate, transition.index, head,
            transition.source, disjuncts,
        )

    # -- instantiation helpers ----------------------------------------------------------------

    def _vars_of(self, literals: Sequence[Literal],
                 subst: Substitution) -> set[Variable]:
        collected: set[Variable] = set()
        for literal in literals:
            collected.update(self._unbound_vars(literal, subst))
        return collected

    def _instantiations(self, literal: Literal,
                        subst: Substitution) -> Iterator[dict]:
        """All groundings of a literal's unbound variables over the domain."""
        return self._instantiate_vars(self._unbound_vars(literal, subst), subst)

    def _instantiate_vars(self, variables: set[Variable],
                          subst: Substitution) -> Iterator[dict]:
        if not variables:
            yield dict(subst)
            return
        domain = sorted(self.domain(), key=str)
        if not domain:
            raise DomainError(
                "finite-domain instantiation required but the active domain "
                "is empty; provide DownwardOptions.extra_domain"
            )
        ordered = sorted(variables, key=lambda v: v.name)
        for values in itertools.product(domain, repeat=len(ordered)):
            bindings = dict(subst)
            bindings.update(zip(ordered, values))
            yield bindings

    # -- translations ------------------------------------------------------------------------------

    def _extract_translations(self, dnf: Dnf) -> tuple[Translation, ...]:
        """Turn each disjunct into a :class:`Translation`.

        Disjuncts with the same positive part (candidate transaction) are
        alternative *certificates* differing only in their negative-event
        requirements; one per transaction (the one with the fewest
        constraints) is kept -- each disjunct is independently sufficient,
        so any witness will do.
        """
        by_transaction: dict[Transaction, Translation] = {}
        for conjunct in dnf:
            positives: list[Event] = []
            negatives: list[Event] = []
            for literal in conjunct:
                kind = event_kind_of(literal.predicate)
                if kind is None or not literal.is_ground():
                    raise TransactionError(
                        f"internal error: non-event or non-ground literal in "
                        f"downward result: {literal}"
                    )
                _, predicate = parse_prefixed(literal.predicate)
                event = Event(kind, predicate, literal.args)  # type: ignore[arg-type]
                (positives if literal.positive else negatives).append(event)
            candidate = Translation(
                transaction=Transaction(positives),
                constraints=frozenset(negatives),
            )
            existing = by_transaction.get(candidate.transaction)
            if existing is None or (
                (len(candidate.constraints), str(candidate))
                < (len(existing.constraints), str(existing))
            ):
                by_transaction[candidate.transaction] = candidate
        translations = sorted(by_transaction.values(),
                              key=lambda t: (len(t.transaction), str(t)))
        return tuple(translations)
