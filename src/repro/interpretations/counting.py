"""Counting-based change computation (the [GMS93] method the paper cites).

A third executable strategy for the upward interpretation, applicable to
non-recursive views: store, per derived tuple, the **number of
derivations** supporting it.  A transaction contributes a *signed* delta of
derivation counts per rule; induced events are exactly the zero-crossings
(count 0 → positive: ``ιP``; positive → 0: ``δP``).  Deletions therefore
need no re-derivability query, at the price of keeping the counts across
transactions -- the classic space/time trade-off against the DRed-style
hybrid strategy, measured by the SYN8 benchmark.

The signed delta of one rule ``P(t) ← L1 ∧ ... ∧ Ln`` under a transaction
is computed with the standard telescoping decomposition

    Δ(L1...Ln) = Σ_i  L1^new ... L_{i-1}^new · ΔL_i · L_{i+1}^old ... L_n^old

where ``ΔL_i`` is +1 on rows the event set adds to ``L_i``'s satisfaction
and -1 on rows it removes (polarities flip for negative literals), and the
prefix/suffix literals are evaluated in the new/old state respectively.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, Mapping, Sequence

from repro.datalog.builtins import evaluate_builtin, is_builtin
from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import SafetyError, StratificationError
from repro.datalog.evaluation import BottomUpEvaluator
from repro.datalog.rules import Literal, Rule
from repro.datalog.stratify import dependency_graph
from repro.datalog.terms import Constant
from repro.datalog.unification import Substitution, match_tuple, resolve
from repro.events.event_rules import EventCompiler, TransitionProgram
from repro.events.events import Transaction
from repro.events.naming import del_name, ins_name
from repro.interpretations.upward import UpwardResult, _event_rows

Row = tuple[Constant, ...]


class _StateView:
    """Old or new state of base facts and (set-semantics) derived tuples."""

    def __init__(self, db: DeductiveDatabase, derived: Mapping[str, set[Row]],
                 events: Mapping[str, set[Row]] | None):
        self._db = db
        self._derived = derived
        self._events = events  # None = old state; events applied = new state

    def rows(self, predicate: str) -> frozenset[Row]:
        if predicate in self._derived:
            return frozenset(self._derived[predicate])
        base = set(self._db.facts_of(predicate))
        if self._events is not None:
            base |= self._events.get(ins_name(predicate), set())
            base -= self._events.get(del_name(predicate), set())
        return frozenset(base)

    def holds(self, predicate: str, row: Row) -> bool:
        return row in self.rows(predicate)


class CountingEngine:
    """Stateful counting-based maintenance over one database.

    The engine owns derivation counts for every derived predicate; call
    :meth:`apply` with each transaction *before* (or after -- the engine
    applies it to its own view) committing it to the database through
    :meth:`apply`, which both returns the induced events and advances the
    internal state.  Recursive programs are rejected (counting is defined
    for non-recursive views).
    """

    def __init__(self, db: DeductiveDatabase,
                 program: TransitionProgram | None = None):
        self._db = db
        self._program = program or EventCompiler(simplify=True).compile(db)
        self._order = self._topological_derived()
        self._rules_of: dict[str, list[Rule]] = {}
        for rule in self._program.source_rules:
            self._rules_of.setdefault(rule.head.predicate, []).append(rule)
        self._counts: dict[str, Counter] = {}
        self._extensions: dict[str, set[Row]] = {}
        self._initialize_counts()

    # -- setup -------------------------------------------------------------------

    def _topological_derived(self) -> list[str]:
        graph = dependency_graph(self._program.source_rules)
        components = graph.strongly_connected_components()
        order: list[str] = []
        for component in reversed(components):
            for predicate in component:
                if predicate not in self._program.derived:
                    continue
                recursive = len(component) > 1 or graph.has_edge(predicate,
                                                                 predicate)
                if recursive:
                    raise StratificationError(
                        f"counting-based maintenance requires non-recursive "
                        f"views; {predicate} is recursive"
                    )
                order.append(predicate)
        return order

    def _initialize_counts(self) -> None:
        evaluator = BottomUpEvaluator(self._db, self._program.source_rules)
        evaluator.materialize()
        old_view = _StateView(self._db, self._extensions, None)
        for predicate in self._order:
            counter: Counter = Counter()
            for rule in self._rules_of.get(predicate, ()):
                for bindings in self._join(list(rule.body), {}, old_view):
                    row = tuple(resolve(t, bindings) for t in rule.head.args)
                    counter[row] += 1
            self._counts[predicate] = counter
            self._extensions[predicate] = {r for r, c in counter.items() if c > 0}
            # Sanity: counting supports exactly the computed extension.
            assert frozenset(self._extensions[predicate]) == \
                evaluator.extension(predicate)

    # -- public API -----------------------------------------------------------------

    def extension(self, predicate: str) -> frozenset[Row]:
        """Current (maintained) extension of a derived predicate."""
        return frozenset(self._extensions.get(predicate, frozenset()))

    def count(self, predicate: str, row: Row) -> int:
        """Current derivation count of one derived tuple."""
        return self._counts.get(predicate, Counter()).get(row, 0)

    def apply(self, transaction: Transaction) -> UpwardResult:
        """Induced events of *transaction*; advances counts and the database.

        The transaction is applied to the underlying database as part of
        the call (the counts and the stored facts must move together).
        """
        transaction.check_base_only(self._db)
        transaction = transaction.normalized(self._db)
        events = _event_rows(transaction)
        old_view = _StateView(self._db, self._extensions, None)
        new_view = _StateView(self._db, {}, events)  # derived filled below
        insertions: dict[str, frozenset[Row]] = {}
        deletions: dict[str, frozenset[Row]] = {}
        new_extensions: dict[str, set[Row]] = {}
        new_view._derived = new_extensions

        for predicate in self._order:
            delta: Counter = Counter()
            for rule in self._rules_of.get(predicate, ()):
                self._rule_delta(rule, events, old_view, new_view, delta)
            counter = self._counts[predicate]
            gained: set[Row] = set()
            lost: set[Row] = set()
            for row, change in delta.items():
                if not change:
                    continue
                before = counter.get(row, 0)
                after = before + change
                if after < 0:
                    raise SafetyError(
                        f"counting invariant violated for {predicate}{row}: "
                        f"{before} + {change}"
                    )
                counter[row] = after
                if before == 0 and after > 0:
                    gained.add(row)
                elif before > 0 and after == 0:
                    lost.add(row)
                    del counter[row]
            if gained:
                insertions[predicate] = frozenset(gained)
                events[ins_name(predicate)] = set(gained)
            if lost:
                deletions[predicate] = frozenset(lost)
                events[del_name(predicate)] = set(lost)
            new_extensions[predicate] = (set(self._extensions[predicate])
                                         | gained) - lost

        # Commit: base facts and cached extensions move together.
        for event in transaction:
            if event.is_insertion:
                self._db.add_fact(event.predicate, *event.args)
            else:
                self._db.remove_fact(event.predicate, *event.args)
        self._extensions.update(new_extensions)
        return UpwardResult(insertions, deletions, transaction,
                            covered=frozenset(self._order))

    # -- delta computation ---------------------------------------------------------------

    def _rule_delta(self, rule: Rule, events: Mapping[str, set[Row]],
                    old_view: _StateView, new_view: _StateView,
                    delta: Counter) -> None:
        body = list(rule.body)
        for index, literal in enumerate(body):
            if is_builtin(literal.predicate):
                continue  # rigid: never a delta position
            for row, sign in self._signed_delta(literal, events):
                bindings = match_tuple(
                    tuple(literal.args), row, {})
                if bindings is None:
                    continue
                prefix = body[:index]
                suffix = body[index + 1:]
                for final in self._join_mixed(prefix, suffix, dict(bindings),
                                              new_view, old_view):
                    head_row = tuple(resolve(t, final) for t in rule.head.args)
                    delta[head_row] += sign

    def _signed_delta(self, literal: Literal,
                      events: Mapping[str, set[Row]]) -> Iterator[tuple[Row, int]]:
        """Rows where the literal's satisfaction changed, with signs."""
        ins_rows = events.get(ins_name(literal.predicate), ())
        del_rows = events.get(del_name(literal.predicate), ())
        if literal.positive:
            for row in ins_rows:
                yield row, +1
            for row in del_rows:
                yield row, -1
        else:
            for row in del_rows:
                yield row, +1
            for row in ins_rows:
                yield row, -1

    def _join_mixed(self, prefix: Sequence[Literal], suffix: Sequence[Literal],
                    bindings: Substitution, new_view: _StateView,
                    old_view: _StateView) -> Iterator[Substitution]:
        """Join prefix literals in the new state, suffix in the old."""
        tagged = [(lit, new_view) for lit in prefix] + \
                 [(lit, old_view) for lit in suffix]
        yield from self._join_tagged(tagged, dict(bindings))

    def _join(self, body: Sequence[Literal], bindings: Substitution,
              view: _StateView) -> Iterator[Substitution]:
        yield from self._join_tagged([(lit, view) for lit in body],
                                     dict(bindings))

    def _join_tagged(self, pending: list, subst: dict) -> Iterator[Substitution]:
        if not pending:
            yield subst
            return
        # Pick: ground first, else first positive non-builtin.
        choice = None
        for index, (literal, _) in enumerate(pending):
            if all(isinstance(resolve(t, subst), Constant)
                   for t in literal.args):
                choice = index
                break
        if choice is None:
            for index, (literal, _) in enumerate(pending):
                if literal.positive and not is_builtin(literal.predicate):
                    choice = index
                    break
        if choice is None:
            unresolved = " & ".join(str(lit) for lit, _ in pending)
            raise SafetyError(f"cannot evaluate: {unresolved}")
        literal, view = pending[choice]
        rest = pending[:choice] + pending[choice + 1:]
        pattern = tuple(resolve(t, subst) for t in literal.args)
        if is_builtin(literal.predicate):
            if evaluate_builtin(literal.predicate, pattern) == literal.positive:
                yield from self._join_tagged(rest, subst)
            return
        if literal.positive:
            for row in view.rows(literal.predicate):
                extended = match_tuple(pattern, row, subst)
                if extended is not None:
                    yield from self._join_tagged(rest, dict(extended))
        else:
            if pattern not in view.rows(literal.predicate):
                yield from self._join_tagged(rest, subst)
