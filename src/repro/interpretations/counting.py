"""Counting-based change computation (the [GMS93] method the paper cites).

A third executable strategy for the upward interpretation, applicable to
non-recursive views: store, per derived tuple, the **number of
derivations** supporting it.  A transaction contributes a *signed* delta of
derivation counts per rule; induced events are exactly the zero-crossings
(count 0 → positive: ``ιP``; positive → 0: ``δP``).  Deletions therefore
need no re-derivability query, at the price of keeping the counts across
transactions -- the classic space/time trade-off against the DRed-style
hybrid strategy, measured by the SYN8 benchmark.

Each stratified rule ``P(t) ← L1 ∧ ... ∧ Ln`` is compiled **once, at
schema time**, into one :class:`DeltaRule` per non-builtin body position
``i``, carrying the standard telescoping decomposition

    Δ(L1...Ln) = Σ_i  L1^new ... L_{i-1}^new · ΔL_i · L_{i+1}^old ... L_n^old

where ``ΔL_i`` is +1 on rows the event set adds to ``L_i``'s satisfaction
and -1 on rows it removes (polarities flip for negative literals), and the
prefix/suffix literals are evaluated in the new/old state respectively.
Applying a transaction then only touches delta rules whose delta literal
has events, so maintenance cost is proportional to |delta|, not |EDB|.

Stratified negation is supported exactly: a negative literal contributes
set-semantics satisfaction changes with flipped polarity, which is the
[GMS93] semantics for non-recursive programs.  Should a derivation count
ever go negative -- the counting invariant is breached, e.g. because the
underlying database was mutated behind the engine's back -- predicates
whose rules negate *derived* predicates (the negation boundary) are healed
with a DRed-style full rederivation (:attr:`CountingEngine.rederive_count`
observes this); elsewhere the breach raises :class:`SafetyError`.
Recursive programs raise the typed :class:`CountingUnsupportedError`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from repro.datalog.builtins import evaluate_builtin, is_builtin
from repro.datalog.compile_plan import order_body
from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import SafetyError, StratificationError
from repro.datalog.rules import Literal, Rule
from repro.datalog.stratify import dependency_graph
from repro.datalog.terms import Constant
from repro.datalog.unification import Substitution, match_tuple, resolve
from repro.events.event_rules import EventCompiler, TransitionProgram
from repro.events.events import Transaction
from repro.events.naming import del_name, ins_name
from repro.interpretations.upward import UpwardResult, _event_rows

Row = tuple[Constant, ...]

#: Staged-change kinds (see :meth:`CountingEngine.delta`).
_DELTA = "delta"
_REPLACE = "replace"

#: predicate -> (kind, counter): either a signed count delta to add, or a
#: full replacement counter from a rederivation.
StagedCounts = dict[str, tuple[str, Counter]]


class CountingUnsupportedError(StratificationError):
    """The program is outside counting's scope (recursive views).

    Counting-based maintenance is defined for non-recursive stratified
    programs; recursive views need the DRed delete-rederive algorithm
    proper.  Subclasses :class:`StratificationError` so existing callers
    (and the wire error mapping) keep treating it as a stratification
    problem.
    """


@dataclass(frozen=True)
class DeltaRule:
    """One telescoping term of one source rule, compiled at schema time.

    ``literal`` is the delta position; ``prefix`` literals are evaluated
    in the **new** state, ``suffix`` literals in the **old** state.
    ``order`` is the static join order over the concatenated
    prefix+suffix, chosen once by the shared planner
    (:func:`repro.datalog.compile_plan.order_body`) with the delta
    literal's variables as the bound seed -- execution follows it instead
    of re-scoring every pending literal at every join step.
    """

    head: Literal
    literal: Literal
    prefix: tuple[Literal, ...]
    suffix: tuple[Literal, ...]
    order: tuple[int, ...] = field(default=(), compare=False)


class _AdjustedSet:
    """A set plus a pending (gained, lost) overlay, without copying."""

    __slots__ = ("_base", "_gained", "_lost")

    def __init__(self, base: set[Row], gained: set[Row], lost: set[Row]):
        self._base = base
        self._gained = gained
        self._lost = lost

    def __contains__(self, row: Row) -> bool:
        if row in self._gained:
            return True
        return row in self._base and row not in self._lost

    def __iter__(self) -> Iterator[Row]:
        for row in self._base:
            if row not in self._lost:
                yield row
        yield from self._gained


class _StateView:
    """Old or new state of base facts and (set-semantics) derived tuples.

    Base predicates resolve through the database's column indexes (plus
    the transaction's event overlay for the new state); derived
    predicates resolve through the extension containers handed in --
    plain sets for the old state, :class:`_AdjustedSet` overlays for the
    new.  Nothing is copied per call.
    """

    __slots__ = ("_db", "_derived", "_events")

    def __init__(self, db: DeductiveDatabase, derived: Mapping[str, object],
                 events: Mapping[str, set[Row]] | None):
        self._db = db
        self._derived = derived
        self._events = events  # None = old state; events applied = new state

    def holds(self, predicate: str, row: Row) -> bool:
        derived = self._derived.get(predicate)
        if derived is not None:
            return row in derived
        if self._events is not None:
            if row in self._events.get(del_name(predicate), ()):
                return False
            if row in self._events.get(ins_name(predicate), ()):
                return True
        return self._db.has_fact(predicate, *row)

    def lookup(self, predicate: str, pattern: Sequence) -> Iterator[Row]:
        derived = self._derived.get(predicate)
        if derived is not None:
            bound = [(i, t) for i, t in enumerate(pattern)
                     if isinstance(t, Constant)]
            for row in derived:
                if all(row[i] == t for i, t in bound):
                    yield row
            return
        if self._events is None:
            yield from self._db.lookup(predicate, pattern)
            return
        del_rows = self._events.get(del_name(predicate), ())
        for row in self._db.lookup(predicate, pattern):
            if row not in del_rows:
                yield row
        # Normalised transactions only insert absent rows, so no dedup.
        bound = [(i, t) for i, t in enumerate(pattern)
                 if isinstance(t, Constant)]
        for row in self._events.get(ins_name(predicate), ()):
            if all(row[i] == t for i, t in bound):
                yield row

    def rows(self, predicate: str) -> frozenset[Row]:
        return frozenset(self.lookup(predicate, ()))


class CountingEngine:
    """Stateful counting-based maintenance over one database.

    The engine owns derivation counts for every derived predicate.  The
    one-shot :meth:`apply` computes the induced events of a transaction,
    applies it to the database and advances the counts in a single call.
    The two-phase form separates those steps: :meth:`delta` computes the
    induced events and a staged count change *without* touching any
    state, then -- after the caller has applied the base events to the
    database -- :meth:`advance` folds the staged change into the counts.
    That split is what lets a serving engine run the integrity check on
    the delta, decide, and only then commit facts and counts together.

    Recursive programs are rejected with the typed
    :class:`CountingUnsupportedError` (counting is defined for
    non-recursive views).
    """

    def __init__(self, db: DeductiveDatabase,
                 program: TransitionProgram | None = None,
                 on_rederive: Callable[[str], None] | None = None):
        self._db = db
        self._program = program or EventCompiler(simplify=True).compile(db)
        self._order = self._topological_derived()
        self._rules_of: dict[str, list[Rule]] = {}
        for rule in self._program.source_rules:
            self._rules_of.setdefault(rule.head.predicate, []).append(rule)
        self._counts: dict[str, Counter] = {}
        self._extensions: dict[str, set[Row]] = {}
        self._body_orders: dict[Rule, tuple[int, ...]] = {}
        self._delta_rules = self._compile_delta_rules()
        self._negation_boundary = frozenset(
            rule.head.predicate
            for rule in self._program.source_rules
            for literal in rule.body
            if not literal.positive
            and literal.predicate in self._program.derived)
        #: Number of DRed-style full rederivations performed so far.
        self.rederive_count = 0
        self.on_rederive = on_rederive
        self._initialize_counts()

    # -- setup -----------------------------------------------------------------

    def _topological_derived(self) -> list[str]:
        graph = dependency_graph(self._program.source_rules)
        components = graph.strongly_connected_components()
        order: list[str] = []
        for component in reversed(components):
            for predicate in component:
                if predicate not in self._program.derived:
                    continue
                recursive = len(component) > 1 or graph.has_edge(predicate,
                                                                 predicate)
                if recursive:
                    raise CountingUnsupportedError(
                        f"counting-based maintenance requires non-recursive "
                        f"views; {predicate} is recursive"
                    )
                order.append(predicate)
        return order

    def _compile_delta_rules(self) -> dict[str, list[DeltaRule]]:
        compiled: dict[str, list[DeltaRule]] = {}
        for rule in self._program.source_rules:
            body = list(rule.body)
            for index, literal in enumerate(body):
                if is_builtin(literal.predicate):
                    continue  # rigid: never a delta position
                prefix = tuple(body[:index])
                suffix = tuple(body[index + 1:])
                compiled.setdefault(rule.head.predicate, []).append(DeltaRule(
                    head=rule.head,
                    literal=literal,
                    prefix=prefix,
                    suffix=suffix,
                    order=order_body(prefix + suffix,
                                     bound=literal.variables(),
                                     size_of=self._size_of),
                ))
        return compiled

    def _size_of(self, predicate: str) -> int:
        """Extension-size estimate for the planner's join-order tie-breaks."""
        if predicate in self._program.derived:
            return len(self._extensions.get(predicate, ()))
        return self._db.count_of(predicate)

    def _order_for(self, rule: Rule) -> tuple[int, ...]:
        order = self._body_orders.get(rule)
        if order is None:
            order = order_body(rule.body, size_of=self._size_of)
            self._body_orders[rule] = order
        return order

    def _initialize_counts(self) -> None:
        old_view = _StateView(self._db, self._extensions, None)
        for predicate in self._order:
            self._counts[predicate] = counter = self._derive_counts(
                predicate, old_view)
            self._extensions[predicate] = {r for r, c in counter.items()
                                           if c > 0}

    def _derive_counts(self, predicate: str, view: _StateView) -> Counter:
        """Derivation counts of *predicate* computed from scratch in *view*."""
        counter: Counter = Counter()
        for rule in self._rules_of.get(predicate, ()):
            pairs = [(rule.body[i], view) for i in self._order_for(rule)]
            for bindings in self._run_ordered(pairs, {}):
                row = tuple(resolve(t, bindings) for t in rule.head.args)
                counter[row] += 1
        return counter

    # -- public API ------------------------------------------------------------

    @property
    def order(self) -> tuple[str, ...]:
        """Derived predicates in dependency (stratification) order."""
        return tuple(self._order)

    @property
    def n_delta_rules(self) -> int:
        """Number of compiled delta rules (telescoping terms)."""
        return sum(len(rules) for rules in self._delta_rules.values())

    @property
    def negation_boundary(self) -> frozenset[str]:
        """Predicates whose rules negate derived predicates."""
        return self._negation_boundary

    def extension(self, predicate: str) -> frozenset[Row]:
        """Current (maintained) extension of a derived predicate."""
        return frozenset(self._extensions.get(predicate, frozenset()))

    def count(self, predicate: str, row: Row) -> int:
        """Current derivation count of one derived tuple."""
        return self._counts.get(predicate, Counter()).get(row, 0)

    def delta(self, transaction: Transaction) -> tuple[UpwardResult,
                                                       StagedCounts]:
        """Induced events of *transaction*, without changing any state.

        Returns the full-coverage :class:`UpwardResult` plus the staged
        count changes to hand to :meth:`advance` once the transaction
        has actually been applied to the database.  The computation only
        walks delta rules whose delta literal has events, so cost is
        proportional to the transaction and its consequences.
        """
        transaction.check_base_only(self._db)
        transaction = transaction.normalized(self._db)
        events = _event_rows(transaction)
        old_view = _StateView(self._db, self._extensions, None)
        new_derived: dict[str, _AdjustedSet] = {}
        new_view = _StateView(self._db, new_derived, events)
        insertions: dict[str, frozenset[Row]] = {}
        deletions: dict[str, frozenset[Row]] = {}
        staged: StagedCounts = {}

        for predicate in self._order:
            delta_counter: Counter = Counter()
            for delta_rule in self._delta_rules.get(predicate, ()):
                self._apply_delta_rule(delta_rule, events, old_view, new_view,
                                       delta_counter)
            counter = self._counts[predicate]
            gained: set[Row] = set()
            lost: set[Row] = set()
            replacement: Counter | None = None
            for row, change in delta_counter.items():
                if not change:
                    continue
                before = counter.get(row, 0)
                after = before + change
                if after < 0:
                    # Invariant breach: counts are stale (e.g. the
                    # database was mutated behind the engine's back).
                    if predicate not in self._negation_boundary:
                        raise SafetyError(
                            f"counting invariant violated for "
                            f"{predicate}{row}: {before} + {change}"
                        )
                    replacement = self._rederive(predicate, new_view)
                    break
                if before == 0 and after > 0:
                    gained.add(row)
                elif before > 0 and after == 0:
                    lost.add(row)
            if replacement is not None:
                new_ext = {r for r, c in replacement.items() if c > 0}
                old_ext = self._extensions[predicate]
                gained = new_ext - old_ext
                lost = old_ext - new_ext
                staged[predicate] = (_REPLACE, replacement)
            elif delta_counter:
                staged[predicate] = (_DELTA, delta_counter)
            if gained:
                insertions[predicate] = frozenset(gained)
                events[ins_name(predicate)] = gained
            if lost:
                deletions[predicate] = frozenset(lost)
                events[del_name(predicate)] = lost
            new_derived[predicate] = _AdjustedSet(
                self._extensions[predicate], gained, lost)

        result = UpwardResult(insertions, deletions, transaction,
                              covered=frozenset(self._order))
        return result, staged

    def advance(self, staged: StagedCounts) -> None:
        """Fold a staged count change from :meth:`delta` into the counts.

        Call *after* the transaction's base events have been applied to
        the database: facts and counts must move together.  Cost is
        proportional to the number of changed (predicate, row) pairs.
        """
        for predicate, (kind, counter) in staged.items():
            if kind == _REPLACE:
                self._counts[predicate] = counter
                self._extensions[predicate] = {r for r, c in counter.items()
                                               if c > 0}
                continue
            counts = self._counts[predicate]
            extension = self._extensions[predicate]
            for row, change in counter.items():
                if not change:
                    continue
                after = counts.get(row, 0) + change
                if after < 0:
                    raise SafetyError(
                        f"stale staged delta for {predicate}{row}: "
                        f"advance() must consume the delta() of the same "
                        f"state")
                if after == 0:
                    del counts[row]
                    extension.discard(row)
                else:
                    counts[row] = after
                    extension.add(row)

    def apply(self, transaction: Transaction) -> UpwardResult:
        """Induced events of *transaction*; advances counts and the database.

        The transaction is applied to the underlying database as part of
        the call (the counts and the stored facts must move together).
        """
        result, staged = self.delta(transaction)
        for event in result.transaction:
            if event.is_insertion:
                self._db.add_fact(event.predicate, *event.args)
            else:
                self._db.remove_fact(event.predicate, *event.args)
        self.advance(staged)
        return result

    # -- delta computation -----------------------------------------------------

    def _apply_delta_rule(self, delta_rule: DeltaRule,
                          events: Mapping[str, set[Row]],
                          old_view: _StateView, new_view: _StateView,
                          delta: Counter) -> None:
        tagged = ([(lit, new_view) for lit in delta_rule.prefix]
                  + [(lit, old_view) for lit in delta_rule.suffix])
        # Execution follows the static order chosen at schema time.
        pairs = [tagged[i] for i in delta_rule.order]
        for row, sign in self._signed_delta(delta_rule.literal, events):
            bindings = match_tuple(tuple(delta_rule.literal.args), row, {})
            if bindings is None:
                continue
            for final in self._run_ordered(pairs, dict(bindings)):
                head_row = tuple(resolve(t, final)
                                 for t in delta_rule.head.args)
                delta[head_row] += sign

    def _signed_delta(self, literal: Literal,
                      events: Mapping[str, set[Row]]) \
            -> Iterator[tuple[Row, int]]:
        """Rows where the literal's satisfaction changed, with signs."""
        ins_rows = events.get(ins_name(literal.predicate), ())
        del_rows = events.get(del_name(literal.predicate), ())
        if literal.positive:
            for row in ins_rows:
                yield row, +1
            for row in del_rows:
                yield row, -1
        else:
            for row in del_rows:
                yield row, +1
            for row in ins_rows:
                yield row, -1

    def _rederive(self, predicate: str, new_view: _StateView) -> Counter:
        """DRed-style heal: recount *predicate* from scratch in the new state.

        Only reached across negation boundaries when the incremental
        count invariant is breached; everything the predicate depends on
        is already final in ``new_view`` (topological order).
        """
        self.rederive_count += 1
        if self.on_rederive is not None:
            self.on_rederive(predicate)
        return self._derive_counts(predicate, new_view)

    # -- joins -----------------------------------------------------------------

    def _run_ordered(self, pairs: Sequence[tuple[Literal, _StateView]],
                     subst: dict) -> Iterator[Substitution]:
        """Execute a conjunction in the planner's fixed order.

        The static order guarantees negative and built-in literals are
        ground when reached, so each step is either a constant-time test
        or an indexed scan of the most-bound positive literal -- no
        per-step re-scoring of the pending tail.
        """
        if not pairs:
            yield subst
            return
        literal, view = pairs[0]
        rest = pairs[1:]
        pattern = tuple(resolve(t, subst) for t in literal.args)
        if all(isinstance(t, Constant) for t in pattern):
            if is_builtin(literal.predicate):
                satisfied = evaluate_builtin(literal.predicate, pattern)
            else:
                satisfied = view.holds(literal.predicate, pattern)
            if satisfied == literal.positive:
                yield from self._run_ordered(rest, subst)
            return
        if not literal.positive or is_builtin(literal.predicate):
            # order_body never emits a non-groundable test literal.
            raise SafetyError(f"cannot evaluate: {literal}")
        for row in view.lookup(literal.predicate, pattern):
            extended = match_tuple(pattern, row, subst)
            if extended is not None:
                yield from self._run_ordered(rest, dict(extended))
