"""The two interpretations of the event rules (Section 4 of the paper).

- :mod:`repro.interpretations.upward` -- the upward interpretation (§4.1):
  changes on derived predicates induced by a transaction of base events;
- :mod:`repro.interpretations.naive` -- the semantic oracle: materialise the
  old and the new state and diff them (definitions (1)/(2) directly);
- :mod:`repro.interpretations.counting` -- counting-based change
  computation ([GMS93]) for non-recursive views;
- :mod:`repro.interpretations.maintainers` -- the :class:`StateMaintainer`
  strategies (invalidate / advance / counting) serving engines select by
  :class:`CacheMode` to keep derived state warm across commits;
- :mod:`repro.interpretations.downward` -- the downward interpretation
  (§4.2): candidate transactions of base events that satisfy requested
  changes on derived predicates.
"""

from repro.interpretations.upward import (
    UpwardInterpreter,
    UpwardOptions,
    UpwardResult,
)
from repro.interpretations.counting import (
    CountingEngine,
    CountingUnsupportedError,
    DeltaRule,
)
from repro.interpretations.maintainers import (
    MAINTAINERS,
    AdvancingMaintainer,
    CacheMode,
    CountingMaintainer,
    InvalidatingMaintainer,
    StateMaintainer,
    create_maintainer,
)
from repro.interpretations.explanation import explain_event
from repro.interpretations.naive import naive_changes
from repro.interpretations.downward import (
    DownwardInterpreter,
    DownwardOptions,
    DownwardResult,
    Translation,
    forbid_delete,
    forbid_insert,
    want_delete,
    want_insert,
)

__all__ = [
    "AdvancingMaintainer",
    "CacheMode",
    "CountingEngine",
    "CountingMaintainer",
    "CountingUnsupportedError",
    "DeltaRule",
    "DownwardInterpreter",
    "DownwardOptions",
    "DownwardResult",
    "InvalidatingMaintainer",
    "MAINTAINERS",
    "StateMaintainer",
    "Translation",
    "UpwardInterpreter",
    "UpwardOptions",
    "UpwardResult",
    "create_maintainer",
    "explain_event",
    "forbid_delete",
    "forbid_insert",
    "naive_changes",
    "want_delete",
    "want_insert",
]
