"""State maintainers: one name per strategy for keeping derived state warm.

The serving engine used to hard-code ``if cache_mode == ...`` branches for
its two cache strategies.  This module turns the strategy into a first-class
object: a :class:`StateMaintainer` owns the derived state of one
:class:`~repro.core.processor.UpdateProcessor` and exposes a uniform
protocol --

- :meth:`StateMaintainer.bootstrap` -- materialise whatever standing state
  the strategy needs (counts, cached extensions); optional for the lazy
  strategies;
- :meth:`StateMaintainer.apply` -- one-shot library entry point: compute the
  full-coverage :class:`~repro.interpretations.upward.UpwardResult` of a
  transaction, apply its base events to the database and advance the
  maintained state;
- :meth:`StateMaintainer.extension` -- the current extension of a derived
  predicate as maintained by this strategy;
- :meth:`StateMaintainer.reset` -- drop all maintained state (it rebuilds on
  next use).

For the serving engine's staged commit protocol (check first, decide, then
apply facts and caches together) the base class adds the finer-grained hooks
:meth:`check` / :meth:`check_full` / :meth:`interpret` / :meth:`advance`;
the default implementations express the conservative strategy (check
through the processor, re-derive from scratch next time).

Implementations register themselves by name in :data:`MAINTAINERS` via
``__init_subclass__``; :func:`create_maintainer` is the registry lookup the
engine uses, and :class:`CacheMode` is the typed spelling of those names
(legacy lowercase strings remain accepted).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum
from typing import TYPE_CHECKING, Callable, ClassVar

from repro.datalog.database import GLOBAL_IC, DeductiveDatabase
from repro.datalog.errors import DatalogError
from repro.events.events import Transaction
from repro.interpretations.counting import CountingEngine
from repro.interpretations.upward import UpwardResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.processor import UpdateProcessor
    from repro.problems.ic_checking import ICCheckResult


class CacheMode(str, Enum):
    """How a serving engine keeps derived state warm across commits.

    The values are the wire/CLI spellings; the legacy lowercase strings
    ``"advance"`` and ``"invalidate"`` (and ``"counting"``) are accepted
    anywhere a :class:`CacheMode` is, via :meth:`of`.
    """

    #: Re-derive by upward interpretation, then patch cached extensions.
    ADVANCE = "advance"
    #: Drop caches on every write; re-materialise on next use.
    INVALIDATE = "invalidate"
    #: Maintain derivation counts incrementally during the commit.
    COUNTING = "counting"

    @classmethod
    def of(cls, value: "CacheMode | str") -> "CacheMode":
        """Coerce an enum member or legacy string to a :class:`CacheMode`."""
        if isinstance(value, CacheMode):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        known = ", ".join(repr(mode.value) for mode in cls)
        raise ValueError(f"unknown cache_mode: {value!r} (expected one of "
                         f"{known})")

    def __str__(self) -> str:  # json/logs show the wire spelling
        return self.value


#: Registry of maintainer implementations, keyed by CacheMode value.
MAINTAINERS: dict[str, type["StateMaintainer"]] = {}


def create_maintainer(mode: CacheMode | str,
                      processor: "UpdateProcessor") -> "StateMaintainer":
    """Instantiate the registered maintainer for *mode*."""
    return MAINTAINERS[CacheMode.of(mode).value](processor)


class StateMaintainer(ABC):
    """Strategy object owning the derived state of one processor."""

    #: Registry key; subclasses set it to a CacheMode value.
    name: ClassVar[str] = ""

    #: Whether the strategy computes each commit's induced delta on the
    #: fast path (``check_full``/``interpret`` return an UpwardResult).
    #: The change feed (docs/SUBSCRIPTIONS.md) emits those deltas for
    #: free; strategies without them force the feed onto a before/after
    #: diff of the watched predicates, which scales with the database.
    sources_deltas: ClassVar[bool] = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.name:
            MAINTAINERS[cls.name] = cls

    def __init__(self, processor: "UpdateProcessor"):
        self._processor = processor
        #: Observability hook: called with an event kind ("bootstrap",
        #: "rederive", ...) when the strategy does notable work.
        self.on_event: Callable[[str], None] | None = None

    # -- shared plumbing -------------------------------------------------------

    @property
    def processor(self) -> "UpdateProcessor":
        return self._processor

    @property
    def db(self) -> DeductiveDatabase:
        return self._processor.db

    def _event(self, kind: str) -> None:
        if self.on_event is not None:
            self.on_event(kind)

    def _apply_base(self, transaction: Transaction) -> None:
        """Apply a (normalised) transaction's base events to the database."""
        for event in transaction:
            if event.is_insertion:
                self.db.add_fact(event.predicate, *event.args)
            else:
                self.db.remove_fact(event.predicate, *event.args)

    # -- the StateMaintainer protocol ------------------------------------------

    def bootstrap(self, db: DeductiveDatabase | None = None) -> None:
        """Materialise the strategy's standing state.

        Maintainers are bound to their processor's database; *db* exists
        for protocol symmetry and, when given, must be that same object.
        Lazy strategies may treat this as a no-op.
        """
        if db is not None and db is not self.db:
            raise ValueError("a StateMaintainer is bound to its processor's "
                             "database; bootstrap(db) must pass that object")

    @abstractmethod
    def apply(self, transaction: Transaction) -> UpwardResult:
        """Compute induced events, apply the transaction, advance state."""

    def extension(self, predicate: str) -> frozenset:
        """Current extension of a derived predicate."""
        return self._processor.extension(predicate)

    @abstractmethod
    def reset(self) -> None:
        """Drop all maintained state; it rebuilds on next use."""

    # -- engine hooks (staged commit protocol) ---------------------------------

    def check(self, transaction: Transaction) -> "ICCheckResult":
        """Integrity verdict for one transaction against the current state."""
        return self._processor.check(transaction)

    def check_full(self, transaction: Transaction) \
            -> tuple["ICCheckResult", UpwardResult | None]:
        """Verdict plus, when the strategy can, a full-coverage result
        to later hand to :meth:`advance`."""
        return self._processor.check(transaction), None

    def interpret(self, transaction: Transaction) -> UpwardResult | None:
        """Full-coverage induced events for an unchecked commit, or ``None``
        when the strategy has nothing warm to advance."""
        return None

    def advance(self, result: UpwardResult | None) -> None:
        """Advance maintained state across an applied transaction.

        *result* must come from :meth:`check_full` / :meth:`interpret` on
        the state the transaction was applied to; ``None`` (or a stale
        result) degrades to :meth:`reset`.
        """
        self.reset()


class InvalidatingMaintainer(StateMaintainer):
    """Baseline strategy: caches are dropped on every write."""

    name = CacheMode.INVALIDATE.value

    def apply(self, transaction: Transaction) -> UpwardResult:
        result = self._processor.upward(transaction)
        self._apply_base(result.transaction)
        self.reset()
        return result

    def reset(self) -> None:
        self._processor.invalidate_state_caches()


class AdvancingMaintainer(StateMaintainer):
    """Patch warm interpreter caches with the induced events."""

    name = CacheMode.ADVANCE.value
    sources_deltas = True

    def apply(self, transaction: Transaction) -> UpwardResult:
        result = self._processor.upward(transaction)
        self._apply_base(result.transaction)
        self.advance(result)
        return result

    def reset(self) -> None:
        self._processor.invalidate_state_caches()

    def check_full(self, transaction: Transaction) \
            -> tuple["ICCheckResult", UpwardResult | None]:
        return self._processor.check_full(transaction)

    def interpret(self, transaction: Transaction) -> UpwardResult | None:
        if not self._processor.has_warm_state:
            return None
        try:
            return self._processor.upward(transaction)
        except DatalogError:
            return None

    def advance(self, result: UpwardResult | None) -> None:
        if result is None:
            self.reset()
            return
        try:
            self._processor.advance_state_caches(result)
        except ValueError:
            # Partial coverage: fall back to full invalidation.
            self._processor.invalidate_state_caches()


class CountingMaintainer(StateMaintainer):
    """Maintain per-tuple derivation counts during the commit ([GMS93]).

    The counting engine computes induced events from delta rules in time
    proportional to the transaction, keeps the integrity-constraint
    extension standing (so the consistency precondition is O(1)), and
    stages count changes between :meth:`check_full`/:meth:`interpret`
    and :meth:`advance` so facts and counts commit together.
    """

    name = CacheMode.COUNTING.value
    sources_deltas = True

    def __init__(self, processor: "UpdateProcessor"):
        super().__init__(processor)
        self._engine: CountingEngine | None = None
        self._staged: tuple[UpwardResult, dict] | None = None

    @property
    def active(self) -> bool:
        """Whether counts are currently materialised."""
        return self._engine is not None

    def counting_engine(self) -> CountingEngine:
        """The underlying engine, bootstrapping counts on first use."""
        if self._engine is None:
            self._engine = CountingEngine(
                self.db, program=self._processor.program,
                on_rederive=lambda predicate: self._event("rederive"))
            self._event("bootstrap")
        return self._engine

    def bootstrap(self, db: DeductiveDatabase | None = None) -> None:
        super().bootstrap(db)
        self._engine = None
        self._staged = None
        self.counting_engine()

    def apply(self, transaction: Transaction) -> UpwardResult:
        result = self.counting_engine().apply(transaction)
        self._advance_interpreters(result)
        return result

    def extension(self, predicate: str) -> frozenset:
        return self.counting_engine().extension(predicate)

    def reset(self) -> None:
        self._engine = None
        self._staged = None
        self._processor.invalidate_state_caches()

    # -- engine hooks ----------------------------------------------------------

    def _checked_delta(self, transaction: Transaction) \
            -> tuple[UpwardResult, dict]:
        from repro.problems.base import StateError
        engine = self.counting_engine()
        if engine.extension(GLOBAL_IC):
            raise StateError(
                "cannot check a transaction against an inconsistent state: "
                f"{GLOBAL_IC} holds before the update")
        return engine.delta(transaction)

    def _verdict(self, result: UpwardResult) -> "ICCheckResult":
        from repro.problems.ic_checking import ICCheckResult
        constraint_predicates = {rule.head.predicate
                                 for rule in self.db.constraints}
        violations = {
            predicate: rows
            for predicate, rows in result.insertions.items()
            if predicate in constraint_predicates and rows
        }
        return ICCheckResult(ok=not result.insertions_of(GLOBAL_IC),
                             violations=violations,
                             transaction=result.transaction)

    def check(self, transaction: Transaction) -> "ICCheckResult":
        result, _ = self._checked_delta(transaction)
        return self._verdict(result)

    def check_full(self, transaction: Transaction) \
            -> tuple["ICCheckResult", UpwardResult | None]:
        result, staged = self._checked_delta(transaction)
        self._staged = (result, staged)
        return self._verdict(result), result

    def interpret(self, transaction: Transaction) -> UpwardResult | None:
        result, staged = self.counting_engine().delta(transaction)
        self._staged = (result, staged)
        return result

    def advance(self, result: UpwardResult | None) -> None:
        staged = self._staged
        self._staged = None
        if (result is None or staged is None or staged[0] is not result
                or self._engine is None):
            # Stale or missing staging: conservative full reset.
            self.reset()
            return
        self._engine.advance(staged[1])
        self._advance_interpreters(result)

    def _advance_interpreters(self, result: UpwardResult) -> None:
        """Keep any warm read-side interpreter caches moving too."""
        try:
            self._processor.advance_state_caches(result)
        except ValueError:
            self._processor.invalidate_state_caches()


__all__ = [
    "AdvancingMaintainer",
    "CacheMode",
    "CountingMaintainer",
    "InvalidatingMaintainer",
    "MAINTAINERS",
    "StateMaintainer",
    "create_maintainer",
]
