"""Materialized view maintenance (Section 5.1.3).

Given a transaction of base-fact updates, determine which changes keep the
stored extension of a materialized view in sync: the upward interpretation
of ``ιView(x)`` (rows to insert into the materialisation) and ``δView(x)``
(rows to delete).

This module computes the *deltas*; the stateful store that applies them
(and verifies them against recomputation) is
:class:`repro.core.materialized.MaterializedViewStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import UnknownPredicateError
from repro.datalog.terms import Constant
from repro.events.events import Transaction
from repro.interpretations.upward import UpwardInterpreter
from repro.problems.base import (
    Direction,
    PredicateSemantics,
    ProblemSpec,
    register_problem,
)

Row = tuple[Constant, ...]

register_problem(ProblemSpec(
    name="Materialized view maintenance",
    direction=Direction.UPWARD,
    event_form="ιP, δP",
    semantics=PredicateSemantics.VIEW,
    section="5.1.3",
    summary="Which rows must be inserted into / deleted from a materialisation?",
))


@dataclass
class ViewDeltas:
    """Maintenance deltas for a set of materialized views."""

    #: view -> rows to insert into the stored extension.
    to_insert: dict[str, frozenset[Row]] = field(default_factory=dict)
    #: view -> rows to delete from the stored extension.
    to_delete: dict[str, frozenset[Row]] = field(default_factory=dict)
    transaction: Transaction = field(default_factory=Transaction)

    def is_unaffected(self, view: str | None = None) -> bool:
        """Upward interpretation of ``¬ιView`` / ``¬δView``."""
        if view is None:
            return not self.to_insert and not self.to_delete
        return view not in self.to_insert and view not in self.to_delete

    def delta_size(self) -> int:
        """Total number of delta rows across all views."""
        inserted = sum(len(rows) for rows in self.to_insert.values())
        deleted = sum(len(rows) for rows in self.to_delete.values())
        return inserted + deleted


def view_maintenance_deltas(db: DeductiveDatabase, transaction: Transaction,
                            views: Iterable[str],
                            interpreter: UpwardInterpreter | None = None
                            ) -> ViewDeltas:
    """Upward interpretation of ``ιView(x)`` / ``δView(x)`` per view."""
    views = list(views)
    schema = db.schema
    for view in views:
        if not schema.is_derived(view):
            raise UnknownPredicateError(
                f"materialized view {view} is not a derived predicate"
            )
    interpreter = interpreter or UpwardInterpreter(db)
    result = interpreter.interpret(transaction, predicates=views)
    to_insert = {v: result.insertions_of(v) for v in views
                 if result.insertions_of(v)}
    to_delete = {v: result.deletions_of(v) for v in views
                 if result.deletions_of(v)}
    return ViewDeltas(to_insert, to_delete, result.transaction)
