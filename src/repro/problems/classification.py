"""The classification of Table 4.1, generated from the problem registry.

The paper's table crosses the two interpretations (upward / downward) and
the event forms (``ιP``, ``δP``, ``T, ¬ιP``, ``T, ¬δP``) against the three
derived-predicate semantics (View / Ic / Cond).  Here the table is *derived*
from the :class:`~repro.problems.base.ProblemSpec` registry, so the
rendered table is by construction in sync with the implemented problems --
and the T4.1 benchmark asserts it cell-by-cell against the paper.
"""

from __future__ import annotations

from repro.problems.base import (
    Direction,
    PredicateSemantics,
    ProblemSpec,
    problem_registry,
)

#: Row forms, in the paper's order.
UPWARD_FORMS = ("ιP", "δP")
DOWNWARD_FORMS = ("ιP", "δP", "T, ¬ιP", "T, ¬δP")

#: Column order.
SEMANTICS = (PredicateSemantics.VIEW, PredicateSemantics.IC,
             PredicateSemantics.CONDITION)

Cell = tuple[str, ...]
TableKey = tuple[Direction, str, PredicateSemantics]


def _matches_form(spec: ProblemSpec, form: str) -> bool:
    """Does a registered event form cover a table row?

    Registered forms may name several rows ("ιP, δP", "T, ¬ιP / T, ¬δP").
    Negated rows ("T, ¬ιP") are plain substring matches; for the bare rows
    ("ιP", "δP") the negated occurrences are stripped first so that "ιP"
    does not match inside "¬ιP".
    """
    registered = spec.event_form
    if form.startswith("T"):
        return form in registered
    stripped = registered.replace("¬ιP", "").replace("¬δP", "")
    return form in stripped


def classification_table() -> dict[TableKey, Cell]:
    """The full table: (direction, row form, semantics) -> problem names."""
    table: dict[TableKey, list[str]] = {}
    for direction in (Direction.UPWARD, Direction.DOWNWARD):
        forms = UPWARD_FORMS if direction is Direction.UPWARD else DOWNWARD_FORMS
        for form in forms:
            for semantics in SEMANTICS:
                table[(direction, form, semantics)] = []
    for spec in problem_registry():
        forms = UPWARD_FORMS if spec.direction is Direction.UPWARD \
            else DOWNWARD_FORMS
        for form in forms:
            if _matches_form(spec, form):
                table[(spec.direction, form, spec.semantics)].append(spec.name)
    return {key: tuple(names) for key, names in table.items()}


def render_table_4_1(width: int = 30) -> str:
    """Render the classification as the paper's Table 4.1 (plain text)."""
    table = classification_table()

    def cell(direction: Direction, form: str,
             semantics: PredicateSemantics) -> str:
        names = table[(direction, form, semantics)]
        return "; ".join(names) if names else "—"

    header = (f"{'':12} {'':8} {'View':{width}} {'Ic':{width}} "
              f"{'Cond':{width}}")
    lines = [header, "-" * len(header)]
    for direction, forms in ((Direction.UPWARD, UPWARD_FORMS),
                             (Direction.DOWNWARD, DOWNWARD_FORMS)):
        for row_index, form in enumerate(forms):
            tag = direction.value.capitalize() if row_index == 0 else ""
            view = cell(direction, form, PredicateSemantics.VIEW)
            ic = cell(direction, form, PredicateSemantics.IC)
            cond = cell(direction, form, PredicateSemantics.CONDITION)
            lines.append(f"{tag:12} {form:8} {view:{width}} {ic:{width}} {cond:{width}}")
        lines.append("-" * len(header))
    return "\n".join(lines)
