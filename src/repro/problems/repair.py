"""Repairing inconsistent databases (Section 5.2.3).

Given an inconsistent state, obtain sets of base-fact updates restoring
consistency: **the downward interpretation of ``δIc``, provided ``Ico``
holds**.  Each translation is a candidate repair; the database
administrator selects one.

A repair applied to the database may be verified (``verify=True``) by
upward-interpreting it and checking it indeed induces ``δIc`` -- the §5.3
downward-then-upward combination in miniature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.database import GLOBAL_IC, DeductiveDatabase
from repro.interpretations.downward import (
    DownwardInterpreter,
    DownwardResult,
    Translation,
    want_delete,
)
from repro.interpretations.upward import UpwardInterpreter
from repro.problems.base import (
    Direction,
    PredicateSemantics,
    ProblemSpec,
    StateError,
    global_ic_holds,
    register_problem,
)

register_problem(ProblemSpec(
    name="Repairing inconsistent databases",
    direction=Direction.DOWNWARD,
    event_form="δP",
    semantics=PredicateSemantics.IC,
    section="5.2.3",
    summary="Find base-fact updates that restore consistency.",
))


@dataclass
class RepairResult:
    """Candidate repairs of an inconsistent database."""

    downward: DownwardResult
    repairs: tuple[Translation, ...] = ()
    #: Repairs that failed post-hoc verification (only when ``verify=True``).
    unverified: tuple[Translation, ...] = ()

    @property
    def is_repairable(self) -> bool:
        """True when at least one repair exists."""
        return bool(self.repairs)

    def to_dict(self) -> dict:
        """A JSON-ready representation (the ``repair`` wire shape)."""
        return {
            "repairable": self.is_repairable,
            "repairs": [t.to_dict() for t in self.repairs],
            "unverified": [t.to_dict() for t in self.unverified],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RepairResult":
        """Inverse of :meth:`to_dict` (the downward DNF is reconstructed)."""
        repairs = tuple(Translation.from_dict(item)
                        for item in payload.get("repairs", []))
        unverified = tuple(Translation.from_dict(item)
                           for item in payload.get("unverified", []))
        downward = DownwardResult.from_dict({
            "satisfiable": bool(repairs or unverified),
            "translations": [t.to_dict() for t in repairs + unverified],
        })
        return cls(downward, repairs, unverified)

    def __str__(self) -> str:
        if not self.repairs:
            return "no repair found"
        return "; ".join(str(t) for t in self.repairs)


def repair_database(db: DeductiveDatabase,
                    verify: bool = False,
                    interpreter: DownwardInterpreter | None = None
                    ) -> RepairResult:
    """Downward interpretation of ``δIc`` on an inconsistent database."""
    if not global_ic_holds(db):
        raise StateError(
            "repair requires an inconsistent database (Ic must hold); "
            "this database already satisfies every constraint."
        )
    interpreter = interpreter or DownwardInterpreter(db)
    downward = interpreter.interpret(want_delete(GLOBAL_IC))
    repairs = downward.translations
    unverified: tuple[Translation, ...] = ()
    if verify:
        upward = UpwardInterpreter(db, program=interpreter.program)
        verified: list[Translation] = []
        failed: list[Translation] = []
        for translation in repairs:
            induced = upward.interpret(translation.transaction,
                                       predicates=[GLOBAL_IC])
            if induced.deletions_of(GLOBAL_IC):
                verified.append(translation)
            else:
                failed.append(translation)
        repairs = tuple(verified)
        unverified = tuple(failed)
    return RepairResult(downward, repairs, unverified)
