"""Shared vocabulary of the problem layer and the problem registry.

The registry is the machine-readable form of Table 4.1: every problem module
registers a :class:`ProblemSpec` describing *which interpretation of which
event form under which predicate semantics* specifies it.  The table
renderer (:mod:`repro.problems.classification`) and the benchmark that
checks the table against the paper both read this registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.datalog.database import GLOBAL_IC, DeductiveDatabase
from repro.datalog.errors import DatalogError
from repro.datalog.evaluation import BottomUpEvaluator


class StateError(DatalogError):
    """Raised when a problem's precondition on the database state fails.

    E.g. integrity checking is specified "provided that ``Ico`` does not
    hold" -- calling it on an inconsistent database raises this.
    """


class Direction(Enum):
    """The two interpretations of Section 4."""

    UPWARD = "upward"
    DOWNWARD = "downward"


class PredicateSemantics(Enum):
    """The concrete semantics a derived predicate may carry (Section 5)."""

    VIEW = "View"
    IC = "Ic"
    CONDITION = "Cond"


@dataclass(frozen=True)
class ProblemSpec:
    """One row of the paper's classification.

    ``event_form`` uses the paper's notation with ``ι``/``δ`` and ``T`` for
    a given transaction, e.g. ``"ιP"`` or ``"T, ¬ιP"``.
    """

    name: str
    direction: Direction
    event_form: str
    semantics: PredicateSemantics
    section: str
    summary: str


_REGISTRY: list[ProblemSpec] = []


def register_problem(spec: ProblemSpec) -> ProblemSpec:
    """Add a spec to the registry (idempotent on duplicates)."""
    if spec not in _REGISTRY:
        _REGISTRY.append(spec)
    return spec


def problem_registry() -> tuple[ProblemSpec, ...]:
    """Every registered problem spec (import order)."""
    # Importing the package registers everything; modules self-register at
    # import time and the package __init__ imports them all.
    return tuple(_REGISTRY)


def global_ic_holds(db: DeductiveDatabase) -> bool:
    """Whether the global inconsistency predicate ``Ic`` holds in *db*."""
    evaluator = BottomUpEvaluator(db, db.rules_with_global_ic())
    return bool(evaluator.extension(GLOBAL_IC))
