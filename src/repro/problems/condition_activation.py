"""Enforcing and preventing condition activation (Sections 5.2.5 and 5.2.6).

Problems the paper identifies as "having received little attention up to
now", yet falling out of the framework for free:

- **Enforcing condition activation**: base-fact updates that would induce a
  given condition to become (de)satisfied -- the downward interpretation of
  ``ιCond(X)`` / ``δCond(X)``.
- **Condition validation**: ∃X with a non-empty downward interpretation
  (tooling for the condition designer).
- **Preventing condition activation**: append updates to a transaction so
  no change on the condition occurs -- the downward interpretation of
  ``{T, ¬ιCond(X)}`` / ``{T, ¬δCond(X)}``.
"""

from __future__ import annotations

from typing import Iterable

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import UnknownPredicateError
from repro.datalog.rules import Atom, Literal
from repro.datalog.terms import Variable
from repro.events.events import Transaction
from repro.events.naming import EventKind, del_name, ins_name
from repro.interpretations.downward import (
    DownwardInterpreter,
    DownwardResult,
    _terms,
    request_of,
)
from repro.problems.base import (
    Direction,
    PredicateSemantics,
    ProblemSpec,
    register_problem,
)
from repro.problems.view_validation import ValidationResult, validate_view

register_problem(ProblemSpec(
    name="Enforcing condition activation",
    direction=Direction.DOWNWARD,
    event_form="ιP / δP",
    semantics=PredicateSemantics.CONDITION,
    section="5.2.5",
    summary="Find base updates that would (de)activate a condition.",
))
register_problem(ProblemSpec(
    name="Condition validation",
    direction=Direction.DOWNWARD,
    event_form="ιP / δP (∃X)",
    semantics=PredicateSemantics.CONDITION,
    section="5.2.5",
    summary="Is the condition activatable at all?",
))
register_problem(ProblemSpec(
    name="Preventing condition activation",
    direction=Direction.DOWNWARD,
    event_form="T, ¬ιP / T, ¬δP",
    semantics=PredicateSemantics.CONDITION,
    section="5.2.6",
    summary="Extend T so no change on the condition occurs.",
))


def _condition_literal(db: DeductiveDatabase, condition: str, kind: EventKind,
                       args: Iterable | None, positive: bool) -> Literal:
    if not db.schema.is_derived(condition):
        raise UnknownPredicateError(f"{condition} is not a derived predicate")
    name = ins_name(condition) if kind is EventKind.INSERTION else del_name(condition)
    if args is None:
        arity = db.schema.arity(condition)
        terms = tuple(Variable(f"x{i + 1}") for i in range(arity))
    else:
        terms = _terms(args)
    return Literal(Atom(name, terms), positive)


def enforce_condition(db: DeductiveDatabase, condition: str,
                      kind: EventKind = EventKind.INSERTION,
                      args: Iterable | None = None,
                      interpreter: DownwardInterpreter | None = None
                      ) -> DownwardResult:
    """Downward interpretation of ``ιCond(X)`` / ``δCond(X)``.

    Omitting ``args`` asks for *some* instantiation (existential): each
    translation activates the condition for at least one ``X``.
    """
    interpreter = interpreter or DownwardInterpreter(db)
    request = _condition_literal(db, condition, kind, args, positive=True)
    return interpreter.interpret(request)


def validate_condition(db: DeductiveDatabase, condition: str,
                       kind: EventKind = EventKind.INSERTION,
                       max_witnesses: int | None = 1,
                       interpreter: DownwardInterpreter | None = None
                       ) -> ValidationResult:
    """∃X: downward interpretation of ``ιCond(X)`` non-empty.

    Identical machinery to view validation -- the framework does not care
    which semantics the derived predicate carries.
    """
    return validate_view(db, condition, kind, max_witnesses, interpreter)


def prevent_condition_activation(db: DeductiveDatabase,
                                 transaction: Transaction,
                                 condition: str,
                                 kind: EventKind = EventKind.INSERTION,
                                 args: Iterable | None = None,
                                 interpreter: DownwardInterpreter | None = None
                                 ) -> DownwardResult:
    """Downward interpretation of ``{T, ¬ιCond(X)}`` / ``{T, ¬δCond(X)}``.

    Omitting ``args`` prevents the activation for **all** values of ``X``.
    """
    interpreter = interpreter or DownwardInterpreter(db)
    forbidden = _condition_literal(db, condition, kind, args, positive=False)
    requests: list = [request_of(e) for e in sorted(transaction.events, key=str)]
    requests.append(forbidden)
    return interpreter.interpret(requests)
