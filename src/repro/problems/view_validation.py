"""View validation (Section 5.2.1, second half).

Given a derived predicate ``View(x)``, obtain at least one ``X`` (ranging
over the finite domain) for which a set of base-fact updates satisfying
``ιView(X)`` (or ``δView(X)``) exists.  "This can be useful for providing
the database designer with a tool for validating certain aspects of the
database definition" -- e.g. whether a state with a non-empty view extension
is reachable at all.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import DomainError, UnknownPredicateError
from repro.datalog.rules import Atom, Literal
from repro.datalog.terms import Constant
from repro.events.naming import EventKind, del_name, ins_name
from repro.interpretations.downward import DownwardInterpreter, Translation
from repro.problems.base import (
    Direction,
    PredicateSemantics,
    ProblemSpec,
    register_problem,
)

Row = tuple[Constant, ...]

register_problem(ProblemSpec(
    name="View validation",
    direction=Direction.DOWNWARD,
    event_form="ιP / δP (∃X)",
    semantics=PredicateSemantics.VIEW,
    section="5.2.1",
    summary="Is there some X whose view change is achievable by base updates?",
))


@dataclass
class ValidationResult:
    """Witnesses found while validating a view or condition definition."""

    predicate: str
    kind: EventKind
    #: witness row -> the translations achieving the change for that row.
    witnesses: dict[Row, tuple[Translation, ...]] = field(default_factory=dict)

    @property
    def is_valid(self) -> bool:
        """At least one achievable instantiation exists."""
        return bool(self.witnesses)

    def first_witness(self) -> Row | None:
        """A deterministic first witness (or None)."""
        if not self.witnesses:
            return None
        return min(self.witnesses, key=str)

    def __str__(self) -> str:
        if not self.is_valid:
            return f"{self.kind.symbol}{self.predicate}: not achievable"
        witness = self.first_witness()
        return (f"{self.kind.symbol}{self.predicate}: achievable, e.g. for "
                f"{tuple(map(str, witness))}")


def validate_view(db: DeductiveDatabase, view: str,
                  kind: EventKind = EventKind.INSERTION,
                  max_witnesses: int | None = 1,
                  interpreter: DownwardInterpreter | None = None
                  ) -> ValidationResult:
    """Find ``X`` with a non-empty downward interpretation of ``ιView(X)``.

    ``max_witnesses`` bounds the search (None = enumerate the whole domain).
    Rows for which the change is *already satisfied* do not count as
    witnesses -- validation asks for a transition, not for the status quo.
    """
    schema = db.schema
    if not schema.is_derived(view):
        raise UnknownPredicateError(f"{view} is not a derived predicate")
    interpreter = interpreter or DownwardInterpreter(db)
    arity = schema.arity(view)
    domain = sorted(interpreter.domain(), key=str)
    if arity and not domain:
        raise DomainError(
            "view validation needs a non-empty domain; add facts or "
            "DownwardOptions.extra_domain"
        )
    name = ins_name(view) if kind is EventKind.INSERTION else del_name(view)
    result = ValidationResult(view, kind)
    for values in itertools.product(domain, repeat=arity):
        request = Literal(Atom(name, values), True)
        outcome = interpreter.interpret(request)
        if outcome.already_satisfied:
            continue  # the paper: validation asks for a transition
        if outcome.translations:
            result.witnesses[values] = outcome.translations
            if max_witnesses is not None and len(result.witnesses) >= max_witnesses:
                break
    return result
