"""View updating (Section 5.2.1).

A request to update a view is translated into updates of the underlying
base facts: **the downward interpretation of ``ιView(X)`` / ``δView(X)``**.
Several translations may exist; the user selects one.

Because translations may violate integrity constraints, the function can
combine view updating with

- *integrity constraint checking* (``check_ic=True``): each candidate
  translation is upward-interpreted and rejected when it induces ``ιIc``;
- *integrity constraint maintenance* (``maintain_ic=True``): ``¬ιIc`` is
  added to the request set so the downward interpretation itself only
  produces consistency-preserving translations (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.datalog.database import GLOBAL_IC, DeductiveDatabase
from repro.datalog.rules import Literal
from repro.events.events import Event
from repro.interpretations.downward import (
    DownwardInterpreter,
    DownwardResult,
    Translation,
    forbid_insert,
)
from repro.interpretations.upward import UpwardInterpreter
from repro.problems.base import (
    Direction,
    PredicateSemantics,
    ProblemSpec,
    register_problem,
)

register_problem(ProblemSpec(
    name="View updating",
    direction=Direction.DOWNWARD,
    event_form="ιP",
    semantics=PredicateSemantics.VIEW,
    section="5.2.1",
    summary="Translate a derived-fact insertion into base-fact updates.",
))
register_problem(ProblemSpec(
    name="View updating (deletion)",
    direction=Direction.DOWNWARD,
    event_form="δP",
    semantics=PredicateSemantics.VIEW,
    section="5.2.1",
    summary="Translate a derived-fact deletion into base-fact updates.",
))


@dataclass
class ViewUpdateResult:
    """Candidate translations of a view update request."""

    downward: DownwardResult
    #: Translations surviving any requested integrity filtering.
    translations: tuple[Translation, ...] = ()
    #: Translations rejected by the integrity check (when ``check_ic``).
    rejected: tuple[Translation, ...] = ()

    @property
    def is_satisfiable(self) -> bool:
        """True when at least one admissible translation exists."""
        return bool(self.translations)

    def transactions(self):
        """Admissible candidate transactions."""
        return tuple(t.transaction for t in self.translations)

    def __str__(self) -> str:
        if not self.translations:
            return "no admissible translation"
        return "; ".join(str(t) for t in self.translations)


def translate_view_update(db: DeductiveDatabase,
                          requests: Iterable[Literal | Event] | Literal | Event,
                          check_ic: bool = False,
                          maintain_ic: bool = False,
                          interpreter: DownwardInterpreter | None = None
                          ) -> ViewUpdateResult:
    """Downward interpretation of a view update request (set).

    ``requests`` may mix ``want_insert``/``want_delete`` literals and ground
    :class:`Event` objects; a general request "consists of a set of
    insertions and/or deletions to be performed on derived predicates".
    """
    if check_ic and maintain_ic:
        raise ValueError("choose either check_ic or maintain_ic, not both")
    interpreter = interpreter or DownwardInterpreter(db)
    if isinstance(requests, (Literal, Event)):
        requests = [requests]
    request_list: list[Literal | Event] = list(requests)
    if maintain_ic:
        if not db.constraints:
            maintain_ic = False
        else:
            request_list.append(forbid_insert(GLOBAL_IC))
    downward = interpreter.interpret(request_list)
    translations = downward.translations
    rejected: tuple[Translation, ...] = ()
    if check_ic and db.constraints:
        upward = UpwardInterpreter(db, program=interpreter.program)
        kept: list[Translation] = []
        dropped: list[Translation] = []
        for translation in translations:
            induced = upward.interpret(translation.transaction,
                                       predicates=[GLOBAL_IC])
            if induced.insertions_of(GLOBAL_IC):
                dropped.append(translation)
            else:
                kept.append(translation)
        translations = tuple(kept)
        rejected = tuple(dropped)
    return ViewUpdateResult(downward, translations, rejected)
