"""Integrity constraint satisfiability (Section 5.2.3, second half).

Two design-time questions about a schema (deductive rules + constraints):

- **IC satisfiability** [BDM88]: is there *any* extensional state
  satisfying every constraint?  Specified as the downward interpretation of
  ``δIc`` provided ``Ico`` holds (when ``Ico`` does not hold the current
  state is itself a witness).
- **Ensuring IC satisfaction**: can the database *ever* become
  inconsistent?  Specified as the downward interpretation of ``ιIc``: each
  resulting translation is a way of turning the database inconsistent; an
  empty result means no reachable state violates a constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.database import GLOBAL_IC, DeductiveDatabase
from repro.interpretations.downward import (
    DownwardInterpreter,
    Translation,
    want_delete,
    want_insert,
)
from repro.problems.base import (
    Direction,
    PredicateSemantics,
    ProblemSpec,
    global_ic_holds,
    register_problem,
)

register_problem(ProblemSpec(
    name="Integrity constraints satisfiability",
    direction=Direction.DOWNWARD,
    event_form="δP",
    semantics=PredicateSemantics.IC,
    section="5.2.3",
    summary="Does some extensional state satisfy all constraints?",
))
register_problem(ProblemSpec(
    name="Ensuring IC satisfaction",
    direction=Direction.DOWNWARD,
    event_form="ιP",
    semantics=PredicateSemantics.IC,
    section="5.2.3",
    summary="Can any transaction make the database inconsistent?",
))


@dataclass
class SatisfiabilityResult:
    """Answer plus the witnessing translations."""

    satisfiable: bool
    #: Witness translations: repairs (satisfiability) or violation recipes
    #: (reachability of inconsistency).
    witnesses: tuple[Translation, ...] = ()
    #: True when the current state already answered the question.
    answered_by_current_state: bool = False

    def __bool__(self) -> bool:
        return self.satisfiable


def constraints_satisfiable(db: DeductiveDatabase,
                            interpreter: DownwardInterpreter | None = None
                            ) -> SatisfiabilityResult:
    """Is some consistent extensional state reachable?

    Consistent current state -> trivially yes.  Otherwise: downward
    interpretation of ``δIc``; satisfiable iff it defines at least one
    transaction.
    """
    if not global_ic_holds(db):
        return SatisfiabilityResult(True, answered_by_current_state=True)
    interpreter = interpreter or DownwardInterpreter(db)
    downward = interpreter.interpret(want_delete(GLOBAL_IC))
    return SatisfiabilityResult(
        satisfiable=bool(downward.translations),
        witnesses=downward.translations,
    )


def can_reach_inconsistency(db: DeductiveDatabase,
                            interpreter: DownwardInterpreter | None = None
                            ) -> SatisfiabilityResult:
    """Downward interpretation of ``ιIc``: ways to violate some constraint.

    ``satisfiable=True`` means an inconsistent state is reachable (the
    designer should inspect the witnesses); on an already-inconsistent
    database the current state is the witness.
    """
    if global_ic_holds(db):
        return SatisfiabilityResult(True, answered_by_current_state=True)
    interpreter = interpreter or DownwardInterpreter(db)
    downward = interpreter.interpret(want_insert(GLOBAL_IC))
    return SatisfiabilityResult(
        satisfiable=bool(downward.translations),
        witnesses=downward.translations,
    )
