"""Condition monitoring (Section 5.1.2).

A condition is a derived predicate with "watch" semantics.  Monitoring the
changes a transaction induces on ``Cond(x)`` is the upward interpretation of
``ιCond(x)`` (newly satisfied) and ``δCond(x)`` (no longer satisfied); the
upward interpretation of ``¬ιCond(x)`` / ``¬δCond(x)`` checks that the
transaction does not affect the condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import UnknownPredicateError
from repro.datalog.terms import Constant
from repro.events.events import Transaction
from repro.interpretations.upward import UpwardInterpreter
from repro.problems.base import (
    Direction,
    PredicateSemantics,
    ProblemSpec,
    register_problem,
)

Row = tuple[Constant, ...]

register_problem(ProblemSpec(
    name="Condition monitoring",
    direction=Direction.UPWARD,
    event_form="ιP, δP",
    semantics=PredicateSemantics.CONDITION,
    section="5.1.2",
    summary="Which condition instances does a transaction (de)activate?",
))


@dataclass
class ConditionChanges:
    """Induced changes on the monitored conditions."""

    #: condition -> rows that newly satisfy it (``ιCond``).
    activated: dict[str, frozenset[Row]] = field(default_factory=dict)
    #: condition -> rows that stop satisfying it (``δCond``).
    deactivated: dict[str, frozenset[Row]] = field(default_factory=dict)
    transaction: Transaction = field(default_factory=Transaction)

    def is_unaffected(self, condition: str | None = None) -> bool:
        """Upward interpretation of ``¬ιCond`` and ``¬δCond``.

        With a condition name: that condition saw no change; without: no
        monitored condition changed.
        """
        if condition is None:
            return not self.activated and not self.deactivated
        return condition not in self.activated and condition not in self.deactivated

    def to_dict(self) -> dict:
        """A JSON-ready representation (the ``monitor`` wire shape)."""
        from repro.serde import rows_to_lists

        return {
            "activated": rows_to_lists(self.activated),
            "deactivated": rows_to_lists(self.deactivated),
            "transaction": self.transaction.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ConditionChanges":
        """Inverse of :meth:`to_dict`."""
        from repro.serde import rows_from_lists

        return cls(
            activated=rows_from_lists(payload.get("activated", {})),
            deactivated=rows_from_lists(payload.get("deactivated", {})),
            transaction=Transaction.from_dict(payload.get("transaction", [])),
        )

    def __str__(self) -> str:
        def render(sign: str, condition: str, row) -> str:
            if not row:
                return f"{sign}{condition}"
            return f"{sign}{condition}({', '.join(str(t) for t in row)})"

        pieces = []
        for condition, rows in sorted(self.activated.items()):
            pieces.extend(render("+", condition, row)
                          for row in sorted(rows, key=str))
        for condition, rows in sorted(self.deactivated.items()):
            pieces.extend(render("-", condition, row)
                          for row in sorted(rows, key=str))
        return "{" + ", ".join(pieces) + "}"


def monitor_conditions(db: DeductiveDatabase, transaction: Transaction,
                       conditions: Iterable[str],
                       interpreter: UpwardInterpreter | None = None
                       ) -> ConditionChanges:
    """Upward interpretation of ``ιCond(x)`` / ``δCond(x)`` per condition."""
    conditions = list(conditions)
    schema = db.schema
    for condition in conditions:
        if not schema.is_derived(condition):
            raise UnknownPredicateError(
                f"monitored condition {condition} is not a derived predicate"
            )
    interpreter = interpreter or UpwardInterpreter(db)
    result = interpreter.interpret(transaction, predicates=conditions)
    activated = {c: result.insertions_of(c) for c in conditions
                 if result.insertions_of(c)}
    deactivated = {c: result.deletions_of(c) for c in conditions
                   if result.deletions_of(c)}
    return ConditionChanges(activated, deactivated, result.transaction)
