"""Combining updating problems (Section 5.3).

Upward problems share their starting point (a transaction) and can be
combined by upward-interpreting one event *set*; downward problems likewise
combine by downward-interpreting one request set.  And because "the result
of the downward interpretation is the same [as] the starting-point of the
upward interpretation", downward and upward problems chain: first translate
requests into candidate transactions, then upward-check each candidate.

The paper's closing example -- view updating combined with *maintained*
constraints (downward) and *checked* constraints (upward) -- is
:func:`downward_then_upward`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.datalog.database import DeductiveDatabase
from repro.datalog.rules import Atom, Literal
from repro.events.events import Event, Transaction
from repro.events.naming import ins_name
from repro.interpretations.downward import (
    DownwardInterpreter,
    DownwardResult,
    Translation,
)
from repro.interpretations.upward import UpwardInterpreter, UpwardResult


def upward_set(db: DeductiveDatabase, transaction: Transaction,
               predicates: Iterable[str] | None = None,
               interpreter: UpwardInterpreter | None = None) -> UpwardResult:
    """Combined upward problems: one interpretation, many consumers.

    E.g. ``upward_set(db, T, ["View", "Cond", "Ic"])`` serves materialized
    view maintenance, condition monitoring and integrity checking from a
    single upward interpretation of the event set.
    """
    interpreter = interpreter or UpwardInterpreter(db)
    return interpreter.interpret(transaction, predicates=predicates)


def downward_set(db: DeductiveDatabase,
                 requests: Iterable[Literal | Event],
                 interpreter: DownwardInterpreter | None = None
                 ) -> DownwardResult:
    """Combined downward problems: downward-interpret one request set."""
    interpreter = interpreter or DownwardInterpreter(db)
    return interpreter.interpret(list(requests))


@dataclass
class StagedResult:
    """Result of a downward-then-upward pipeline."""

    downward: DownwardResult
    #: Translations that passed the upward checking stage.
    accepted: tuple[Translation, ...] = ()
    #: Translations rejected by the checked constraints, with the violations.
    rejected: tuple[tuple[Translation, tuple[str, ...]], ...] = ()
    #: Induced changes of each accepted translation (e.g. for monitoring).
    induced: dict[Transaction, UpwardResult] = field(default_factory=dict)

    @property
    def is_satisfiable(self) -> bool:
        """True when some translation survived every stage."""
        return bool(self.accepted)


def downward_then_upward(db: DeductiveDatabase,
                         requests: Iterable[Literal | Event],
                         maintain: Iterable[str] = (),
                         check: Iterable[str] = (),
                         monitor: Iterable[str] = (),
                         downward_interpreter: DownwardInterpreter | None = None,
                         upward_interpreter: UpwardInterpreter | None = None
                         ) -> StagedResult:
    """The Section 5.3 pipeline.

    ``maintain``: inconsistency predicates handled *downward* (``¬ιIcN``
    added to the request set -- translations repair them by construction).
    ``check``: inconsistency predicates handled *upward* (candidate
    translations inducing their insertion are rejected).
    ``monitor``: derived predicates whose induced changes are reported for
    each accepted translation.
    """
    downward_interpreter = downward_interpreter or DownwardInterpreter(db)
    request_list: list[Literal | Event] = list(requests)
    for predicate in maintain:
        request_list.append(Literal(Atom(ins_name(predicate)), False)
                            if db.schema.arity(predicate) == 0 else
                            _forbid_any(db, predicate))
    downward = downward_interpreter.interpret(request_list)

    check = list(check)
    monitor = list(monitor)
    if not check and not monitor:
        return StagedResult(downward, accepted=downward.translations)

    upward_interpreter = upward_interpreter or UpwardInterpreter(
        db, program=downward_interpreter.program)
    watched = [*check, *monitor]
    accepted: list[Translation] = []
    rejected: list[tuple[Translation, tuple[str, ...]]] = []
    induced: dict[Transaction, UpwardResult] = {}
    for translation in downward.translations:
        result = upward_interpreter.interpret(translation.transaction,
                                              predicates=watched)
        violations = tuple(sorted(
            predicate for predicate in check
            if result.insertions_of(predicate)
        ))
        if violations:
            rejected.append((translation, violations))
            continue
        accepted.append(translation)
        if monitor:
            induced[translation.transaction] = result.restricted_to(monitor)
    return StagedResult(downward, tuple(accepted), tuple(rejected), induced)


def _forbid_any(db: DeductiveDatabase, predicate: str) -> Literal:
    """``¬ιP(x1..xk)`` -- forbid the insertion for every instantiation."""
    from repro.datalog.terms import Variable

    arity = db.schema.arity(predicate)
    variables = tuple(Variable(f"x{i + 1}") for i in range(arity))
    return Literal(Atom(ins_name(predicate), variables), False)
