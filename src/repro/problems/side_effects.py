"""Preventing side effects (Section 5.2.2).

A *side effect* is a non-desired induced update on a derived predicate.
Given a transaction ``T`` and a derived fact ``View(X)`` whose insertion
(or deletion) must not be induced, the problem is specified as **the
downward interpretation of ``{T, ¬ιView(X)}`` (resp. ``{T, ¬δView(X)}``)**:
each resulting translation extends ``T`` with base-fact updates that
suppress the side effect (Example 5.3).

Passing variables (or no args) prevents the side effect "for all possible
values of X".
"""

from __future__ import annotations

from typing import Iterable

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import UnknownPredicateError
from repro.datalog.rules import Atom, Literal
from repro.datalog.terms import Variable
from repro.events.events import Transaction
from repro.events.naming import EventKind, del_name, ins_name
from repro.interpretations.downward import (
    DownwardInterpreter,
    DownwardResult,
    request_of,
)
from repro.problems.base import (
    Direction,
    PredicateSemantics,
    ProblemSpec,
    register_problem,
)

register_problem(ProblemSpec(
    name="Preventing side effects",
    direction=Direction.DOWNWARD,
    event_form="T, ¬ιP / T, ¬δP",
    semantics=PredicateSemantics.VIEW,
    section="5.2.2",
    summary="Extend T so it does not induce an unwanted view change.",
))


def prevent_side_effects(db: DeductiveDatabase, transaction: Transaction,
                         view: str,
                         kind: EventKind = EventKind.INSERTION,
                         args: Iterable | None = None,
                         interpreter: DownwardInterpreter | None = None
                         ) -> DownwardResult:
    """Downward interpretation of ``{T, ¬ιView(X)}`` / ``{T, ¬δView(X)}``.

    ``args``: the ground arguments of the protected fact; omit to protect
    every instantiation ("all possible values of X").
    """
    if not db.schema.is_derived(view):
        raise UnknownPredicateError(f"{view} is not a derived predicate")
    interpreter = interpreter or DownwardInterpreter(db)
    name = ins_name(view) if kind is EventKind.INSERTION else del_name(view)
    if args is None:
        arity = db.schema.arity(view)
        terms = tuple(Variable(f"x{i + 1}") for i in range(arity))
    else:
        from repro.interpretations.downward import _terms

        terms = _terms(args)
    forbidden = Literal(Atom(name, terms), False)
    requests: list = [request_of(event) for event in sorted(transaction.events, key=str)]
    requests.append(forbidden)
    return interpreter.interpret(requests)
