"""Translation selection policies.

The paper repeatedly notes that "several translations may exist and the
user must select one" (5.2.1, 5.2.2, 5.2.4) but does not say how.  This
module provides the classic selection criteria from the view-update
literature so callers can rank the alternatives the downward interpretation
produces:

- **smallest**: fewest base-fact updates;
- **fewest side effects**: fewest induced derived events beyond the
  requested ones (computed by upward-interpreting each candidate -- the
  §5.3 combination again);
- **insertion-averse / deletion-averse**: prefer not to delete (or not to
  insert) stored facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.datalog.database import DeductiveDatabase
from repro.events.events import Transaction
from repro.interpretations.downward import Translation
from repro.interpretations.upward import UpwardInterpreter

#: A policy maps a translation to a sortable cost (lower is better).
Cost = tuple
Policy = Callable[[Translation], Cost]


def smallest(translation: Translation) -> Cost:
    """Fewest base events; ties broken deterministically."""
    return (len(translation.transaction), str(translation))


def deletion_averse(translation: Translation) -> Cost:
    """Prefer translations that delete as little as possible."""
    deletions = len(translation.transaction.deletions())
    return (deletions, len(translation.transaction), str(translation))


def insertion_averse(translation: Translation) -> Cost:
    """Prefer translations that insert as little as possible."""
    insertions = len(translation.transaction.insertions())
    return (insertions, len(translation.transaction), str(translation))


@dataclass(frozen=True)
class RankedTranslation:
    """A translation with its measured cost under some policy."""

    translation: Translation
    cost: Cost
    #: Induced derived events beyond the request (only for side-effect
    #: ranking; empty otherwise).
    side_effects: frozenset = frozenset()

    @property
    def transaction(self) -> Transaction:
        """The candidate transaction."""
        return self.translation.transaction


def rank_translations(translations: Iterable[Translation],
                      policy: Policy = smallest) -> tuple[RankedTranslation, ...]:
    """Sort translations by a purely syntactic policy (no database access)."""
    ranked = [RankedTranslation(t, policy(t)) for t in translations]
    ranked.sort(key=lambda r: r.cost)
    return tuple(ranked)


def rank_by_side_effects(db: DeductiveDatabase,
                         translations: Sequence[Translation],
                         requested_predicates: Iterable[str] = (),
                         interpreter: UpwardInterpreter | None = None
                         ) -> tuple[RankedTranslation, ...]:
    """Rank by number of induced derived events outside the request.

    Each candidate is upward-interpreted (the downward-then-upward
    combination of §5.3); events on predicates in ``requested_predicates``
    are the intended effect and do not count.
    """
    interpreter = interpreter or UpwardInterpreter(db)
    intended = set(requested_predicates)
    ranked: list[RankedTranslation] = []
    for translation in translations:
        induced = interpreter.interpret(translation.transaction)
        side_effects = frozenset(
            event for event in induced.events()
            if event.predicate not in intended
        )
        cost = (len(side_effects), len(translation.transaction),
                str(translation))
        ranked.append(RankedTranslation(translation, cost,
                                        frozenset(side_effects)))
    ranked.sort(key=lambda r: r.cost)
    return tuple(ranked)
