"""Integrity constraint checking (Section 5.1.1).

Given a consistent database state and a transaction of base-fact updates,
determine *incrementally* whether the transaction violates the integrity
constraints: **the upward interpretation of ``ιIc``, provided ``Ico`` does
not hold**.  If ``ιIc`` belongs to the result the transaction violates some
constraint and must be rejected (Example 5.1).

The dual problem -- does a transaction restore consistency of an
inconsistent database? -- is the upward interpretation of ``δIc`` provided
``Ico`` holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.datalog.database import GLOBAL_IC, DeductiveDatabase
from repro.datalog.terms import Constant
from repro.events.events import Transaction
from repro.interpretations.upward import UpwardInterpreter
from repro.problems.base import (
    Direction,
    PredicateSemantics,
    ProblemSpec,
    StateError,
    global_ic_holds,
    register_problem,
)

Row = tuple[Constant, ...]

register_problem(ProblemSpec(
    name="Integrity constraints checking",
    direction=Direction.UPWARD,
    event_form="ιP",
    semantics=PredicateSemantics.IC,
    section="5.1.1",
    summary="Does a transaction violate some integrity constraint?",
))
register_problem(ProblemSpec(
    name="Consistency restoration checking",
    direction=Direction.UPWARD,
    event_form="δP",
    semantics=PredicateSemantics.IC,
    section="5.1.1",
    summary="Does a transaction restore an inconsistent database?",
))


@dataclass
class ICCheckResult:
    """Outcome of an incremental integrity check."""

    #: True when the transaction keeps (or restores) consistency.
    ok: bool
    #: Violated constraint predicates with their witness rows
    #: (``IcN`` -> rows of induced ``ιIcN`` events).
    violations: dict[str, frozenset[Row]] = field(default_factory=dict)
    #: The (normalised) transaction that was checked.
    transaction: Transaction = field(default_factory=Transaction)

    def violated_constraints(self) -> tuple[str, ...]:
        """Names of the violated ``IcN`` predicates, sorted."""
        return tuple(sorted(self.violations))

    def to_dict(self) -> dict:
        """A JSON-ready representation (the ``check`` wire shape)."""
        from repro.serde import rows_to_lists

        return {
            "ok": self.ok,
            "violations": rows_to_lists(self.violations),
            "transaction": self.transaction.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ICCheckResult":
        """Inverse of :meth:`to_dict`."""
        from repro.serde import rows_from_lists

        return cls(
            ok=bool(payload.get("ok")),
            violations=rows_from_lists(payload.get("violations", {})),
            transaction=Transaction.from_dict(payload.get("transaction", [])),
        )

    def __str__(self) -> str:
        if self.ok:
            return "consistent"
        return "violates " + ", ".join(self.violated_constraints())


def is_consistent(db: DeductiveDatabase) -> bool:
    """Whether *db* currently satisfies all integrity constraints."""
    return not global_ic_holds(db)


def _constraint_predicates(db: DeductiveDatabase) -> list[str]:
    return sorted({r.head.predicate for r in db.constraints})


def check_transaction(db: DeductiveDatabase, transaction: Transaction,
                      interpreter: UpwardInterpreter | None = None) -> ICCheckResult:
    """Upward interpretation of ``ιIc``: reject transactions that violate IC.

    Requires a consistent current state (raises :class:`StateError`
    otherwise, per the paper's "provided that ``Ico`` does not hold").
    Passing a pre-built *interpreter* amortises old-state materialisation
    across many checks.
    """
    interpreter = interpreter or UpwardInterpreter(db)
    if interpreter.old_extension(GLOBAL_IC):
        raise StateError(
            "integrity checking requires a consistent state; the database "
            "already violates some constraint (Ic holds). Use "
            "repro.problems.repair to fix it first."
        )
    constraint_predicates = _constraint_predicates(db)
    watched = [GLOBAL_IC, *constraint_predicates]
    result = interpreter.interpret(transaction, predicates=watched)
    violated = {
        predicate: rows
        for predicate, rows in result.insertions.items()
        if predicate != GLOBAL_IC and rows
    }
    ic_inserted = bool(result.insertions_of(GLOBAL_IC))
    return ICCheckResult(
        ok=not ic_inserted,
        violations=violated,
        transaction=result.transaction,
    )


def check_transaction_full(db: DeductiveDatabase, transaction: Transaction,
                           interpreter: UpwardInterpreter | None = None):
    """Integrity check via a *full-coverage* upward interpretation.

    Same verdict as :func:`check_transaction`, but the interpretation is
    not restricted to the constraint predicates: the returned
    ``(ICCheckResult, UpwardResult)`` pair carries induced events for
    *every* derived predicate, so callers that go on to apply the
    transaction can advance memoised state
    (:meth:`UpwardInterpreter.advance`) instead of invalidating it.  The
    extra cost over the filtered check is one incremental pass over the
    non-constraint predicates -- usually far cheaper than the from-scratch
    re-materialisation it saves.
    """
    interpreter = interpreter or UpwardInterpreter(db)
    if interpreter.old_extension(GLOBAL_IC):
        raise StateError(
            "integrity checking requires a consistent state; the database "
            "already violates some constraint (Ic holds). Use "
            "repro.problems.repair to fix it first."
        )
    result = interpreter.interpret(transaction)
    constraint_predicates = set(_constraint_predicates(db))
    violated = {
        predicate: rows
        for predicate, rows in result.insertions.items()
        if predicate in constraint_predicates and rows
    }
    verdict = ICCheckResult(
        ok=not result.insertions_of(GLOBAL_IC),
        violations=violated,
        transaction=result.transaction,
    )
    return verdict, result


def current_violations(db: DeductiveDatabase,
                       interpreter: UpwardInterpreter | None = None
                       ) -> dict[str, frozenset[Row]]:
    """Constraint predicates violated by the *current* state, with witnesses.

    Reads the interpreter's memoised old state, so after a failed
    consistency precondition (:class:`StateError`) the witnesses come for
    free -- used by the server to name the violated constraint when it has
    to commit unchecked.
    """
    interpreter = interpreter or UpwardInterpreter(db)
    return {
        predicate: rows
        for predicate in _constraint_predicates(db)
        if (rows := interpreter.old_extension(predicate))
    }


def check_restores_consistency(db: DeductiveDatabase, transaction: Transaction,
                               interpreter: UpwardInterpreter | None = None
                               ) -> ICCheckResult:
    """Upward interpretation of ``δIc``: does the update restore consistency?

    Requires an inconsistent current state (``Ico`` holds).  ``ok`` is True
    when ``δIc`` belongs to the result, i.e. the transaction deletes the
    global inconsistency.
    """
    interpreter = interpreter or UpwardInterpreter(db)
    if not interpreter.old_extension(GLOBAL_IC):
        raise StateError(
            "restoration checking requires an inconsistent state "
            "(Ic must hold); the database is already consistent."
        )
    constraint_predicates = _constraint_predicates(db)
    watched = [GLOBAL_IC, *constraint_predicates]
    result = interpreter.interpret(transaction, predicates=watched)
    restored = bool(result.deletions_of(GLOBAL_IC))
    remaining = {
        predicate: rows
        for predicate, rows in result.insertions.items()
        if predicate != GLOBAL_IC and rows
    }
    return ICCheckResult(
        ok=restored,
        violations=remaining,
        transaction=result.transaction,
    )


def full_check(db: DeductiveDatabase) -> dict[str, frozenset[Row]]:
    """Non-incremental baseline: evaluate every ``IcN`` from scratch.

    Used by the SYN2 benchmark as the comparison point for
    :func:`check_transaction`.
    """
    from repro.datalog.evaluation import BottomUpEvaluator

    evaluator = BottomUpEvaluator(db, db.rules_with_global_ic())
    return {
        predicate: evaluator.extension(predicate)
        for predicate in _constraint_predicates(db)
        if evaluator.extension(predicate)
    }
