"""Integrity constraint maintenance (Section 5.2.4).

Given a consistent state and a transaction that may violate constraints,
find *repairs*: additional base-fact updates appended to the transaction so
the result satisfies every constraint.  Specified as **the downward
interpretation of ``{T, ¬ιIc}``, provided ``Ico`` does not hold**.  Every
resulting translation contains ``T`` plus the appended repairs; when no
translation exists the original transaction must be rejected.

The paper also classifies the dual curiosity, *maintaining inconsistency*:
the downward interpretation of ``{T, ¬δIc}`` provided ``Ico`` holds
("although we do not see any practical application of this problem, it can
be naturally classified and specified in the framework").
"""

from __future__ import annotations

from repro.datalog.database import GLOBAL_IC, DeductiveDatabase
from repro.events.events import Transaction
from repro.interpretations.downward import (
    DownwardInterpreter,
    DownwardResult,
    forbid_delete,
    forbid_insert,
    request_of,
)
from repro.problems.base import (
    Direction,
    PredicateSemantics,
    ProblemSpec,
    StateError,
    global_ic_holds,
    register_problem,
)

register_problem(ProblemSpec(
    name="Integrity constraints maintenance",
    direction=Direction.DOWNWARD,
    event_form="T, ¬ιP",
    semantics=PredicateSemantics.IC,
    section="5.2.4",
    summary="Append repairs to T so every constraint stays satisfied.",
))
register_problem(ProblemSpec(
    name="Maintaining inconsistency",
    direction=Direction.DOWNWARD,
    event_form="T, ¬δP",
    semantics=PredicateSemantics.IC,
    section="5.2.4",
    summary="Append updates to T so the database stays inconsistent.",
))


def maintain_transaction(db: DeductiveDatabase, transaction: Transaction,
                         interpreter: DownwardInterpreter | None = None
                         ) -> DownwardResult:
    """Downward interpretation of ``{T, ¬ιIc}`` on a consistent database."""
    if global_ic_holds(db):
        raise StateError(
            "integrity maintenance requires a consistent state (Ic must not "
            "hold); repair the database first."
        )
    interpreter = interpreter or DownwardInterpreter(db)
    requests = [request_of(e) for e in sorted(transaction.events, key=str)]
    requests.append(forbid_insert(GLOBAL_IC))
    return interpreter.interpret(requests)


def maintain_inconsistency(db: DeductiveDatabase, transaction: Transaction,
                           interpreter: DownwardInterpreter | None = None
                           ) -> DownwardResult:
    """Downward interpretation of ``{T, ¬δIc}`` on an inconsistent database."""
    if not global_ic_holds(db):
        raise StateError(
            "maintaining inconsistency requires an inconsistent state "
            "(Ic must hold)."
        )
    interpreter = interpreter or DownwardInterpreter(db)
    requests = [request_of(e) for e in sorted(transaction.events, key=str)]
    requests.append(forbid_delete(GLOBAL_IC))
    return interpreter.interpret(requests)
