"""Deterministic fault injection: named failpoints with armable actions.

The durability machinery (WAL appends, group-commit fsync ordering,
checkpoint renames, protocol frames) promises invariants *across crashes*,
and hand-written mocks can only spot-check them.  A **failpoint** is a
named instant in production code where a test (or the ``REPRO_FAULTS``
environment variable) can deterministically inject a failure.

Sites declare themselves once at import time and guard the instant with a
single call::

    FP_PRE_FSYNC = faults.register("wal.pre_fsync", "after append, before fsync")
    ...
    faults.failpoint(FP_PRE_FSYNC)

When nothing is armed, :func:`failpoint` is one truthiness check on a
module-level dict -- cheap enough to sit on the commit path
(``benchmarks/test_bench_faults.py`` holds the ceiling).  Arming attaches
an action:

``raise``
    raise :class:`FaultError` (or a custom exception factory) -- an
    injected storage/infrastructure error that normal error handling sees.
``crash``
    raise :class:`SimulatedCrash`.  It derives from ``BaseException`` so
    no library ``except Exception`` handler can swallow it: it unwinds the
    whole engine call stack like a longjmp, which is exactly how much of
    the process a real crash leaves running.  The test harness catches it
    at top level, abandons the in-memory state and re-opens the database
    directory through recovery.
``sleep``
    delay ``param`` seconds via the fault clock (:mod:`repro.faults.clock`),
    then continue -- for timeout and race testing.
``torn`` / ``drop``
    site-cooperative kinds: :func:`failpoint` *returns* the action and the
    site interprets it (a WAL append writes only ``param`` of its payload;
    a protocol frame is discarded or truncated).  Sites that do not
    understand a returned action ignore it.

Triggers are deterministic, never probabilistic: ``skip=N`` ignores the
first N hits, ``times=M`` fires on at most M hits after that (``times=1``
is a one-shot; the default ``times=None`` fires on every hit past
``skip``).

Environment arming mirrors ``REPRO_TRACE``: set ``REPRO_FAULTS`` to a
``;``-separated list of ``name=kind[:param][@skip][#times]`` specs, e.g.
``REPRO_FAULTS="wal.pre_fsync=crash@2#1;server.send_frame=drop"``.
Specs apply when the named failpoint registers itself (sites register at
import time), so the variable works however early it is set.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.faults import clock

ACTION_KINDS = ("raise", "crash", "sleep", "torn", "drop")


class FaultError(RuntimeError):
    """The exception an armed ``raise`` action injects (default factory)."""


class SimulatedCrash(BaseException):
    """Process death, simulated.

    Deliberately **not** an :class:`Exception`: every ``except Exception``
    (and every ``except DatalogError``) in the engine must let it through,
    because a real crash does not give the code a chance to handle
    anything.  Only the test harness catches it.
    """


class UnknownFailpointError(KeyError):
    """Arming a name no site has registered (almost always a typo)."""


@dataclass(frozen=True)
class FaultAction:
    """What an armed failpoint does when it fires."""

    kind: str
    param: float | None = None
    #: For ``raise``: a zero-argument factory for the exception to inject.
    exception: Callable[[], BaseException] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(
                f"unknown fault action {self.kind!r} "
                f"(known: {', '.join(ACTION_KINDS)})")


class _ArmedPoint:
    """One armed failpoint: its action plus the deterministic trigger."""

    __slots__ = ("action", "skip", "times", "hits", "fired")

    def __init__(self, action: FaultAction, skip: int = 0,
                 times: int | None = None):
        if skip < 0:
            raise ValueError("skip must be >= 0")
        if times is not None and times < 1:
            raise ValueError("times must be >= 1 (or None for unbounded)")
        self.action = action
        self.skip = skip
        self.times = times
        self.hits = 0
        self.fired = 0

    def should_fire(self) -> bool:
        self.hits += 1
        if self.hits <= self.skip:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        self.fired += 1
        return True


_lock = threading.Lock()
_registry: dict[str, str] = {}
#: Armed points.  `failpoint` reads this dict unlocked (a single attribute
#: load + truthiness check is the whole disabled path); mutation happens
#: under `_lock` and replaces values atomically.
_armed: dict[str, _ArmedPoint] = {}
#: REPRO_FAULTS specs awaiting their site's `register()` call.
_env_specs: dict[str, tuple[FaultAction, int, int | None]] = {}


def register(name: str, description: str = "") -> str:
    """Declare a failpoint site; returns *name* for assignment at import.

    Registering twice is fine (module reloads); the latest description
    wins.  A pending ``REPRO_FAULTS`` spec for *name* is armed here.
    """
    with _lock:
        _registry[name] = description
        pending = _env_specs.pop(name, None)
    if pending is not None:
        action, skip, times = pending
        arm(name, action, skip=skip, times=times)
    return name


def names() -> tuple[str, ...]:
    """Every registered failpoint, sorted."""
    with _lock:
        return tuple(sorted(_registry))


def catalog() -> dict[str, str]:
    """Registered failpoints with their site descriptions."""
    with _lock:
        return dict(sorted(_registry.items()))


def _coerce_action(action: FaultAction | str,
                   param: float | None = None,
                   exception: Callable[[], BaseException] | None = None
                   ) -> FaultAction:
    if isinstance(action, FaultAction):
        return action
    return FaultAction(kind=action, param=param, exception=exception)


def arm(name: str, action: FaultAction | str, *,
        param: float | None = None,
        exception: Callable[[], BaseException] | None = None,
        skip: int = 0, times: int | None = None) -> None:
    """Arm *name* with an action; replaces any previous arming.

    *action* is a :class:`FaultAction` or one of its kind strings
    (``"raise"``, ``"crash"``, ``"sleep"``, ``"torn"``, ``"drop"``).
    Raises :class:`UnknownFailpointError` for unregistered names, so a
    typo fails the test that made it instead of silently never firing.
    """
    resolved = _coerce_action(action, param, exception)
    with _lock:
        if name not in _registry:
            raise UnknownFailpointError(
                f"no failpoint named {name!r} is registered "
                f"(known: {', '.join(sorted(_registry)) or 'none'})")
        _armed[name] = _ArmedPoint(resolved, skip=skip, times=times)


def disarm(name: str) -> None:
    """Disarm *name* (a no-op when it was not armed)."""
    with _lock:
        _armed.pop(name, None)


def reset() -> None:
    """Disarm everything (test teardown)."""
    with _lock:
        _armed.clear()


def armed_names() -> tuple[str, ...]:
    """Names currently armed, sorted."""
    with _lock:
        return tuple(sorted(_armed))


def hit_count(name: str) -> int:
    """How many times the armed point *name* has been evaluated (0 if not armed)."""
    with _lock:
        point = _armed.get(name)
        return point.hits if point is not None else 0


@contextmanager
def armed(name: str, action: FaultAction | str, *,
          param: float | None = None,
          exception: Callable[[], BaseException] | None = None,
          skip: int = 0, times: int | None = 1) -> Iterator[None]:
    """Scoped arming (one-shot by default); disarms on exit.

    The scope disarms rather than restores: nesting two armings of the
    same name is a test bug this makes visible.
    """
    arm(name, action, param=param, exception=exception, skip=skip, times=times)
    try:
        yield
    finally:
        disarm(name)


def failpoint(name: str, **context) -> FaultAction | None:
    """The site-side guard: evaluate the failpoint *name*.

    Disabled path: one dict truthiness check.  When armed and triggered,
    ``raise``/``crash`` raise, ``sleep`` delays on the fault clock and
    returns None, and site-cooperative kinds (``torn``, ``drop``) are
    returned for the site to interpret.  *context* is attached to the
    injected exception message for debuggability.
    """
    if not _armed:
        return None
    with _lock:
        point = _armed.get(name)
        if point is None or not point.should_fire():
            return None
        action = point.action
    if action.kind == "sleep":
        clock.sleep(action.param if action.param is not None else 0.0)
        return None
    if action.kind == "raise":
        if action.exception is not None:
            raise action.exception()
        raise FaultError(_describe(name, "injected fault", context))
    if action.kind == "crash":
        raise SimulatedCrash(_describe(name, "simulated crash", context))
    return action


def _describe(name: str, what: str, context: dict) -> str:
    suffix = ""
    if context:
        rendered = ", ".join(f"{key}={value!r}"
                             for key, value in sorted(context.items()))
        suffix = f" ({rendered})"
    return f"{what} at failpoint {name!r}{suffix}"


# -- environment arming ----------------------------------------------------------

def parse_spec(spec: str) -> tuple[str, FaultAction, int, int | None]:
    """Parse one ``name=kind[:param][@skip][#times]`` spec.

    Returns ``(name, action, skip, times)``; raises :class:`ValueError`
    on malformed input (the environment hook reports and skips those).
    """
    name, _, rest = spec.partition("=")
    name, rest = name.strip(), rest.strip()
    if not name or not rest:
        raise ValueError(f"fault spec needs name=kind: {spec!r}")
    times: int | None = None
    skip = 0
    if "#" in rest:
        rest, _, raw = rest.partition("#")
        times = int(raw)
    if "@" in rest:
        rest, _, raw = rest.partition("@")
        skip = int(raw)
    kind, _, raw_param = rest.partition(":")
    param = float(raw_param) if raw_param else None
    return name, FaultAction(kind=kind.strip(), param=param), skip, times


def arm_from_environment(value: str) -> list[str]:
    """Queue ``;``-separated specs; each arms when its site registers.

    Already-registered names arm immediately.  Returns the spec strings
    that failed to parse (reported, never fatal: a bad spec must not take
    down the process it was meant to test).
    """
    bad: list[str] = []
    for piece in value.split(";"):
        piece = piece.strip()
        if not piece:
            continue
        try:
            name, action, skip, times = parse_spec(piece)
        except ValueError:
            bad.append(piece)
            continue
        with _lock:
            known = name in _registry
            if not known:
                _env_specs[name] = (action, skip, times)
        if known:
            arm(name, action, skip=skip, times=times)
    return bad


if os.environ.get("REPRO_FAULTS"):  # pragma: no cover - env-dependent
    arm_from_environment(os.environ["REPRO_FAULTS"])
