"""A swappable clock, so fault schedules and tests control time.

Every sleep the fault layer performs -- and any test helper that would
otherwise call :func:`time.sleep` in a retry loop -- routes through the
module's *current* clock.  The default :class:`Clock` is the real one;
installing a :class:`VirtualClock` turns waiting into bookkeeping, which
is what keeps fault-schedule tests deterministic and wall-clock-free.

The module deliberately knows nothing about failpoints: it is usable on
its own wherever a test wants time as a dependency instead of an ambient
global.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Clock:
    """The real clock: :func:`time.monotonic` and :func:`time.sleep`."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class VirtualClock(Clock):
    """A manually advanced clock; ``sleep`` records and jumps, never waits.

    ``sleeps`` keeps the requested durations in order, so a test can
    assert both *that* a delay was scheduled and *how long* it was,
    without the suite actually spending that time.
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        self._now += seconds


_current: Clock = Clock()


def get() -> Clock:
    """The currently installed clock."""
    return _current


def install(clock: Clock) -> Clock:
    """Install *clock* process-wide; returns the one it replaced."""
    global _current
    previous, _current = _current, clock
    return previous


@contextmanager
def use(clock: Clock | None = None) -> Iterator[Clock]:
    """Scoped clock replacement (defaults to a fresh :class:`VirtualClock`)."""
    installed = clock or VirtualClock()
    previous = install(installed)
    try:
        yield installed
    finally:
        install(previous)


def monotonic() -> float:
    """``monotonic()`` on the current clock."""
    return _current.monotonic()


def sleep(seconds: float) -> None:
    """``sleep()`` on the current clock."""
    _current.sleep(seconds)
