"""repro.faults -- deterministic fault injection for durability testing.

Failpoints are named instants in production code (WAL appends, fsyncs,
checkpoint renames, group-commit acknowledgement, protocol frames) that
tests arm with deterministic failure actions: raise an error, simulate a
process crash, sleep, tear a write, drop a frame.  Disabled failpoints
cost one dict truthiness check.  See :mod:`repro.faults.registry` for the
action and trigger semantics, :mod:`repro.faults.clock` for the swappable
clock ``sleep`` actions run on, and docs/TESTING.md for the failpoint
catalog and the crash-recovery invariants the test kit checks.

Arm from code::

    from repro import faults

    with faults.armed("wal.pre_fsync", "crash"):
        engine.commit(transaction)        # raises faults.SimulatedCrash

or from the environment: ``REPRO_FAULTS="wal.pre_fsync=crash@2#1"``.
"""

from __future__ import annotations

from repro.faults import clock
from repro.faults.registry import (
    ACTION_KINDS,
    FaultAction,
    FaultError,
    SimulatedCrash,
    UnknownFailpointError,
    arm,
    arm_from_environment,
    armed,
    armed_names,
    catalog,
    disarm,
    failpoint,
    hit_count,
    names,
    parse_spec,
    register,
    reset,
)

__all__ = [
    "ACTION_KINDS",
    "FaultAction",
    "FaultError",
    "SimulatedCrash",
    "UnknownFailpointError",
    "arm",
    "arm_from_environment",
    "armed",
    "armed_names",
    "catalog",
    "clock",
    "disarm",
    "failpoint",
    "hit_count",
    "names",
    "parse_spec",
    "register",
    "reset",
]
