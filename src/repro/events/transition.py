"""Transition rules (Section 3.2 of the paper).

For a rule ``P(t) <- L1 ∧ ... ∧ Lk`` the transition rule defines the new
state ``Pn`` in terms of old-state predicates and events, by replacing every
body literal with its equivalence from (3)/(4):

- positive ``Qn(t)``  becomes  ``(Qo(t) ∧ ¬δQ(t)) ∨ ιQ(t)``
- negative ``¬Qn(t)`` becomes  ``(¬Qo(t) ∧ ¬ιQ(t)) ∨ δQ(t)``

and distributing ∧ over ∨, giving ``2^k`` disjuncts whose literals are old
database literals, base event literals and derived event literals.

The same substitution applies uniformly whether ``Q`` is base or derived --
for derived ``Q``, ``ιQ``/``δQ`` are *derived event* predicates defined by
their own event rules (Section 3.3).

The compiler emits each transition rule both as a structured
:class:`TransitionRule` (the DNF object the downward interpretation walks
and the examples print) and as flat Datalog rules over the ``new$`` /
``ins$`` / ``del$`` namespaces (what the upward interpretation evaluates).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datalog.rules import Atom, Literal, Rule
from repro.datalog.terms import Variable
from repro.events.naming import (
    del_name,
    display_atom,
    display_literal,
    ins_name,
    new_name,
)
from repro.obs import tracer as obs

#: One disjunct of a transition rule: an ordered tuple of literals.
Disjunct = tuple[Literal, ...]


def expand_rigid(literal: Literal) -> tuple[Disjunct]:
    """Built-in (rigid) literals are state-independent: one unchanged option.

    ``Qn = Qo`` for rigid ``Q``, so (3)/(4) degenerate to the literal itself
    -- no event alternatives, no disjunct doubling.
    """
    return ((literal,),)


def expand_positive(literal: Literal) -> tuple[Disjunct, Disjunct]:
    """Equivalence (3): ``Qn(t)`` -> ``(Qo(t) ∧ ¬δQ(t))`` or ``ιQ(t)``."""
    target = literal.atom
    old_case = (
        Literal(target, True),
        Literal(Atom(del_name(target.predicate), target.args), False),
    )
    event_case = (Literal(Atom(ins_name(target.predicate), target.args), True),)
    return old_case, event_case


def expand_negative(literal: Literal) -> tuple[Disjunct, Disjunct]:
    """Equivalence (4): ``¬Qn(t)`` -> ``(¬Qo(t) ∧ ¬ιQ(t))`` or ``δQ(t)``."""
    target = literal.atom
    old_case = (
        Literal(target, False),
        Literal(Atom(ins_name(target.predicate), target.args), False),
    )
    event_case = (Literal(Atom(del_name(target.predicate), target.args), True),)
    return old_case, event_case


@dataclass(frozen=True)
class TransitionRule:
    """The transition rule of one source rule of a derived predicate.

    ``head`` is the ``new$P(t)`` atom (original head terms preserved);
    ``disjuncts`` is the 2^k-disjunct DNF body, in the deterministic order
    produced by expanding body literals left to right (the paper's order in
    Example 3.1).
    """

    predicate: str
    index: int
    head: Atom
    source: Rule
    disjuncts: tuple[Disjunct, ...]

    def as_datalog_rules(self) -> list[Rule]:
        """One flat rule ``new$P(t) <- disjunct`` per disjunct."""
        return [
            Rule(self.head, disjunct, label=f"transition:{self.predicate}:{self.index}")
            for disjunct in self.disjuncts
        ]

    def __str__(self) -> str:
        rendered = " ∨\n    ".join(
            "(" + " ∧ ".join(display_literal(lit) for lit in disjunct) + ")"
            for disjunct in self.disjuncts
        )
        return f"{display_atom(self.head)} <-> [ {rendered} ]"


def compile_transition_rule(source: Rule, index: int = 1) -> TransitionRule:
    """Build the transition rule of one source rule (see module docstring)."""
    from repro.datalog.builtins import is_builtin

    per_literal: list[tuple[Disjunct, ...]] = [
        expand_rigid(lit) if is_builtin(lit.predicate)
        else (expand_positive(lit) if lit.positive else expand_negative(lit))
        for lit in source.body
    ]
    disjuncts: list[Disjunct] = []
    for combination in itertools.product(*per_literal):
        merged: list[Literal] = []
        for piece in combination:
            merged.extend(piece)
        disjuncts.append(tuple(merged))
    head = Atom(new_name(source.head.predicate), source.head.args)
    return TransitionRule(
        predicate=source.head.predicate,
        index=index,
        head=head,
        source=source,
        disjuncts=tuple(disjuncts),
    )


def base_transition_rules(predicate: str, arity: int) -> list[Rule]:
    """New-state rules of a *base* predicate.

    Directly from equivalence (3):
    ``new$Q(x) <- Q(x) ∧ ¬del$Q(x)`` and ``new$Q(x) <- ins$Q(x)``.
    """
    variables = tuple(Variable(f"x{i + 1}") for i in range(arity))
    new_head = Atom(new_name(predicate), variables)
    keep = Rule(
        new_head,
        (
            Literal(Atom(predicate, variables), True),
            Literal(Atom(del_name(predicate), variables), False),
        ),
        label=f"base-transition:{predicate}",
    )
    inserted = Rule(
        new_head,
        (Literal(Atom(ins_name(predicate), variables), True),),
        label=f"base-transition:{predicate}",
    )
    return [keep, inserted]


class TransitionCompiler:
    """Compiles every rule of a program into its transition rule.

    The compiler is purely syntactic; which predicates are base vs derived
    only matters to the *consumer* of the rules (base new-state rules come
    from :func:`base_transition_rules` instead).
    """

    def compile_rules(self, rules: Sequence[Rule]) -> dict[str, tuple[TransitionRule, ...]]:
        """Transition rules grouped by predicate, indexed per the paper.

        When a predicate ``P`` is defined by ``m > 1`` rules, the paper
        renames the conclusions ``P1 ... Pm``; here the per-rule
        :class:`TransitionRule` objects carry ``index`` 1..m and the new
        state is their union (they share the ``new$P`` head predicate).
        """
        with obs.span("compile.expand") as span:
            grouped: dict[str, list[TransitionRule]] = {}
            for source in rules:
                index = len(grouped.get(source.head.predicate, ())) + 1
                compiled = compile_transition_rule(source, index)
                grouped.setdefault(source.head.predicate, []).append(compiled)
            if obs.enabled():
                span.add("rules", sum(len(v) for v in grouped.values()))
                span.add("disjuncts", sum(
                    len(t.disjuncts) for v in grouped.values() for t in v))
        return {name: tuple(items) for name, items in grouped.items()}

    def datalog_rules(self, rules: Iterable[TransitionRule]) -> list[Rule]:
        """Flatten structured transition rules for bottom-up evaluation."""
        flat: list[Rule] = []
        for transition in rules:
            flat.extend(transition.as_datalog_rules())
        return flat


def disjunct_event_literals(disjunct: Disjunct) -> list[Literal]:
    """The base/derived event literals of a disjunct (helper for analyses)."""
    from repro.events.naming import is_event_predicate

    return [lit for lit in disjunct if is_event_predicate(lit.predicate)]


def disjunct_has_positive_event(disjunct: Disjunct) -> bool:
    """True when the disjunct contains at least one positive event literal.

    This is the [Oli91] insertion-rule simplification test: a disjunct with
    no positive event literal only restates the old state and cannot
    contribute an induced insertion (its old part implies ``Po``, which the
    event rule conjoins with ``¬Po``).
    """
    from repro.events.naming import is_event_predicate

    return any(lit.positive and is_event_predicate(lit.predicate)
               for lit in disjunct)
