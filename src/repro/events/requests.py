"""Parsing of update *requests* (the downward interpretation's input).

A request is a literal over an event predicate: ``ins P(A)`` asks for a
translation that makes ``ιP(A)`` true, ``not del P(A)`` forbids ``δP(A)``.
This is the textual form used by the CLI, the REPL and the server protocol,
factored here so every entry point parses requests identically.
"""

from __future__ import annotations

from repro.datalog.errors import DatalogError
from repro.datalog.parser import parse_atom
from repro.datalog.rules import Atom, Literal
from repro.events.naming import del_name, ins_name, parse_prefixed


def parse_request(text: str) -> Literal:
    """Parse ``"ins P(A)"`` / ``"del P(A)"`` / ``"not ins P(A)"``."""
    text = text.strip()
    positive = True
    if text.startswith("not "):
        positive = False
        text = text[4:].strip()
    if text.startswith("ins "):
        name_of = ins_name
        text = text[4:]
    elif text.startswith("del "):
        name_of = del_name
        text = text[4:]
    else:
        raise DatalogError(
            f"request must start with 'ins' or 'del' (optionally 'not'): {text!r}"
        )
    target = parse_atom(text.strip())
    return Literal(Atom(name_of(target.predicate), target.args), positive)


def parse_requests(text: str) -> list[Literal]:
    """Parse a ``;``-separated request set, e.g. ``"ins P(A); not del Q(B)"``."""
    return [parse_request(piece) for piece in text.split(";") if piece.strip()]


def request_text(literal: Literal) -> str:
    """The canonical textual form of a request literal.

    The exact inverse of :func:`parse_request`:
    ``parse_request(request_text(l)) == l`` for every event literal.
    """
    namespace, predicate = parse_prefixed(literal.predicate)
    if namespace not in ("ins", "del"):
        raise DatalogError(
            f"not a request literal (must be over ins$/del$): {literal}")
    rendered = f"{namespace} {Atom(predicate, literal.args)}"
    return rendered if literal.positive else f"not {rendered}"


def requests_text(literals) -> str:
    """Render a request set as the ``;``-separated textual form."""
    return "; ".join(request_text(literal) for literal in literals)
