"""Insertion and deletion event rules (Section 3.3) and the transition program.

For every derived predicate ``P`` the event rules are::

    ιP(x) <-> Pn(x) ∧ ¬Po(x)          (6)
    δP(x) <-> Po(x) ∧ ¬Pn(x)          (7)

:class:`EventCompiler` compiles a deductive database into a
:class:`TransitionProgram` bundling

- the structured transition rules (used by the downward interpretation and
  for paper-style display),
- the event rules,
- a flat, stratified Datalog *upward program* over the ``new$``/``ins$``/
  ``del$`` namespaces whose bottom-up evaluation **is** the upward
  interpretation (old rules + base new-state rules + transition rules +
  event rules).

With ``simplify=True`` the compiler applies the sound [Oli91]-style
simplifications the paper mentions ("these rules can be intensively
simplified"):

- insertion event rules are inlined per transition disjunct and disjuncts
  with no positive event literal are dropped (their old-state part implies
  ``Po``, contradicting the ``¬Po`` conjunct of rule (6));
- disjuncts containing contradictory events (``ιQ(t) ∧ δQ(t)``) or a
  complementary literal pair are dropped.

Simplification never changes results (a property-tested invariant); it only
reduces the number of rules evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.datalog.database import DeductiveDatabase
from repro.datalog.errors import StratificationError
from repro.datalog.rules import Atom, Literal, Rule
from repro.datalog.stratify import Stratification, stratify
from repro.datalog.terms import Variable
from repro.events.dnf import _is_contradictory
from repro.events.naming import (
    EventKind,
    del_name,
    display_atom,
    display_literal,
    ins_name,
    new_name,
)
from repro.events.transition import (
    TransitionCompiler,
    TransitionRule,
    base_transition_rules,
    disjunct_has_positive_event,
)
from repro.obs import tracer as obs


@dataclass(frozen=True)
class EventRule:
    """One event rule (6)/(7) of a derived predicate."""

    kind: EventKind
    predicate: str
    head: Atom
    body: tuple[Literal, ...]

    def as_datalog_rule(self) -> Rule:
        """The rule with the left implication (upward) reading."""
        return Rule(self.head, self.body, label=f"event:{self.predicate}")

    def __str__(self) -> str:
        body = " ∧ ".join(display_literal(lit) for lit in self.body)
        return f"{display_atom(self.head)} <-> {body}"


def make_event_rules(predicate: str, arity: int) -> tuple[EventRule, EventRule]:
    """Build (insertion, deletion) event rules with fresh distinct head vars."""
    variables = tuple(Variable(f"x{i + 1}") for i in range(arity))
    old_atom = Atom(predicate, variables)
    new_atom = Atom(new_name(predicate), variables)
    insertion = EventRule(
        EventKind.INSERTION,
        predicate,
        Atom(ins_name(predicate), variables),
        (Literal(new_atom, True), Literal(old_atom, False)),
    )
    deletion = EventRule(
        EventKind.DELETION,
        predicate,
        Atom(del_name(predicate), variables),
        (Literal(old_atom, True), Literal(new_atom, False)),
    )
    return insertion, deletion


@dataclass
class TransitionProgram:
    """Everything compiled from one database snapshot's intensional part."""

    #: Derived predicates (including ``IcN`` and the global ``Ic``).
    derived: frozenset[str]
    #: Base predicates with their arities.
    base_arities: Mapping[str, int]
    #: Structured transition rules per derived predicate, in definition order.
    transition_rules: Mapping[str, tuple[TransitionRule, ...]]
    #: (insertion, deletion) event rules per derived predicate.
    event_rules: Mapping[str, tuple[EventRule, EventRule]]
    #: The flat Datalog program whose evaluation is the upward interpretation.
    upward_rules: tuple[Rule, ...]
    #: Stratification of :attr:`upward_rules`, or None when the flat program
    #: is not stratifiable (this happens exactly when derived predicates are
    #: recursive; the structured rules remain usable and the hybrid upward
    #: strategy handles such programs).
    stratification: Stratification | None
    #: Whether the [Oli91] simplifications were applied.
    simplified: bool
    #: The old-state rules the program was compiled from.
    source_rules: tuple[Rule, ...] = field(default=())
    #: Diagnostic carried when :attr:`stratification` is None.
    stratification_failure: str | None = None

    def require_flat_program(self) -> Stratification:
        """Stratification of the flat program, or a descriptive error.

        Strategies that evaluate :attr:`upward_rules` directly call this; the
        error explains that recursion forces a different strategy.
        """
        if self.stratification is None:
            raise StratificationError(
                "the flat transition program is not stratifiable "
                "(recursively defined derived predicates put ¬δP inside the "
                "definition of new$P); use the hybrid upward strategy or the "
                f"naive oracle instead. Underlying: {self.stratification_failure}"
            )
        return self.stratification

    def event_rule(self, kind: EventKind, predicate: str) -> EventRule:
        """The event rule of *kind* for a derived predicate."""
        insertion, deletion = self.event_rules[predicate]
        return insertion if kind is EventKind.INSERTION else deletion

    def transition_rules_of(self, predicate: str) -> tuple[TransitionRule, ...]:
        """Structured transition rules of a derived predicate."""
        return self.transition_rules.get(predicate, ())

    def is_derived(self, predicate: str) -> bool:
        """True when *predicate* has a rule-defined extension."""
        return predicate in self.derived

    def describe(self) -> str:
        """A paper-style listing of every transition and event rule."""
        lines: list[str] = []
        for predicate in sorted(self.derived):
            insertion, deletion = self.event_rules[predicate]
            lines.append(str(insertion))
            lines.append(str(deletion))
            for transition in self.transition_rules[predicate]:
                lines.append(str(transition))
        return "\n".join(lines)


class EventCompiler:
    """Compiles a database into its :class:`TransitionProgram`.

    Parameters
    ----------
    simplify:
        apply the sound [Oli91]-style simplifications (see module docstring).
    include_global_ic:
        also synthesise and compile the global inconsistency predicate ``Ic``
        (needed by the Section 5 integrity-constraint problems).
    """

    def __init__(self, simplify: bool = False, include_global_ic: bool = True):
        self._simplify = simplify
        self._include_global_ic = include_global_ic
        self._transition_compiler = TransitionCompiler()

    def compile(self, db: DeductiveDatabase) -> TransitionProgram:
        """Compile the intensional part of *db* (facts are not consulted)."""
        with obs.span("compile.transition") as span:
            program = self._compile(db)
            if obs.enabled():
                span.set(simplified=self._simplify)
                span.add("derived", len(program.derived))
                span.add("upward_rules", len(program.upward_rules))
                span.add("disjuncts", sum(
                    len(t.disjuncts)
                    for items in program.transition_rules.values()
                    for t in items))
        return program

    def _compile(self, db: DeductiveDatabase) -> TransitionProgram:
        source_rules = (db.rules_with_global_ic() if self._include_global_ic
                        else db.all_rules())
        derived = {r.head.predicate for r in source_rules}
        occurring = set()
        for r in source_rules:
            occurring.update(r.predicates())
        from repro.datalog.builtins import is_builtin

        schema = db.schema
        base_arities: dict[str, int] = {}
        for predicate in (occurring - derived) | set(schema.base):
            if is_builtin(predicate):
                continue  # rigid: no facts, no events, no new-state rules
            if predicate in schema.arities:
                base_arities[predicate] = schema.arity(predicate)
        arities = dict(base_arities)
        for r in source_rules:
            arities.setdefault(r.head.predicate, r.head.arity)

        transition_rules = self._transition_compiler.compile_rules(source_rules)
        if self._simplify:
            transition_rules = {
                name: tuple(self._pruned(t) for t in items)
                for name, items in transition_rules.items()
            }
        event_rules = {
            predicate: make_event_rules(predicate, arities[predicate])
            for predicate in derived
        }
        upward_rules = self._upward_program(
            source_rules, base_arities, transition_rules, event_rules
        )
        # The source program itself must be stratifiable -- the framework
        # (and the perfect-model semantics behind it) requires that much.
        stratify(source_rules)
        event_predicates = {ins_name(p) for p in base_arities}
        event_predicates |= {del_name(p) for p in base_arities}
        stratification: Stratification | None
        failure: str | None = None
        try:
            stratification = stratify(
                upward_rules,
                base_predicates=set(base_arities) | event_predicates,
            )
        except StratificationError as error:
            stratification = None
            failure = str(error)
        return TransitionProgram(
            derived=frozenset(derived),
            base_arities=base_arities,
            transition_rules=transition_rules,
            event_rules=event_rules,
            upward_rules=tuple(upward_rules),
            stratification=stratification,
            simplified=self._simplify,
            source_rules=tuple(source_rules),
            stratification_failure=failure,
        )

    # -- internals ---------------------------------------------------------------

    def _pruned(self, transition: TransitionRule) -> TransitionRule:
        """Drop disjuncts that are contradictory under the event definitions."""
        viable = tuple(
            disjunct for disjunct in transition.disjuncts
            if not _is_contradictory(frozenset(disjunct))
        )
        return TransitionRule(
            transition.predicate,
            transition.index,
            transition.head,
            transition.source,
            viable,
        )

    def _upward_program(
        self,
        source_rules: Sequence[Rule],
        base_arities: Mapping[str, int],
        transition_rules: Mapping[str, tuple[TransitionRule, ...]],
        event_rules: Mapping[str, tuple[EventRule, EventRule]],
    ) -> list[Rule]:
        program: list[Rule] = list(source_rules)
        for predicate, arity in sorted(base_arities.items()):
            program.extend(base_transition_rules(predicate, arity))
        for predicate, transitions in transition_rules.items():
            for transition in transitions:
                program.extend(transition.as_datalog_rules())
        for predicate, (insertion, deletion) in event_rules.items():
            program.append(deletion.as_datalog_rule())
            if not self._simplify:
                program.append(insertion.as_datalog_rule())
                continue
            # Inline the insertion rule per transition disjunct, keeping only
            # disjuncts with a positive event literal ([Oli91] simplification).
            for transition in transition_rules[predicate]:
                old_head = Literal(
                    Atom(predicate, transition.head.args), False
                )
                for disjunct in transition.disjuncts:
                    if not disjunct_has_positive_event(disjunct):
                        continue
                    program.append(Rule(
                        Atom(ins_name(predicate), transition.head.args),
                        disjunct + (old_head,),
                        label=f"event-simplified:{predicate}",
                    ))
        return program
